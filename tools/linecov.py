"""Dependency-free line coverage for environments without coverage.py.

Runs the test suite in-process under a ``sys.settrace`` tracer restricted
to ``src/repro`` and prints per-file and total line coverage.  This is a
measurement aid for choosing the CI coverage floor (CI itself uses
pytest-cov, whose C tracer is fast enough to gate on); the pure-Python
tracer here costs roughly an order of magnitude in wall clock, so it is
not wired into any test tier.

Usage::

    PYTHONPATH=src python tools/linecov.py [pytest args...]

Statement universes are derived from compiled code objects (``co_lines``),
which is the same notion of "executable line" the stdlib ``trace`` module
uses and close to coverage.py's statement set — close enough to pick a
conservative ``--cov-fail-under`` value.
"""

from __future__ import annotations

import pathlib
import sys
import threading

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

_executed: set = set()
_interesting_cache: dict = {}


def _is_interesting(code) -> bool:
    flag = _interesting_cache.get(code)
    if flag is None:
        flag = code.co_filename.startswith(str(SRC_ROOT))
        _interesting_cache[code] = flag
    return flag


def _local_trace(frame, event, arg):
    if event == "line":
        _executed.add((frame.f_code.co_filename, frame.f_lineno))
    return _local_trace


def _global_trace(frame, event, arg):
    if event == "call" and _is_interesting(frame.f_code):
        return _local_trace
    return None


def _executable_lines(path: pathlib.Path) -> set:
    """Every line holding executable code, from the compiled code objects."""
    lines = set()
    code = compile(path.read_text(), str(path), "exec")
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main(argv) -> int:
    import pytest

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        exit_code = pytest.main(argv or ["-q", "tests"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    per_file = []
    total_exec = 0
    total_hit = 0
    for path in sorted(SRC_ROOT.rglob("*.py")):
        executable = _executable_lines(path)
        if not executable:
            continue
        hit = {line for file, line in _executed if file == str(path)}
        hit &= executable
        total_exec += len(executable)
        total_hit += len(hit)
        per_file.append(
            (100.0 * len(hit) / len(executable), len(hit), len(executable), path)
        )

    print()
    print(f"{'cover':>7}  {'hit':>5}/{'stmts':<5}  file")
    for pct, hit, executable, path in sorted(per_file):
        rel = path.relative_to(SRC_ROOT.parent)
        print(f"{pct:6.1f}%  {hit:5d}/{executable:<5d}  {rel}")
    total_pct = 100.0 * total_hit / max(total_exec, 1)
    print(f"TOTAL {total_pct:.2f}% ({total_hit}/{total_exec} lines)")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
