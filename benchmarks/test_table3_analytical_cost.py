"""Table III — Analytical cost of source-based dissemination.

Paper values (12-node / 32-edge LTN cloud topology):

    method                avg hops   scaled   avg path latency
    K=1                   1.9        1.0      41.4 ms
    K=2                   4.4        2.3      43.5 ms
    K=3                   6.6        3.5      46.6 ms
    Naive Flooding        64.0       34.1     -
    Engineered Flooding   32.0       17.0     -

Regenerated on the fitted reconstruction of the topology
(:mod:`repro.topology.global_cloud`).
"""

import pytest

from benchmarks.conftest import run_once
from repro.topology import global_cloud
from repro.topology.analysis import minimum_pair_connectivity, table3

PAPER = {
    "K=1": (1.9, 1.0, 41.4),
    "K=2": (4.4, 2.3, 43.5),
    "K=3": (6.6, 3.5, 46.6),
    "Naive Flooding": (64.0, 34.1, None),
    "Engineered Flooding": (32.0, 17.0, None),
}


def test_table3(benchmark, reporter):
    topo = global_cloud.topology()
    rows = run_once(benchmark, lambda: table3(topo))

    table = []
    for name, (p_hops, p_scaled, p_lat) in PAPER.items():
        row = rows[name]
        measured_lat = (
            f"{row.avg_path_latency_ms:.1f}" if row.avg_path_latency_ms else "-"
        )
        table.append(
            (
                name,
                f"{row.avg_hops:.1f}",
                f"{p_hops:.1f}",
                f"{row.scaled_cost:.1f}",
                f"{p_scaled:.1f}",
                measured_lat,
                f"{p_lat:.1f}" if p_lat else "-",
            )
        )
    reporter.table(
        ["method", "hops", "paper", "scaled", "paper", "lat(ms)", "paper"],
        table,
    )
    reporter.line(f"min pair node-connectivity: {minimum_pair_connectivity(topo)} (paper: >= 3)")

    # Shape assertions (10% tolerance on fitted metrics).
    assert rows["K=1"].avg_hops == pytest.approx(1.9, rel=0.10)
    assert rows["K=1"].avg_path_latency_ms == pytest.approx(41.4, rel=0.10)
    assert rows["K=2"].scaled_cost == pytest.approx(2.3, rel=0.10)
    assert rows["K=3"].scaled_cost == pytest.approx(3.5, rel=0.10)
    assert rows["Naive Flooding"].avg_hops == 64.0
    assert rows["Engineered Flooding"].avg_hops == 32.0
    # "more than double" / "more than triple" the K=1 baseline.
    assert rows["K=2"].scaled_cost > 2.0
    assert rows["K=3"].scaled_cost > 3.0
