"""Overload sweep: goodput and tail latency vs offered load, 1x-10x.

Runs the client-tier population workload (Poisson diurnal arrivals, Zipf
fan-in, Pareto burst trains) against a 16-node chordal-ring overlay at
offered-load multipliers from 1x to 10x, once with the DoS-resistant
admission stage in front of Priority Messaging and once without.  Every
client message carries a 3-second delivery deadline, so overload shows
up as the congestion-collapse mechanism: messages that consumed
interior-link transmissions die in saturated queues instead of arriving
arbitrarily late.

What the two arms demonstrate (gates enforced below and by the
``overload`` CI job on ``BENCH_overload.json``):

* **admission on** — goodput at 10x holds at >= 90% of the 1x level
  (in fact it rises: the controller throttles offered load to roughly
  the sustainable rate at the source, so extra offered load converts to
  rejections, not queue bloat), and median latency stays flat.
* **admission off** — the delivery ratio collapses (less than half the
  1x ratio at 10x) and median latency blows up by multiples as queues
  fill to the deadline horizon.

The full sweep offers over a million messages.  The overlay's priority
queues and per-source fairness prevent *absolute* goodput collapse even
without admission (that is the paper's intra-network defense working);
the admission stage's win is the latency profile and not wasting
interior bandwidth on traffic that will die at the last hop.
"""

from __future__ import annotations

from benchmarks.conftest import Reporter, run_once

from repro.clients.overload import OVERLOAD_ADMISSION, run_overload

SEED = 2016
NODES = 16
DURATION = 50.0
DRAIN = 5.0
BASE_RATE = 170.0
MULTIPLIERS = (1.0, 2.0, 4.0, 7.0, 10.0)
LINK_BANDWIDTH_BPS = 3e5

MIN_OFFERED_TOTAL = 1_000_000
MIN_GOODPUT_RATIO_ON = 0.90


def test_overload_sweep(benchmark):
    reporter = Reporter("overload")

    def run():
        return run_overload(
            seed=SEED,
            nodes=NODES,
            duration=DURATION,
            drain=DRAIN,
            base_rate=BASE_RATE,
            multipliers=MULTIPLIERS,
            admission=OVERLOAD_ADMISSION,
            include_off=True,
            link_bandwidth_bps=LINK_BANDWIDTH_BPS,
        )

    report = run_once(benchmark, run)

    rows = [
        (
            "on" if stage["admission"] else "off",
            f"{stage['multiplier']:g}x",
            stage["offered"],
            stage["delivered"],
            f"{stage['delivery_ratio']:.1%}",
            f"{stage['goodput_msgs_per_s']:.0f}/s",
            f"{stage['p50_ms']:.0f}ms",
            f"{stage['p99_ms']:.0f}ms",
            stage["admission_totals"].get("rejected", 0),
            stage["queue_dropped"] + stage["queue_expired"],
        )
        for stage in report["stages"]
    ]
    reporter.table(
        ["arm", "load", "offered", "delivered", "ratio", "goodput",
         "p50", "p99", "rejected", "q-lost"],
        rows,
    )
    summary = report["summary"]
    reporter.line()
    reporter.line(f"offered total: {summary['offered_total']}")
    reporter.line(
        f"goodput ratio (10x/1x): on={summary['goodput_ratio_on']:.3f} "
        f"off={summary['goodput_ratio_off']:.3f}"
    )
    reporter.line(
        f"p50 at 10x: on={summary['admission_on']['p50_ms_at_max']:.0f}ms "
        f"off={summary['admission_off']['p50_ms_at_max']:.0f}ms"
    )
    reporter.json_artifact({
        "benchmark": "overload",
        **report,
    })
    reporter.flush()

    on, off = summary["admission_on"], summary["admission_off"]

    # Scale gate: the full sweep is a >= 1M-message experiment.
    assert summary["offered_total"] >= MIN_OFFERED_TOTAL

    # Admission on: goodput at 10x offered load holds at >= 90% of the
    # 1x level, with p99 bounded by the 3 s message deadline.
    assert summary["goodput_ratio_on"] >= MIN_GOODPUT_RATIO_ON
    assert on["p99_ms_at_max"] <= 3000.0

    # Admission off: delivery collapses under the deadline — at 10x the
    # delivery ratio is less than half its 1x value, and the median
    # latency is several times the admission-on median at the same load.
    assert off["delivery_ratio_at_max"] < 0.5 * off["delivery_ratio_at_1x"]
    assert off["p50_ms_at_max"] > 3.0 * on["p50_ms_at_max"]

    # The off arm's losses are queue losses (drops + deadline expiries),
    # not source-side rejections: admission totals are all zero there.
    off_stages = [s for s in report["stages"] if not s["admission"]]
    peak_off = max(off_stages, key=lambda s: s["multiplier"])
    assert all(v == 0 for v in peak_off["admission_totals"].values())
    assert peak_off["queue_dropped"] + peak_off["queue_expired"] > 0
