"""Figure 6 — A correct Priority Flooding flow under performance attack.

The correct flow (9 -> 11) sends at 16% of link capacity while four
compromised flows each saturate the network at full link capacity.

Paper results: (a) the correct flow's goodput is unaffected, because its
demand is below its fair share with five active sources; the remaining
bandwidth is shared evenly among the attackers.  (b) all five flows see
latency close to propagation delay, but the correct flow is closer,
because it sends less than its fair share so its messages do not wait in
queues.

(Latency note: at 10x-scaled capacity a message's serialization quantum
is 12.5 ms instead of 1.25 ms, so queueing latencies are proportionally
larger than the paper's; the *relative* ordering is what reproduces.)
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.topology import global_cloud
from repro.workloads.experiment import Deployment

CORRECT_FLOW = (9, 11)
ATTACK_FLOWS = [(4, 5), (7, 9), (1, 10), (3, 8)]
RUN_SECONDS = 25.0
WINDOW = (5.0, RUN_SECONDS)
CORRECT_RATE_FRACTION = 0.16


def test_fig6(benchmark, reporter):
    def experiment():
        deployment = Deployment(seed=23)
        deployment.add_flow(
            *CORRECT_FLOW, rate_fraction=CORRECT_RATE_FRACTION,
            semantics=Semantics.PRIORITY, priority=5,
        )
        for source, dest in ATTACK_FLOWS:
            deployment.add_attack_flow(source, dest, rate_fraction=1.0)
        deployment.run(RUN_SECONDS)
        results = {}
        for flow in [CORRECT_FLOW] + ATTACK_FLOWS:
            results[flow] = deployment.flow_result(*flow, window=WINDOW)
        propagation = deployment.topology.path_weight(
            deployment.topology.shortest_path(*CORRECT_FLOW)
        )
        return results, propagation, deployment.fair_share_mbps(5)

    results, propagation, fair_share = run_once(benchmark, experiment)

    rows = []
    for flow, result in results.items():
        kind = "correct" if flow == CORRECT_FLOW else "compromised"
        rows.append(
            (
                f"{flow[0]}->{flow[1]} ({kind})",
                f"{result.goodput_mbps:.3f}",
                f"{result.goodput_fraction_of_capacity:.3f}",
                f"{result.mean_latency * 1000:.1f}",
            )
        )
    reporter.table(["flow", "goodput Mbps", "x capacity", "mean latency ms"], rows)
    reporter.line(f"fair share with 5 sources: {fair_share:.3f} Mbps")
    reporter.line(
        f"correct flow propagation delay: {propagation * 1000:.1f} ms"
    )

    correct = results[CORRECT_FLOW]
    attackers = [results[f] for f in ATTACK_FLOWS]
    # (a) The correct flow keeps its full (below-fair-share) demand.
    assert correct.goodput_fraction_of_capacity == pytest.approx(
        CORRECT_RATE_FRACTION, rel=0.15
    )
    # Attackers share the rest; each gets at least its fair share region.
    for attacker in attackers:
        assert attacker.goodput_mbps > 0.5 * fair_share
    # (b) The correct flow's latency is lower than every attacker's
    # (its messages do not wait in queues).
    for attacker in attackers:
        assert correct.mean_latency < attacker.mean_latency
