"""Table I — Comparison with related work, as an *executable* table.

The paper's Table I is qualitative.  Here each checkmark claimed for
"Our Work" is backed by a small live experiment on this reproduction:

* protect against link-level tampering  -> PoR integrity drops tampering;
* protect against a single ISP meltdown -> multihomed underlay survives;
* protect against sophisticated DDoS    -> rotating Crossfire attack
  cannot cut a multihomed link, and the overlay routes around a
  single-homed one;
* protect against BGP hijacking         -> same-ISP combinations keep
  every link alive during a hijack;
* overcome Byzantine forwarders         -> flooding delivers past black
  holes;
* overcome Byzantine sources            -> a spamming source cannot push
  an honest flow below its fair share;
* guarantee semantics                   -> reliable in-order exactly-once
  delivery across a crash.
"""

import pytest

from benchmarks.conftest import run_once
from repro.byzantine.behaviors import DroppingBehavior
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.resilience.ddos import RotatingLinkAttack
from repro.resilience.underlay import multihomed, single_homed
from repro.topology.generators import clique, ring

FAST = OverlayConfig(link_bandwidth_bps=None)
PACED = OverlayConfig(link_bandwidth_bps=1e6)


def check_link_tampering() -> bool:
    net = OverlayNetwork.build(ring(4), FAST)
    original = net.channels[(1, 2)].send

    def tamper(pkt, size):
        if hasattr(pkt, "corrupted"):
            pkt.corrupted = True
        original(pkt, size)

    net.channels[(1, 2)].send = tamper
    net.client(1).send_priority(3)
    net.run(2.0)
    # Tampered copies are dropped at the link; flooding still delivers.
    return (
        net.delivered_count(1, 3) == 1
        and net.node(2).links[1].por.macs_rejected > 0
    )


def check_isp_meltdown() -> bool:
    net = OverlayNetwork.build(ring(4), FAST)
    underlay = multihomed(net, {n: ["red", "blue"] for n in net.nodes})
    underlay.fail_isp("red")
    net.client(1).send_priority(3)
    net.run(2.0)
    return net.delivered_count(1, 3) == 1


def check_ddos() -> bool:
    net = OverlayNetwork.build(ring(4), FAST)
    underlay = single_homed(net, {1: "red", 2: "blue", 3: "red", 4: "blue"})
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.3)
    attack.start()
    net.run(0.5)
    net.client(1).send_priority(2)  # direct path is dead; reroute via 4-3
    net.run(2.0)
    return net.delivered_count(1, 2) == 1


def check_bgp_hijack() -> bool:
    net = OverlayNetwork.build(ring(4), FAST)
    underlay = multihomed(net, {n: ["red", "blue"] for n in net.nodes})
    underlay.set_bgp_hijacked(True)
    net.client(1).send_priority(3)
    net.run(2.0)
    return net.delivered_count(1, 3) == 1


def check_byzantine_forwarders() -> bool:
    net = OverlayNetwork.build(clique(5), FAST)
    net.compromise(2, DroppingBehavior())
    net.compromise(3, DroppingBehavior())
    for _ in range(5):
        net.client(1).send_priority(5)
    net.run(2.0)
    return net.delivered_count(1, 5) == 5


def check_byzantine_sources() -> bool:
    net = OverlayNetwork.build(ring(4), PACED, seed=3)
    spammer = net.node(2)

    def spam():
        if net.sim.now < 8.0:
            for _ in range(3):
                spammer.send_priority(4, size_bytes=1186, priority=10)
            net.sim.schedule(0.02, spam)

    honest = net.node(1)

    def honest_tick():
        if net.sim.now < 8.0:
            honest.send_priority(3, size_bytes=1186, priority=1)
            net.sim.schedule(0.06, honest_tick)

    spam()
    honest_tick()
    net.run(12.0)
    goodput = net.flow_goodput(1, 3).average_mbps(2.0, 8.0)
    return goodput > 0.8 * (1186 * 8 / 0.06 / 1e6)


def check_guaranteed_semantics() -> bool:
    net = OverlayNetwork.build(ring(4), PACED)
    received = []
    net.node(3).on_deliver = lambda m: received.append(m.seq)
    sent = [0]

    def tick():
        while sent[0] < 40 and net.node(1).send_reliable(3, size_bytes=800):
            sent[0] += 1
        if sent[0] < 40:
            net.sim.schedule(0.05, tick)

    tick()
    net.run(1.0)
    net.crash(2)
    net.run(2.0)
    net.recover(2)
    net.run(20.0)
    return received == list(range(1, 41))


ROWS = [
    ("Protect against link-level tampering", check_link_tampering),
    ("Protect against a single ISP meltdown", check_isp_meltdown),
    ("Protect against sophisticated DDoS attack", check_ddos),
    ("Protect against BGP hijacking", check_bgp_hijack),
    ("Overcomes Byzantine Forwarders", check_byzantine_forwarders),
    ("Overcomes Byzantine Sources", check_byzantine_sources),
    ("Guarantees Semantics", check_guaranteed_semantics),
]


def test_table1(benchmark, reporter):
    def experiment():
        return [(name, check()) for name, check in ROWS]

    results = run_once(benchmark, experiment)
    reporter.table(
        ["property (Table I row)", "our work"],
        [(name, "yes" if ok else "NO") for name, ok in results],
    )
    reporter.line("(each checkmark is demonstrated by a live experiment)")
    for name, ok in results:
        assert ok, f"Table I property failed: {name}"
