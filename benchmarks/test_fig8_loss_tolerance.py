"""Figure 8 — One Reliable Messaging flow vs. loss rate on all links.

The flow 7 -> 9 (Europe to East Asia — the worst-case flow: most hops,
loss applied on every hop) sends at link capacity while every link in
the topology drops packets at rates from 0% to 50%.

Paper result: "The flow is able to maintain performance, even under high
loss", for both Constrained Flooding and K-Paths, with goodput declining
gently as loss grows (the Proof-of-Receipt link's retransmissions absorb
the loss at the cost of bandwidth).
"""

import pytest

from benchmarks.conftest import run_once
from repro.link.por import PorConfig
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment

FLOW = (7, 9)
LOSS_RATES = [0.0, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50]
RUN_SECONDS = 20.0
WINDOW = (5.0, RUN_SECONDS)


def measure(loss: float, method: DisseminationMethod) -> float:
    config = OverlayConfig(
        link_bandwidth_bps=SCALED_LINK_BPS,
        channel_loss_rate=loss,
        e2e_ack_timeout=0.1,
        reliable_forward_hold=0.1,
        reliable_link_window=32,
        por=PorConfig(initial_rto=0.10, min_rto=0.03),
        # Hellos themselves cross the lossy links: keep monitoring from
        # flapping every link down at extreme loss rates.
        hello_interval=0.5,
        hello_timeout=6.0,
    )
    deployment = Deployment(config=config, seed=31)
    deployment.add_flow(
        *FLOW, rate_fraction=1.0, semantics=Semantics.RELIABLE, method=method
    )
    deployment.run(RUN_SECONDS)
    return deployment.network.flow_goodput(*FLOW).average_mbps(*WINDOW)


def test_fig8(benchmark, reporter):
    def experiment():
        flooding = [measure(loss, DisseminationMethod.flooding()) for loss in LOSS_RATES]
        kpaths = [measure(loss, DisseminationMethod.k_paths(2)) for loss in LOSS_RATES]
        return flooding, kpaths

    flooding, kpaths = run_once(benchmark, experiment)

    link_mbps = SCALED_LINK_BPS / 1e6
    reporter.table(
        ["loss %", "Constrained Flooding Mbps", "K-Paths (K=2) Mbps"],
        [
            (f"{loss * 100:.0f}", f"{f:.3f}", f"{k:.3f}")
            for loss, f, k in zip(LOSS_RATES, flooding, kpaths)
        ],
    )
    reporter.line(f"link capacity (scaled): {link_mbps:.1f} Mbps")

    # Shape: both methods maintain most of their goodput through 10% loss
    # and still move traffic at extreme rates (the paper's 50% point
    # holds up better than ours — see EXPERIMENTS.md — but the flow must
    # never stall entirely).
    for series in (flooding, kpaths):
        assert series[0] > 0.5 * link_mbps          # healthy baseline
        assert series[4] > 0.55 * series[0]         # 10% loss: graceful
        assert series[5] > 0.3 * series[0]          # 25% loss: degraded
        assert series[-1] > 0.05 * series[0]        # 50% loss: still alive
    # Loss tolerance of the two methods is comparable (redundant paths
    # vs. full redundancy).
    assert flooding[-1] >= 0.6 * kpaths[-1]
