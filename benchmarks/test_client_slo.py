"""SLO under fire: client-visible success with sessions on/off, 1x-10x.

Runs the client session tier (budgeted retries, decorrelated-jitter
backoff, idempotency keys + destination dedup, ingress failover with
circuit breakers, degradation ladder) against a 16-node chordal-ring
overlay while the live-soak chaos preset crashes nodes, partitions
links, and injects wire noise — then sweeps offered load from 1x to
10x.  Success is end-to-end and client-visible: a request counts only
when the destination's ack reaches the session before its deadline.

Gates enforced below and by the ``client-slo`` CI job on
``BENCH_client_slo.json``:

* **sessions on** — success >= 99% under soak chaos at base load,
  versus the documented sessions-off baseline below it; retry
  amplification stays within the global retry budget
  (<= 1 + retry_budget) at *every* sweep point through 10x; delivered
  goodput at 10x holds at >= 90% of the 1x level (graceful
  degradation, not collapse).
* **invariants** — zero violations across every stage: no double
  processing at destinations (idempotency) and no retry-storm
  (mechanical offered-load bound).
"""

from __future__ import annotations

from benchmarks.conftest import Reporter, run_once

from repro.clients.slo import run_slo

SEED = 2016
NODES = 16
DURATION = 30.0
DRAIN = 8.0
BASE_RATE = 60.0
MULTIPLIERS = (1.0, 2.0, 4.0, 7.0, 10.0)
CHAOS_INTENSITY = 2.0
LINK_BANDWIDTH_BPS = 3e5

MIN_SUCCESS_ON_AT_1X = 0.99
MIN_GOODPUT_RATIO_ON = 0.90


def test_client_slo_sweep(benchmark):
    reporter = Reporter("client_slo")

    def run():
        return run_slo(
            seed=SEED,
            nodes=NODES,
            duration=DURATION,
            drain=DRAIN,
            base_rate=BASE_RATE,
            multipliers=MULTIPLIERS,
            intensity=CHAOS_INTENSITY,
            include_off=True,
            link_bandwidth_bps=LINK_BANDWIDTH_BPS,
        )

    report = run_once(benchmark, run)

    rows = [
        (
            "on" if stage["sessions"] else "off",
            f"{stage['multiplier']:g}x",
            stage["requests"],
            stage["succeeded"],
            f"{stage['success_ratio']:.2%}",
            f"{stage['amplification']:.3f}",
            stage["failovers"],
            stage["shed"],
            stage["downgraded"],
            f"{stage['goodput_rps']:.0f}/s",
            stage["violations"],
        )
        for stage in report["stages"]
    ]
    reporter.table(
        ["arm", "load", "requests", "acked", "success", "amp",
         "failover", "shed", "downgrade", "goodput", "viol"],
        rows,
    )
    summary = report["summary"]
    reporter.line()
    reporter.line(f"requests total: {summary['requests_total']}")
    reporter.line(
        f"success at 1x under soak chaos: on={summary['success_on_at_1x']:.2%} "
        f"off={summary['success_off_at_1x']:.2%}"
    )
    reporter.line(
        f"max amplification (on): {summary['max_amplification_on']:.4f} "
        f"(bound {summary['amplification_bound']:.2f})"
    )
    reporter.line(
        f"goodput ratio 10x/1x (on): {summary['goodput_ratio_on']:.3f}; "
        f"violations: {summary['violations']}"
    )
    reporter.json_artifact({
        "benchmark": "client_slo",
        **report,
    })
    reporter.flush()

    on_stages = [s for s in report["stages"] if s["sessions"]]
    base_on = min(on_stages, key=lambda s: s["multiplier"])

    # Headline SLO: >= 99% client-visible success under soak chaos at
    # base load with sessions on, strictly above the sessions-off
    # baseline measured under the same seed/chaos/load.
    assert summary["success_on_at_1x"] >= MIN_SUCCESS_ON_AT_1X
    assert summary["success_off_at_1x"] < summary["success_on_at_1x"]

    # Anti-retry-storm: at every sweep point through 10x, offered
    # interior load stays within (1 + retry_budget) x base offers.
    bound = summary["amplification_bound"] + 1e-9
    for stage in on_stages:
        assert stage["amplification"] <= bound, stage["multiplier"]

    # Zero invariant violations anywhere: no destination processed an
    # idempotency key twice, no tier out-spent its retry budget.
    assert summary["violations"] == 0

    # Graceful degradation, not collapse: delivered goodput at 10x
    # offered load holds at >= 90% of the 1x level, with the ladder
    # (downgrade before shed) visibly engaged at the peak.
    assert summary["goodput_ratio_on"] >= MIN_GOODPUT_RATIO_ON
    peak_on = max(on_stages, key=lambda s: s["multiplier"])
    assert peak_on["downgraded"] > 0
    assert peak_on["shed"] > 0

    # The machinery was exercised, not idle: chaos crashed nodes during
    # the base-load stage and sessions actually failed over/retried.
    assert base_on["chaos"].get("crash", 0) >= 1
    assert summary["failovers_on"] > 0
    assert summary["retries_on"] > 0
