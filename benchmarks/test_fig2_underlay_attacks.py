"""Figure 1/2 & Section IV-B — resilient architecture under underlay attacks.

Makes the architecture argument executable on the 12-node cloud:

* a Crossfire-style rotating attack on the Internet path of one overlay
  link keeps that link persistently dead (single-homed) — the end-to-end
  "Internet path" is broken — yet overlay traffic keeps flowing with
  near-zero interruption because the overlay reroutes;
* with multihoming the attacked link itself stays up unless the attacker
  floods every ISP combination at once;
* a BGP hijack disconnects a single-homed deployment's cross-ISP links,
  while the multihomed deployment keeps 100% of pairs connected.
"""

import pytest

from benchmarks.conftest import run_once
from repro.overlay.config import OverlayConfig
from repro.resilience.ddos import RotatingLinkAttack
from repro.resilience.underlay import Underlay
from repro.resilience.variants import assign_variants
from repro.topology import global_cloud
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment

#: Three diverse providers; single-homed assignment chosen by the
#: variant-assignment optimizer (Newell et al.), multihomed doubles up.
ISPS = ["telia", "ntt", "cogent"]


def build(multihome: bool):
    config = OverlayConfig(link_bandwidth_bps=SCALED_LINK_BPS)
    deployment = Deployment(config=config, seed=41)
    topo = deployment.topology
    families = assign_variants(topo, variants=3)
    contracts = {}
    for node, family in families.items():
        if multihome:
            contracts[node] = [ISPS[family], ISPS[(family + 1) % 3]]
        else:
            contracts[node] = [ISPS[family]]
    underlay = Underlay(deployment.network, contracts)
    return deployment, underlay


def test_fig2_crossfire_and_hijack(benchmark, reporter):
    def experiment():
        out = {}
        # --- Crossfire on the direct link of flow 9 -> 11 (single-homed).
        deployment, underlay = build(multihome=False)
        flow = deployment.add_flow(9, 11, rate_fraction=0.3)
        attack = RotatingLinkAttack(
            deployment.sim, underlay, [(9, 11)], rotation_period=0.5, breadth=1
        )
        deployment.run(10.0)
        attack.start()
        deployment.run(20.0)
        out["single_link_dead"] = not underlay.link_usable(9, 11)
        attack.stop()
        meter = deployment.network.flow_goodput(9, 11)
        out["single_before"] = meter.average_mbps(2.0, 10.0)
        out["single_during"] = meter.average_mbps(16.0, 30.0)

        # --- Same attack against a multihomed deployment.
        deployment2, underlay2 = build(multihome=True)
        deployment2.add_flow(9, 11, rate_fraction=0.3)
        attack2 = RotatingLinkAttack(
            deployment2.sim, underlay2, [(9, 11)], rotation_period=0.5, breadth=1
        )
        attack2.start()
        deployment2.run(15.0)
        out["multi_during"] = deployment2.network.flow_goodput(9, 11).average_mbps(3.0, 15.0)
        out["multi_link_alive"] = underlay2.link_usable(9, 11)

        # --- BGP hijack connectivity.
        _, single = build(multihome=False)
        single.set_bgp_hijacked(True)
        out["hijack_single_connectivity"] = single.connected_pairs_fraction()
        _, multi = build(multihome=True)
        multi.set_bgp_hijacked(True)
        out["hijack_multi_connectivity"] = multi.connected_pairs_fraction()
        return out

    out = run_once(benchmark, experiment)

    reporter.table(
        ["scenario", "result"],
        [
            ("flow 9->11 before Crossfire (single-homed)", f"{out['single_before']:.3f} Mbps"),
            ("flow 9->11 during Crossfire (single-homed)", f"{out['single_during']:.3f} Mbps"),
            ("attacked link dead (single-homed)", out["single_link_dead"]),
            ("flow 9->11 during Crossfire (multihomed)", f"{out['multi_during']:.3f} Mbps"),
            ("attacked link alive (multihomed)", out["multi_link_alive"]),
            ("connected pairs under BGP hijack (single-homed)",
             f"{out['hijack_single_connectivity']:.2f}"),
            ("connected pairs under BGP hijack (multihomed)",
             f"{out['hijack_multi_connectivity']:.2f}"),
        ],
    )

    # The rotating attack keeps the single-homed link persistently dead...
    assert out["single_link_dead"]
    # ...but the overlay keeps delivering by rerouting (Figure 2's point).
    assert out["single_during"] > 0.85 * out["single_before"]
    # Multihoming keeps the link itself alive against a narrow attacker.
    assert out["multi_link_alive"]
    assert out["multi_during"] > 0.2
    # BGP hijack: multihoming preserves full connectivity.
    assert out["hijack_multi_connectivity"] == 1.0
    assert out["hijack_single_connectivity"] < 1.0
