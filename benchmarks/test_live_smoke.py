"""Live-runtime smoke benchmark: the overlay over real UDP on localhost.

Unlike the simulation benchmarks, this one measures *wall clock*: it
boots a 4-node overlay on 127.0.0.1 (``repro.runtime``), injects
priority + reliable CBR traffic for a few real seconds, and records
delivery ratios, mean latencies, and datagram counts.  The artifact
``BENCH_live_smoke.json`` is inherently non-deterministic (real sockets,
real timers) — CI uploads it for trend inspection, not for byte-diffing.
"""

from __future__ import annotations

from benchmarks.conftest import Reporter, run_once

from repro.runtime.live import LiveConfig, run_live

DURATION = 4.0
NODES = 4


def test_live_smoke(benchmark):
    reporter = Reporter("live_smoke")
    report = run_once(
        benchmark,
        lambda: run_live(LiveConfig(nodes=NODES, duration=DURATION, seed=0)),
    )
    reporter.table(
        ["flow", "semantics", "sent", "delivered", "ratio", "mean ms"],
        [
            (
                f"{flow.source}->{flow.dest}",
                flow.semantics,
                flow.sent,
                flow.delivered,
                f"{flow.ratio:.1%}",
                f"{flow.mean_latency * 1000:.2f}" if flow.mean_latency else "-",
            )
            for flow in report.flows
        ],
    )
    reporter.line()
    reporter.line(
        f"delivery: overall {report.delivery_ratio:.1%}  "
        f"priority {report.priority_ratio:.1%}  "
        f"reliable {report.reliable_ratio:.1%}"
    )
    reporter.line(
        f"transport: {report.transport['datagrams_received']} datagrams, "
        f"{report.transport['decode_errors']} decode errors"
    )
    reporter.json_artifact(report.to_dict())
    reporter.flush()

    assert not report.runtime_errors, report.runtime_errors
    assert not report.interrupted
    # A clean localhost run should deliver essentially everything; the
    # bar is deliberately below 100% to absorb scheduling-jitter losses
    # in the drain window on loaded CI machines.
    assert report.delivery_ratio >= 0.95
    assert report.transport["decode_errors"] == 0
    assert report.transport["encode_errors"] == 0
