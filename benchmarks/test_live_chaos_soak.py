"""Live chaos soak benchmark: the overlay under fire on real sockets.

Boots a 5-node localhost overlay and runs the ``soak`` chaos preset
against it — wire noise (loss, duplication, reordering, corruption,
delay), partitions, and supervised crash/restart — for a few real
seconds, then gates on the paper's guarantee: messages between
*correct* (non-faulted) nodes still arrive, and no delivery invariant
is violated.  The artifact ``BENCH_live_chaos.json`` carries the full
report (injector counts, supervision summary, invariant summary) for
trend inspection; like the live smoke artifact it is inherently
non-deterministic in its timing fields.
"""

from __future__ import annotations

from benchmarks.conftest import Reporter, run_once

from repro.runtime.live import LiveConfig, run_live

NODES = 5
DURATION = 6.0
#: At this seed the generated soak schedule includes a node crash (so
#: the supervisor's kill/restart path runs) alongside sustained wire
#: noise on several edges.
SEED = 3

#: The soak gate: correct-flow delivery may not dip below this.
DELIVERY_FLOOR = 0.99


def test_live_chaos_soak(benchmark):
    reporter = Reporter("live_chaos")
    report = run_once(
        benchmark,
        lambda: run_live(LiveConfig(
            nodes=NODES, duration=DURATION, seed=SEED, chaos_preset="soak",
        )),
    )
    injector = report.chaos["injector"]
    reporter.table(
        ["flow", "semantics", "sent", "delivered", "ratio"],
        [
            (
                f"{flow.source}->{flow.dest}",
                flow.semantics,
                flow.sent,
                flow.delivered,
                f"{flow.ratio:.1%}",
            )
            for flow in report.flows
        ],
    )
    reporter.line()
    reporter.line(
        f"chaos: {injector['losses']} lost, {injector['duplicates']} duped, "
        f"{injector['reorders']} reordered, {injector['corruptions']} corrupted, "
        f"{injector['partition_drops']} partition drops"
    )
    reporter.line(
        f"supervision: {report.supervision['kills']} kill(s), "
        f"{report.supervision['restarts']} restart(s), "
        f"broken={report.supervision['broken']}"
    )
    reporter.line(
        f"delivery: overall {report.delivery_ratio:.1%}  "
        f"correct-flow {report.correct_flow_ratio:.1%} "
        f"(faulted nodes excluded: {sorted(report.faulted_node_ids) or 'none'})"
    )
    reporter.line(
        f"invariants: {report.violations} violation(s); "
        f"transport rejected {report.transport['decode_errors']} corrupted "
        f"datagram(s) at decode"
    )
    reporter.json_artifact(report.to_dict())
    reporter.flush()

    assert not report.runtime_errors, report.runtime_errors
    assert not report.interrupted
    assert report.violations == 0
    assert report.supervision["broken"] == []
    assert report.correct_flow_ratio >= DELIVERY_FLOOR, report.to_dict()["flows"]
    assert report.ok
