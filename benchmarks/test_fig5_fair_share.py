"""Figure 5 — One Priority Flooding flow vs. its guaranteed fair share.

A single flow sends at link capacity; every interval an additional
randomly selected source starts sending at the same rate.  The measured
goodput must stay at or above the guaranteed fair share
(capacity / #active sources) — in practice it exceeds it, because not
all links are in full contention at all times.

Scaled: the paper adds a source every 60 s over 600 s; we add one every
12 s over 120 s (all rates scaled with capacity, ratios preserved).
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.topology import global_cloud
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment

STAGE_SECONDS = 12.0
MAX_SOURCES = 8
MEASURED_FLOW = (9, 11)
# Additional (source, dest) pairs, "randomly selected" in the paper;
# fixed here for determinism.
EXTRA_FLOWS = [(4, 5), (7, 9), (1, 10), (3, 8), (2, 6), (12, 4), (5, 8)]


def test_fig5(benchmark, reporter):
    def experiment():
        deployment = Deployment(seed=19)
        deployment.add_flow(*MEASURED_FLOW, rate_fraction=1.0,
                            semantics=Semantics.PRIORITY)
        for i, (source, dest) in enumerate(EXTRA_FLOWS):
            deployment.add_attack_flow(
                source, dest, rate_fraction=1.0,
                start_at=(i + 1) * STAGE_SECONDS,
            )
        deployment.run(STAGE_SECONDS * MAX_SOURCES)
        stages = []
        for stage in range(MAX_SOURCES):
            start = stage * STAGE_SECONDS + STAGE_SECONDS * 0.25
            end = (stage + 1) * STAGE_SECONDS
            measured = deployment.network.flow_goodput(*MEASURED_FLOW).average_mbps(
                start, end
            )
            fair = deployment.fair_share_mbps(stage + 1)
            stages.append((stage + 1, measured, fair))
        return stages

    stages = run_once(benchmark, experiment)

    reporter.table(
        ["active sources", "measured Mbps", "guaranteed fair share Mbps", "ratio"],
        [
            (n, f"{measured:.3f}", f"{fair:.3f}", f"{measured / fair:.2f}")
            for n, measured, fair in stages
        ],
    )

    for n, measured, fair in stages:
        # The guarantee: never (meaningfully) below the fair share.
        assert measured >= 0.85 * fair, f"stage {n}: {measured} < fair {fair}"
    # With one source the flow gets essentially the whole link (goodput).
    assert stages[0][1] >= 0.6 * SCALED_LINK_BPS / 1e6
    # Goodput declines as contention grows.
    assert stages[-1][1] < stages[0][1]
