"""Adaptive vs fixed defense: the feedback controller's win conditions.

Runs the same seeded chaos schedule twice per preset — once with the
fixed staggered proactive-recovery rotation, once with the
belief-driven adaptive controller (:mod:`repro.resilience.adaptive`) —
on the simulated substrate for the ``link``, ``full``, and ``soak``
presets, and on the live asyncio/UDP substrate for ``soak``.  Both arms
share the actuation, budget, and downtime accounting, so the comparison
isolates the control policy.

Gates (the PR's acceptance bar, also enforced by the ``adaptive-defense``
CI job on ``BENCH_adaptive.json``):

* delivery under the adaptive controller is no worse than fixed,
* zero invariant violations in every arm (including ``defense-budget``),
* the adaptive controller spends strictly less recovery downtime.
"""

from __future__ import annotations

from benchmarks.conftest import Reporter, run_once

from repro.faults.schedule import ChaosSpec
from repro.overlay.config import DefenseConfig
from repro.runtime.live import LiveConfig, run_live
from repro.workloads.experiment import Deployment

SEED = 2016
SIM_SECONDS = 120.0
SETTLE_SECONDS = 10.0
#: Rotation cadence for the sim arms: short enough that the fixed
#: baseline pays visible downtime over the horizon.
SIM_PERIOD = 20.0
SIM_DOWNTIME = 0.5

SIM_PRESETS = {
    "link": ChaosSpec.link_level,
    "full": ChaosSpec.full,
    "soak": ChaosSpec.live_soak,
}

LIVE_NODES = 5
LIVE_DURATION = 6.0
LIVE_SEED = 3

#: Wall-clock noise allowance for the live delivery comparison (the sim
#: comparison is exact: same seed, same schedule, deterministic engine).
LIVE_DELIVERY_EPSILON = 0.03

FLOWS = [(7, 9), (9, 11), (4, 5)]


def run_sim_arm(preset: str, adaptive: bool):
    deployment = Deployment(seed=SEED)
    spec = SIM_PRESETS[preset](duration=SIM_SECONDS - SETTLE_SECONDS)
    deployment.add_chaos(spec)
    deployment.add_defense(
        adaptive=adaptive, period=SIM_PERIOD, downtime=SIM_DOWNTIME
    )
    traffic = [
        deployment.add_flow(source, dest, rate_fraction=0.2)
        for source, dest in FLOWS
    ]
    # Count *unique* delivered messages per flow: a crash legitimately
    # resets the destination's dedup horizon, so the raw latency-recorder
    # count re-counts flooded in-flight copies delivered again after a
    # restart — which would credit the arm causing more downtime.
    unique: dict = {flow: set() for flow in FLOWS}
    def tap(message, node):
        flow = (message.source, node.node_id)
        if flow in unique:
            unique[flow].add(message.uid)
    for node in deployment.network.nodes.values():
        node.delivery_observers.append(tap)
    deployment.run(SIM_SECONDS)
    deployment.defense.stop()
    sent = sum(flow.messages_sent for flow in traffic)
    delivered = sum(len(uids) for uids in unique.values())
    summary = deployment.defense.summary()
    invariants = deployment.monitor.summary()
    return {
        "adaptive": adaptive,
        "sent": sent,
        "delivered": delivered,
        "delivery_ratio": delivered / sent if sent else 1.0,
        "violations": invariants["violations"],
        "by_invariant": invariants["by_invariant"],
        "recoveries": summary["recoveries_completed"],
        "downtime_seconds": summary["total_downtime_seconds"],
        "deferrals": summary["deferrals"],
        "advances": summary["advances"],
        "escalations": summary["escalations"],
        "tightenings": summary["tightenings"],
        "budget": summary["budget"],
    }


def run_live_arm(adaptive: bool):
    import dataclasses

    overlay_defaults = LiveConfig().overlay
    defense = dataclasses.replace(
        DefenseConfig(),
        recovery_period=max(2.0, LIVE_DURATION / 2),
        recovery_downtime=0.25,
        belief_half_life=max(2.0, LIVE_DURATION / 4),
        action_cooldown=1.0,
        control_interval=0.25,
    )
    overlay = dataclasses.replace(overlay_defaults, defense=defense)
    report = run_live(LiveConfig(
        nodes=LIVE_NODES,
        duration=LIVE_DURATION,
        seed=LIVE_SEED,
        chaos_preset="soak",
        overlay=overlay,
        recovery="adaptive" if adaptive else "fixed",
    ))
    summary = report.adaptive
    return {
        "adaptive": adaptive,
        "delivery_ratio": report.delivery_ratio,
        "correct_flow_ratio": report.correct_flow_ratio,
        "violations": report.violations,
        "runtime_errors": report.runtime_errors,
        "recoveries": summary["recoveries_completed"],
        "downtime_seconds": summary["total_downtime_seconds"],
        "deferrals": summary["deferrals"],
        "budget": summary["budget"],
        "supervision_kills": report.supervision["kills"],
    }


def test_adaptive_defense(benchmark):
    reporter = Reporter("adaptive")

    def run_all():
        sim = {
            preset: {
                "fixed": run_sim_arm(preset, adaptive=False),
                "adaptive": run_sim_arm(preset, adaptive=True),
            }
            for preset in SIM_PRESETS
        }
        live = {
            "fixed": run_live_arm(adaptive=False),
            "adaptive": run_live_arm(adaptive=True),
        }
        return sim, live

    sim, live = run_once(benchmark, run_all)

    rows = []
    for preset, arms in sim.items():
        for mode in ("fixed", "adaptive"):
            arm = arms[mode]
            rows.append((
                f"sim/{preset}", mode,
                f"{arm['delivery_ratio']:.1%}",
                arm["recoveries"],
                f"{arm['downtime_seconds']:.1f}s",
                arm["violations"],
            ))
    for mode in ("fixed", "adaptive"):
        arm = live[mode]
        rows.append((
            "live/soak", mode,
            f"{arm['delivery_ratio']:.1%}",
            arm["recoveries"],
            f"{arm['downtime_seconds']:.2f}s",
            arm["violations"],
        ))
    reporter.table(
        ["substrate", "mode", "delivery", "recoveries", "downtime", "violations"],
        rows,
    )
    reporter.json_artifact({
        "benchmark": "adaptive_defense",
        "seed": SEED,
        "sim_seconds": SIM_SECONDS,
        "sim_period": SIM_PERIOD,
        "sim_downtime": SIM_DOWNTIME,
        "live_duration": LIVE_DURATION,
        "sim": sim,
        "live": live,
    })
    reporter.flush()

    for preset, arms in sim.items():
        fixed, adaptive = arms["fixed"], arms["adaptive"]
        assert fixed["violations"] == 0, (preset, fixed["by_invariant"])
        assert adaptive["violations"] == 0, (preset, adaptive["by_invariant"])
        assert adaptive["delivery_ratio"] >= fixed["delivery_ratio"], preset
        assert adaptive["downtime_seconds"] < fixed["downtime_seconds"], preset
        assert adaptive["budget"]["peak_down"] <= adaptive["budget"]["max_down"]
        assert fixed["recoveries"] > 0, preset

    fixed, adaptive = live["fixed"], live["adaptive"]
    for arm in (fixed, adaptive):
        assert arm["violations"] == 0, arm
        assert not arm["runtime_errors"], arm
        assert arm["budget"]["peak_down"] <= arm["budget"]["max_down"]
    assert adaptive["downtime_seconds"] < fixed["downtime_seconds"]
    assert adaptive["delivery_ratio"] >= (
        fixed["delivery_ratio"] - LIVE_DELIVERY_EPSILON
    )
