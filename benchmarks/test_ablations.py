"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation removes or sweeps one mechanism and shows the quantity it
exists to protect:

* **E2E ACK timeout** — the paper's stated trade-off: "longer timeouts
  preserve more bandwidth for data messages, but make the network take
  longer to clear back-pressure";
* **Priority queue capacity** — bounded buffers keep the eviction policy
  honest: tiny queues drop, huge queues add latency;
* **Per-source fairness (round-robin) vs. a strawman FIFO** — without
  source fairness, a spammer starves honest traffic;
* **Repair hold (engineered reliable flooding)** — dissemination cost vs
  failover latency;
* **Software variant count** — expected connectivity under a
  one-variant compromise grows with diversity.
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.resilience.variants import assign_variants, assignment_score
from repro.topology import global_cloud
from repro.topology.generators import ring
from repro.overlay.network import OverlayNetwork
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment


def test_ablation_e2e_timeout(benchmark, reporter):
    """Sweep the E2E ACK timeout: ack overhead vs back-pressure latency."""

    def experiment():
        rows = []
        for timeout in (0.05, 0.1, 0.25, 0.5, 1.0):
            config = OverlayConfig(
                link_bandwidth_bps=SCALED_LINK_BPS, e2e_ack_timeout=timeout
            )
            deployment = Deployment(config=config, seed=51)
            deployment.add_flow(7, 9, rate_fraction=1.0, semantics=Semantics.RELIABLE)
            deployment.run(15.0)
            network = deployment.network
            goodput = network.flow_goodput(7, 9).average_mbps(5.0, 15.0)
            acks = sum(n.reliable.acks_generated for n in network.nodes.values())
            source = network.node(7).reliable.flows[(7, 9)]
            rows.append((timeout, goodput, acks, source.buffer_used()))
        return rows

    rows = run_once(benchmark, experiment)
    reporter.table(
        ["E2E timeout s", "goodput Mbps", "acks generated", "src buffer in use"],
        [(t, f"{g:.3f}", a, b) for t, g, a, b in rows],
    )
    # Very long timeouts throttle the flow through back-pressure.
    assert rows[-1][1] < rows[1][1]
    # Very short timeouts generate many more ACKs.
    assert rows[0][2] > 3 * rows[-1][2]


def test_ablation_priority_queue_capacity(benchmark, reporter):
    """Sweep the per-link storage under 2x overload."""

    def experiment():
        rows = []
        for capacity in (5, 25, 100, 400):
            config = OverlayConfig(
                link_bandwidth_bps=SCALED_LINK_BPS,
                priority_queue_capacity=capacity,
            )
            deployment = Deployment(config=config, seed=52)
            deployment.add_flow(9, 11, rate_fraction=2.0)
            deployment.run(15.0)
            result = deployment.flow_result(9, 11, window=(5.0, 15.0))
            rows.append((capacity, result.goodput_mbps, result.mean_latency))
        return rows

    rows = run_once(benchmark, experiment)
    reporter.table(
        ["queue capacity (msgs)", "goodput Mbps", "mean latency s"],
        [(c, f"{g:.3f}", f"{lat:.3f}") for c, g, lat in rows],
    )
    # Deeper queues do not buy goodput under sustained overload...
    assert rows[-1][1] == pytest.approx(rows[1][1], rel=0.3)
    # ...they only buy queueing delay.
    assert rows[-1][2] > 2 * rows[0][2]


def test_ablation_source_fairness(benchmark, reporter):
    """Round-robin source fairness vs what a spammer would get without it.

    We cannot switch fairness off (it is the design); instead we measure
    the honest flow's share and the spammer's, and compare against the
    no-fairness strawman in which bandwidth splits proportionally to
    offered load (spammer offers 10x more)."""

    def experiment():
        net = OverlayNetwork.build(
            ring(4), OverlayConfig(link_bandwidth_bps=1e6), seed=53
        )

        def spam():
            if net.sim.now < 12.0:
                for _ in range(4):
                    net.node(2).send_priority(4, size_bytes=882, priority=10)
                net.sim.schedule(0.02, spam)

        def honest():
            if net.sim.now < 12.0:
                net.node(1).send_priority(3, size_bytes=882, priority=1)
                net.sim.schedule(0.05, honest)

        spam()
        honest()
        net.run(16.0)
        honest_goodput = net.flow_goodput(1, 3).average_mbps(3.0, 12.0)
        spam_goodput = net.flow_goodput(2, 4).average_mbps(3.0, 12.0)
        return honest_goodput, spam_goodput

    honest_goodput, spam_goodput = run_once(benchmark, experiment)
    offered_honest = 882 * 8 / 0.05 / 1e6
    reporter.table(
        ["flow", "offered Mbps", "goodput Mbps"],
        [
            ("honest (prio 1)", f"{offered_honest:.3f}", f"{honest_goodput:.3f}"),
            ("spammer (prio 10)", "~1.4", f"{spam_goodput:.3f}"),
        ],
    )
    reporter.line(
        "no-fairness strawman would give the honest flow "
        f"~{offered_honest / 11:.3f} Mbps (proportional split)"
    )
    # With source fairness the honest flow keeps its full demand.
    assert honest_goodput > 0.85 * offered_honest
    # Without it, it would get about 1/11 of its demand.
    assert honest_goodput > 5 * (offered_honest / 11)


def test_ablation_repair_hold(benchmark, reporter):
    """Sweep the reliable-flooding repair hold: cost vs redundancy."""

    def experiment():
        rows = []
        for hold in (0.0, 0.1, 0.25, 0.5):
            config = OverlayConfig(
                link_bandwidth_bps=SCALED_LINK_BPS,
                reliable_forward_hold=hold,
                e2e_ack_timeout=0.1,
            )
            deployment = Deployment(config=config, seed=54)
            deployment.add_flow(7, 9, rate_fraction=1.0, semantics=Semantics.RELIABLE)
            deployment.run(15.0)
            rows.append((hold, deployment.dissemination_cost(),
                         deployment.flow_result(7, 9, (5.0, 15.0)).goodput_mbps))
        return rows

    rows = run_once(benchmark, experiment)
    reporter.table(
        ["repair hold s", "cost (hops/delivered)", "goodput Mbps"],
        [(h, f"{c:.1f}", f"{g:.3f}") for h, c, g in rows],
    )
    # The hold trades dissemination cost down.
    assert rows[-1][1] < 0.7 * rows[0][1]


def test_ablation_variant_count(benchmark, reporter):
    """More variant families -> better worst-case connectivity."""

    def experiment():
        import random

        rows = []
        for name, topo in (("ring(8)", ring(8)), ("global cloud", global_cloud.topology())):
            nodes = sorted(topo.nodes, key=str)
            for variants in (2, 3):
                optimized = assign_variants(topo, variants)
                opt_expected, opt_worst = assignment_score(topo, optimized, variants)
                rng = random.Random(99)
                random_scores = []
                for _ in range(20):
                    assignment = {n: rng.randrange(variants) for n in nodes}
                    random_scores.append(assignment_score(topo, assignment, variants)[0])
                rand_expected = sum(random_scores) / len(random_scores)
                rows.append((name, variants, opt_expected, opt_worst, rand_expected))
        return rows

    rows = run_once(benchmark, experiment)
    reporter.table(
        ["topology", "variants", "optimized expected", "optimized worst", "random expected"],
        [(n, v, f"{e:.3f}", f"{w:.3f}", f"{r:.3f}") for n, v, e, w, r in rows],
    )
    for name, variants, opt_expected, opt_worst, rand_expected in rows:
        # The optimizer ("increasing network resiliency by optimally
        # assigning diverse variants") beats random assignment.
        assert opt_expected >= rand_expected - 1e-9
    ring_rows = [r for r in rows if r[0] == "ring(8)"]
    # On a sparse topology the gap is substantial.
    assert any(r[2] > r[4] + 0.05 for r in ring_rows)
    # The optimized cloud stays fully connected under any single-variant
    # compromise — architecture and diversity reinforce each other.
    assert all(r[3] == 1.0 for r in rows if r[0] == "global cloud")