"""Figure 9 — One Reliable Flooding flow through attack and partition.

Timeline (scaled from the paper's 300 s to 60 s):

* a correct Reliable Flooding flow sends at link capacity;
* two compromised flows saturate the network (contention phase);
* the attackers stop; then crashes cut every path between source and
  destination (goodput must drop to zero — but no message may be lost);
* one crashed node recovers, reconnecting the network: the flow resumes
  and the backlog drains, with end-to-end reliability and ordering
  preserved throughout.
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment

# Flow 2 -> 9: node 9 (Tokyo)'s only neighbors are 10, 11, 12, so
# crashing those three partitions the destination from the source.
FLOW = (2, 9)
CUT_NODES = [10, 11, 12]
ATTACKERS = [(4, 5), (3, 8)]

T_ATTACK_START = 10.0
T_ATTACK_STOP = 25.0
T_CRASH = 30.0
T_RECOVER = 45.0
T_END = 70.0


def test_fig9(benchmark, reporter):
    def experiment():
        config = OverlayConfig(
            link_bandwidth_bps=SCALED_LINK_BPS, e2e_ack_timeout=0.1
        )
        deployment = Deployment(config=config, seed=37)
        network = deployment.network
        received = []
        network.node(FLOW[1]).on_deliver = lambda m: received.append(m.seq)

        deployment.add_flow(*FLOW, rate_fraction=1.0, semantics=Semantics.RELIABLE)
        for source, dest in ATTACKERS:
            deployment.add_attack_flow(
                source, dest, rate_fraction=1.0, semantics=Semantics.RELIABLE,
                start_at=T_ATTACK_START, stop_at=T_ATTACK_STOP,
            )
        for node in CUT_NODES:
            network.sim.schedule_at(T_CRASH, network.crash, node)
        network.sim.schedule_at(T_RECOVER, network.recover, CUT_NODES[0])
        deployment.run(T_END)

        meter = network.flow_goodput(*FLOW)
        phases = {
            "alone": meter.average_mbps(2.0, T_ATTACK_START),
            "contention": meter.average_mbps(T_ATTACK_START + 2, T_ATTACK_STOP),
            "partitioned": meter.average_mbps(T_CRASH + 3, T_RECOVER),
            "recovered": meter.average_mbps(T_RECOVER + 5, T_END),
        }
        return phases, received, deployment.fair_share_mbps(3)

    phases, received, fair_share = run_once(benchmark, experiment)

    reporter.table(
        ["phase", "goodput Mbps"],
        [(name, f"{mbps:.3f}") for name, mbps in phases.items()],
    )
    reporter.line(f"fair share with 3 flows: {fair_share:.3f} Mbps")
    reporter.line(f"delivered: {len(received)} messages, in order: "
                  f"{received == list(range(1, len(received) + 1))}")

    # Uncontended: most of the link capacity.
    assert phases["alone"] > 0.5 * SCALED_LINK_BPS / 1e6
    # Under contention: at least the guaranteed fair share.
    assert phases["contention"] >= 0.85 * fair_share
    # Partitioned: nothing can be delivered.
    assert phases["partitioned"] == 0.0
    # Recovered: the flow resumes.
    assert phases["recovered"] > 0.3 * SCALED_LINK_BPS / 1e6
    # Reliability: every delivered message in order, exactly once.
    assert received == list(range(1, len(received) + 1))
    assert len(received) > 0
