"""Chaos soak — the monitoring workload under ten minutes of faults.

The deployment carries the Section VI-C monitoring workload while the
chaos engine replays a seeded :class:`~repro.faults.schedule.FaultSchedule`
(link flaps, gray failures, correlated loss bursts, node crash/restarts,
churn, partitions) drawn from :meth:`ChaosSpec.full`.  The invariant
monitor runs throughout; the experiment records

* **delivery ratio** — monitoring reports delivered at the sink versus
  reports sent (reports sent while the reporter or sink is crashed, or
  while the network is partitioned, are legitimately lost: the ratio
  floor asserts graceful degradation, not perfection);
* **recovery latency** — how long quarantined links stay out of the
  routing fabric before probation reinstates them (the
  ``link-quarantine-seconds`` series, recorded at reinstatement);
* **invariant outcome** — the soak must finish with zero violations.
"""

from benchmarks.conftest import run_once
from repro.faults.schedule import ChaosSpec
from repro.overlay.config import OverlayConfig
from repro.workloads.experiment import Deployment
from repro.workloads.monitoring import MonitoringWorkload

# Monitoring traffic is <0.1% of capacity, so full link speed keeps the
# event count manageable over the 10-minute soak (see test_shadow_monitoring).
LINK_BPS = 10e6

SINK = 3  # New York
SOAK_SECONDS = 600.0
SETTLE_SECONDS = 30.0  # let in-flight repairs finish after the last fault
SEED = 2016


def run_soak():
    deployment = Deployment(
        config=OverlayConfig(link_bandwidth_bps=LINK_BPS), seed=SEED
    )
    schedule = deployment.add_chaos(
        ChaosSpec.full(duration=SOAK_SECONDS - SETTLE_SECONDS)
    )
    workload = MonitoringWorkload(deployment.network, sinks=[SINK])
    workload.start()
    deployment.run(SOAK_SECONDS)
    return deployment, schedule, workload


def test_chaos_soak(benchmark, reporter):
    deployment, schedule, workload = run_once(benchmark, run_soak)
    network = deployment.network

    delivered = sum(
        network.delivered_count(node, SINK)
        for node in deployment.topology.nodes
        if node != SINK
    )
    ratio = delivered / workload.messages_sent if workload.messages_sent else 0.0
    quarantine_seconds = network.stats.series("link-quarantine-seconds").values()
    quarantines = network.stats.counter("link_quarantines").value
    reinstatements = network.stats.counter("link_reinstatements").value
    fault_counts = {
        name.split(".", 2)[2]: value
        for name, value in network.stats.counters().items()
        if name.startswith("chaos.fault.")
    }
    monitor = deployment.monitor
    engine = deployment.chaos

    reporter.line(f"seed={SEED}, {SOAK_SECONDS:.0f} s soak, "
                  f"{len(schedule)} scheduled faults")
    reporter.table(
        ["fault kind", "count"],
        [(kind, count) for kind, count in schedule.counts().items()],
    )
    reporter.line(f"engine: {engine.summary()}")
    reporter.line(f"delivery ratio: {delivered}/{workload.messages_sent} "
                  f"= {ratio:.1%} ({workload.reports_shed} shed, no path)")
    reporter.line(f"link quarantines: {quarantines}, "
                  f"reinstatements: {reinstatements}")
    if quarantine_seconds:
        mean_recovery = sum(quarantine_seconds) / len(quarantine_seconds)
        reporter.line(
            f"recovery latency (quarantine -> reinstatement): "
            f"mean {mean_recovery:.1f} s, max {max(quarantine_seconds):.1f} s "
            f"over {len(quarantine_seconds)} reinstatement(s)"
        )
    reporter.line(monitor.report())
    reporter.json_artifact(
        {
            "benchmark": "chaos_soak",
            "seed": SEED,
            "soak_seconds": SOAK_SECONDS,
            "faults_applied": fault_counts,
            "delivery": {
                "delivered": delivered,
                "sent": workload.messages_sent,
                "ratio": ratio,
                "shed": workload.reports_shed,
            },
            "self_healing": {
                "quarantines": quarantines,
                "reinstatements": reinstatements,
                "mean_recovery_seconds": (
                    sum(quarantine_seconds) / len(quarantine_seconds)
                    if quarantine_seconds
                    else None
                ),
            },
            "invariants_ok": monitor.ok,
        }
    )

    # The registry's fault accounting agrees with the engine's own.
    assert fault_counts == {k: v for k, v in engine.counts.items() if v}
    # The chaos run exercised the self-healing machinery end to end.
    assert len(schedule) > 0
    assert quarantines >= 1
    assert reinstatements >= 1
    # Graceful degradation: most reports survive ten minutes of chaos.
    assert ratio >= 0.75, f"delivery ratio collapsed: {ratio:.1%}"
    # Quarantined links come back: probation reinstates what heals.
    assert quarantine_seconds, "no link ever completed quarantine probation"
    # The paper's guarantees hold throughout: zero invariant violations.
    assert monitor.ok, monitor.report()
