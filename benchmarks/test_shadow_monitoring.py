"""Section VI-C — the shadow monitoring system.

"We use the deployment to carry the monitoring messages of the global
cloud [...] The shadow network provided the same timely delivery of
monitoring messages as the production monitoring network [...] In
certain cases, the shadow system was even more timely (about 2-5 ms) on
some of the longer paths in the network because messages arrive first on
a lower latency path compared with the path chosen by the normal
monitoring system, which has other routing considerations."

Two measured deployments carry the same monitoring workload (every node
reports status classes every 1-3 s to one sink):

* **shadow** — the intrusion-tolerant overlay, alternating K-Paths (K=2)
  and Constrained Flooding exactly as the real deployment did;
* **production** — single-path delivery over *min-hop* routes ("other
  routing considerations": production systems rarely pick the
  latency-optimal path).
"""

import pytest

from benchmarks.conftest import run_once
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.workloads.experiment import Deployment

# Monitoring traffic is far below 0.1% of capacity ("the monitoring and
# control traffic amounts to less than 0.1% of the overall traffic"), so
# this benchmark runs at the deployment's full 10 Mbps link speed: the
# event count stays tiny and serialization does not drown the few-ms
# routing differences the paper observed.
LINK_BPS = 10e6
from repro.workloads.monitoring import MonitoringWorkload

SINK = 3  # New York
PHASE = 20.0  # seconds per dissemination method


def min_hop_route(topo, source, sink):
    unit = topo.copy()
    for a, b in unit.edges():
        unit.set_weight(a, b, 1.0)
    return unit.shortest_path(source, sink)


def run_shadow():
    deployment = Deployment(
        config=OverlayConfig(link_bandwidth_bps=LINK_BPS), seed=43
    )
    workload = MonitoringWorkload(
        deployment.network, sinks=[SINK], method=DisseminationMethod.k_paths(2)
    )
    workload.start()
    deployment.run(PHASE)
    workload.set_method(DisseminationMethod.flooding())
    deployment.run(PHASE)
    return deployment, workload


def run_production():
    deployment = Deployment(
        config=OverlayConfig(link_bandwidth_bps=LINK_BPS), seed=43
    )
    routes = {
        (node, SINK): min_hop_route(deployment.topology, node, SINK)
        for node in deployment.topology.nodes
        if node != SINK
    }
    workload = MonitoringWorkload(
        deployment.network, sinks=[SINK], explicit_routes=routes
    )
    workload.start()
    deployment.run(2 * PHASE)
    return deployment, workload


def test_shadow_monitoring(benchmark, reporter):
    def experiment():
        shadow, shadow_workload = run_shadow()
        production, _ = run_production()
        rows = []
        for node in shadow.topology.nodes:
            if node == SINK:
                continue
            s = shadow.network.flow_latency(node, SINK)
            p = production.network.flow_latency(node, SINK)
            flood_phase = [lat for t, lat in s.samples if t >= PHASE]
            flood_mean = sum(flood_phase) / len(flood_phase) if flood_phase else 0.0
            rows.append((node, s.mean(), flood_mean, p.mean(), s.count, p.count))
        staleness = shadow_workload.view_staleness(SINK, at_time=2 * PHASE)
        return rows, staleness

    rows, staleness = run_once(benchmark, experiment)

    reporter.table(
        ["reporter", "shadow ms", "shadow(flood) ms", "production ms", "s msgs", "p msgs"],
        [
            (node, f"{s * 1000:.1f}", f"{f * 1000:.1f}", f"{p * 1000:.1f}", sc, pc)
            for node, s, f, p, sc, pc in rows
        ],
    )
    reporter.line(f"sink view staleness: max {max(staleness):.2f} s")
    improved = [node for node, _, f, p, _, _ in rows if f < p - 0.001]
    reporter.line(
        f"reporters where the shadow (flooding) is >1 ms more timely: {improved}"
    )

    for node, s, _, p, shadow_count, prod_count in rows:
        assert shadow_count > 2 * PHASE / 3.0
        # "The same timely delivery": within queueing noise of production.
        assert s < p + 0.060
    # The real-time view is fresh (status period is 1 s + jitter).
    assert max(staleness) < 5.0
    # On some longer paths the shadow arrives first: flooding delivers on
    # the lowest-latency path while the production route is tie-broken by
    # hop count ("other routing considerations").
    assert improved
