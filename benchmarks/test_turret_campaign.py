"""Section VI-B1 — Turret-style automated attack finding.

"To verify that our implementation is correct in the presence of
Byzantine (arbitrary) attacks, we validated it using the Turret platform
[...] To date, we have fixed all discovered vulnerabilities, and further
iterations of Turret have not revealed new issues."

This campaign runs randomized malicious strategies (drop, delay,
duplicate, reorder, corrupt, field-fuzz, stacked) against the full
12-node deployment and asserts that no protocol invariant is violated
and no unhandled exception occurs.
"""

from benchmarks.conftest import run_once
from repro.byzantine.turret import TurretCampaign
from repro.overlay.config import OverlayConfig
from repro.topology import global_cloud
from repro.workloads.experiment import SCALED_LINK_BPS

ITERATIONS = 12


def test_turret_campaign(benchmark, reporter):
    campaign = TurretCampaign(
        global_cloud.topology,
        n_compromised=3,
        run_seconds=5.0,
        master_seed=4242,
        config=OverlayConfig(link_bandwidth_bps=SCALED_LINK_BPS),
    )

    report = run_once(benchmark, lambda: campaign.run(ITERATIONS))

    reporter.line(report.summary())
    strategies = {}
    for iteration in report.iterations:
        for strategy in iteration.strategies:
            strategies[strategy] = strategies.get(strategy, 0) + 1
    reporter.table(
        ["strategy", "times drawn"], sorted(strategies.items())
    )
    assert report.ok, report.summary()
