"""Figure 7 — Priority Flooding under a message-spamming attack.

A correct flow (7 -> 9, Europe to East Asia) sends at 70% of link
capacity with its messages spread evenly across ten priority levels.
At one third of the run a compromised source starts saturating the
network with highest-priority messages; later a second one joins; then
both stop.

Paper results: the correct source's *higher*-priority messages keep
arriving in real time throughout (lower bands preserved); its
lower-priority messages are delayed or dropped during the attack; when
the attack ends, the backlog stored at intermediate nodes drains *in
order by priority* (an entire priority level is cleared before the next
lower one starts).
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment

FLOW = (7, 9)
SPAMMERS = [(4, 5), (1, 10)]
PHASE = 10.0  # seconds per phase: clean / 1 spammer / 2 spammers / clean
RUN_SECONDS = PHASE * 4


def test_fig7(benchmark, reporter):
    def experiment():
        config = OverlayConfig(
            link_bandwidth_bps=SCALED_LINK_BPS,
            default_expire_after=RUN_SECONDS,  # backlog survives to drain
            priority_queue_capacity=400,
        )
        deployment = Deployment(config=config, seed=29)
        deployment.add_flow(
            *FLOW, rate_fraction=0.7, semantics=Semantics.PRIORITY,
            priority_cycle=list(range(1, 11)),
        )
        deployment.add_attack_flow(*SPAMMERS[0], rate_fraction=1.0,
                                   start_at=PHASE, stop_at=3 * PHASE)
        deployment.add_attack_flow(*SPAMMERS[1], rate_fraction=1.0,
                                   start_at=2 * PHASE, stop_at=3 * PHASE)
        network = deployment.network
        deployment.run(RUN_SECONDS + 10.0)

        # Per-priority delivery counts per phase for the correct flow.
        counts = {}
        for priority in range(1, 11):
            series = network.stats.series(
                f"priority-count:{FLOW[0]}->{FLOW[1]}:{priority}"
            )
            per_phase = [0, 0, 0, 0]
            for time, _ in series.samples:
                phase = min(int(time / PHASE), 3)
                per_phase[phase] += 1
            counts[priority] = per_phase
        return counts

    counts = run_once(benchmark, experiment)

    reporter.table(
        ["priority", "clean", "1 spammer", "2 spammers", "after attack"],
        [(p, *counts[p]) for p in sorted(counts, reverse=True)],
    )

    # Baseline: without attack all levels are delivered roughly evenly.
    clean = [counts[p][0] for p in range(1, 11)]
    assert min(clean) > 0.5 * max(clean)
    # During the two-spammer phase the correct flow's highest priorities
    # are preserved while its lowest are starved.
    under_attack = {p: counts[p][2] for p in range(1, 11)}
    top = sum(under_attack[p] for p in (9, 10))
    bottom = sum(under_attack[p] for p in (1, 2))
    assert top > 2 * max(bottom, 1)
    assert under_attack[10] > 0.5 * counts[10][0]  # top band keeps flowing
    # After the attack the stored low-priority backlog drains.
    drained = sum(counts[p][3] for p in range(1, 6))
    assert drained > 0
