"""Table II — Maximum goodput for one flow, with and without cryptography.

Paper values (controlled lab matching the Figure 3 topology):

                 Priority (Mbps)          Reliable (Mbps)
                 Flood   K=1   K=2        Flood   K=1   K=2
    (a) no crypto  125   480   425          125   395   395
    (b) crypto      45    85    80           40    85    80

The paper's takeaway is the *shape*: with cryptography the overlay is
strictly CPU bound (one-flow goodput drops ~5x for K-paths), and flooding
costs roughly 4x the K-paths goodput because every node spends CPU on
every message.  We reproduce that shape with a scaled lab: 10 Mbps links
and CPU costs scaled so the same ratios emerge (absolute Mbps are not
comparable — the substrate is a simulator).  Results are reported
normalized to the no-crypto K=1 baseline next to the paper's normalized
values.
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.sim.cpu import CpuCosts
from repro.workloads.experiment import DEFAULT_PAYLOAD, Deployment

# Scaled lab: 10 Mbps links (~1000 msgs/s); CPU costs scaled so that
# per-packet processing binds before the link does (row (a)) and source
# RSA signing becomes the bottleneck with cryptography on (row (b)),
# calibrated to the paper's 480 -> 85 Mbps drop for K=1.
LAB_LINK_BPS = 10e6
NO_CRYPTO_COSTS = CpuCosts(
    rsa_sign=0.0, rsa_verify=0.0, hmac=0.0,
    process_packet=1.25e-3, tx_packet=0.7e-3, duplicate_packet=0.3e-3,
)
# Spines verifies every received copy (dedup happens after signature
# verification), so under flooding each duplicate copy costs a verify as
# well — priced into duplicate_packet here.
CRYPTO_COSTS = CpuCosts(
    rsa_sign=11.8e-3, rsa_verify=3.0e-3, hmac=0.14e-3,
    process_packet=1.25e-3, tx_packet=0.7e-3, duplicate_packet=3.3e-3,
)

FLOW = (7, 9)
RUN_SECONDS = 20.0

PAPER = {
    # (crypto, semantics, method) -> Mbps
    ("off", "priority", "flood"): 125.0,
    ("off", "priority", "k1"): 480.0,
    ("off", "priority", "k2"): 425.0,
    ("off", "reliable", "flood"): 125.0,
    ("off", "reliable", "k1"): 395.0,
    ("off", "reliable", "k2"): 395.0,
    ("on", "priority", "flood"): 45.0,
    ("on", "priority", "k1"): 85.0,
    ("on", "priority", "k2"): 80.0,
    ("on", "reliable", "flood"): 40.0,
    ("on", "reliable", "k1"): 85.0,
    ("on", "reliable", "k2"): 80.0,
}

METHODS = {
    "flood": DisseminationMethod.flooding(),
    "k1": DisseminationMethod.k_paths(1),
    "k2": DisseminationMethod.k_paths(2),
}


def measure(crypto: str, semantics: Semantics, method_key: str) -> float:
    costs = CRYPTO_COSTS if crypto == "on" else NO_CRYPTO_COSTS
    config = OverlayConfig(
        link_bandwidth_bps=LAB_LINK_BPS,
        cpu_costs=costs,
        e2e_ack_timeout=0.1,
        reliable_buffer=256,
        # The lab links are 10x faster than the scaled deployment: the
        # per-link optimistic window must cover the higher rate.
        reliable_link_window=128,
    )
    deployment = Deployment(config=config, seed=21)
    source, dest = FLOW
    deployment.add_flow(
        source,
        dest,
        rate_fraction=2.0,  # offered load beyond capacity: find the max
        semantics=semantics,
        method=METHODS[method_key],
    )
    deployment.run(RUN_SECONDS)
    return deployment.network.flow_goodput(source, dest).average_mbps(5.0, RUN_SECONDS)


def test_table2(benchmark, reporter):
    def experiment():
        results = {}
        for crypto in ("off", "on"):
            for semantics in (Semantics.PRIORITY, Semantics.RELIABLE):
                for method_key in ("flood", "k1", "k2"):
                    results[(crypto, semantics.value, method_key)] = measure(
                        crypto, semantics, method_key
                    )
        return results

    results = run_once(benchmark, experiment)

    base = results[("off", "priority", "k1")]
    paper_base = PAPER[("off", "priority", "k1")]
    rows = []
    for key, mbps in results.items():
        rows.append(
            (
                f"{key[0]}-crypto {key[1]} {key[2]}",
                f"{mbps:.2f}",
                f"{mbps / base:.3f}",
                f"{PAPER[key] / paper_base:.3f}",
            )
        )
    reporter.table(["configuration", "Mbps (scaled)", "normalized", "paper norm."], rows)

    # Shape assertions.
    for semantics in ("priority", "reliable"):
        off_k1 = results[("off", semantics, "k1")]
        off_flood = results[("off", semantics, "flood")]
        on_k1 = results[("on", semantics, "k1")]
        on_flood = results[("on", semantics, "flood")]
        # Flooding is several times more expensive than K=1.
        assert off_flood < 0.55 * off_k1
        # With crypto on, signing at the source binds K-paths too, so the
        # flooding penalty narrows (85 vs 45 in the paper; narrower here
        # because Reliable Messaging's ack machinery is charged as well).
        assert on_flood < (0.8 if semantics == "priority" else 0.95) * on_k1
        # Crypto makes the system CPU bound: a multi-x drop for K=1.
        assert 2.5 <= off_k1 / on_k1 <= 10.0
        # K=2 costs no more than K=1 at the source and at most slightly less.
        assert results[("off", semantics, "k2")] <= 1.1 * off_k1
        assert results[("on", semantics, "k2")] <= 1.1 * on_k1
