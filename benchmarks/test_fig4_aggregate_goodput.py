"""Figure 4 — Experimental aggregate goodput for four flooding protocols.

Five flows (9-11, 4-5, 7-9, 1-10, 3-8) each send at link capacity.  The
paper's result: Naive Flooding delivers each flow exactly one fifth of
the link capacity (aggregate = one link's worth); Priority Flooding and
Reliable Flooding without E2E ACKs beat it by avoiding some links;
Priority beats Reliable-without-E2E (dropped messages free capacity);
Reliable Flooding (with E2E ACKs) has the highest aggregate goodput.
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.topology import global_cloud
from repro.workloads.experiment import SCALE, SCALED_LINK_BPS, Deployment

RUN_SECONDS = 30.0
WINDOW = (8.0, RUN_SECONDS)


def run_protocol(semantics: Semantics, e2e_acks: bool = True, naive: bool = False):
    config = OverlayConfig(
        link_bandwidth_bps=SCALED_LINK_BPS,
        e2e_acks_enabled=e2e_acks,
        naive_flooding=naive,
        e2e_ack_timeout=0.1,
        reliable_forward_hold=0.25 if e2e_acks else 0.0,
    )
    deployment = Deployment(config=config, seed=17)
    for source, dest in global_cloud.EVALUATION_FLOWS:
        deployment.add_flow(source, dest, rate_fraction=1.0, semantics=semantics)
    deployment.run(RUN_SECONDS)
    aggregate = deployment.aggregate_goodput_mbps(global_cloud.EVALUATION_FLOWS, WINDOW)
    series = [
        sum(points)
        for points in zip(
            *(
                [mbps for _, mbps in deployment.goodput_series(s, d)]
                for s, d in global_cloud.EVALUATION_FLOWS
            )
        )
    ]
    stats = deployment.network.stats
    metrics = {
        "aggregate_mbps": aggregate,
        "dissemination_cost": deployment.dissemination_cost(),
        "message_types": stats.message_type_snapshot(),
        "counters": {
            name: value
            for name, value in stats.counters().items()
            if name.startswith(("dissemination.", "messages_"))
        },
    }
    return aggregate, series, metrics


def test_fig4(benchmark, reporter):
    def experiment():
        return {
            "Naive Flooding": run_protocol(Semantics.PRIORITY, naive=True),
            "Priority Flooding": run_protocol(Semantics.PRIORITY),
            "Reliable Flooding (no E2E ACKs)": run_protocol(
                Semantics.RELIABLE, e2e_acks=False
            ),
            "Reliable Flooding": run_protocol(Semantics.RELIABLE),
        }

    results = run_once(benchmark, experiment)

    link_mbps = SCALED_LINK_BPS / 1e6
    rows = [
        (
            name,
            f"{aggregate:.2f}",
            f"{aggregate * SCALE:.1f}",
            f"{aggregate / link_mbps:.2f}",
        )
        for name, (aggregate, _, _) in results.items()
    ]
    reporter.table(
        ["protocol", "aggregate Mbps (scaled)", "paper-units Mbps", "x link capacity"],
        rows,
    )
    reporter.line("")
    reporter.line("goodput over time (Mbps, scaled, 1 s buckets):")
    for name, (_, series, _) in results.items():
        head = " ".join(f"{v:4.1f}" for v in series[5:25])
        reporter.line(f"  {name:34s} {head}")
    reporter.json_artifact(
        {
            "figure": "fig4",
            "seed": 17,
            "run_seconds": RUN_SECONDS,
            "window": list(WINDOW),
            "protocols": {name: metrics for name, (_, _, metrics) in results.items()},
        }
    )

    naive = results["Naive Flooding"][0]
    priority = results["Priority Flooding"][0]
    rel_no_e2e = results["Reliable Flooding (no E2E ACKs)"][0]
    reliable = results["Reliable Flooding"][0]
    # Paper shape (documented deviations in EXPERIMENTS.md): naive
    # flooding sits near one link's worth of aggregate capacity;
    # constrained flooding beats it; E2E ACKs lift Reliable Flooding far
    # above the no-E2E ablation.  In our substrate Priority Flooding
    # slightly exceeds Reliable Flooding (the paper has them reversed)
    # and the no-E2E ablation pays its full-dissemination requirement
    # against fair queues, landing below naive rather than above it.
    assert naive == pytest.approx(link_mbps, rel=0.5)
    assert priority > 1.2 * naive
    assert rel_no_e2e > 0.4 * naive
    assert reliable > 1.5 * rel_no_e2e
    assert reliable > 0.85 * naive
    assert priority == max(naive, priority, rel_no_e2e, reliable)
