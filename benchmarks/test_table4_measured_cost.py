"""Table IV — Measured cost of dissemination on the deployment.

Paper values (5 flows at link capacity: 9-11, 4-5, 7-9, 1-10, 3-8):

    protocol                          avg hops   scaled cost
    Priority Flooding                 35.8       19.0
    Reliable Flooding (w/o E2E ACKs)  31.3       16.7
    Reliable Flooding                 16.3        8.7

(The K-Paths experimental costs match their analytical costs and are
omitted, as in the paper.)  Scaled cost normalizes by the K=1 analytical
baseline (1.88 hops on the fitted topology).
"""

import pytest

from benchmarks.conftest import run_once
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.topology import global_cloud
from repro.topology.analysis import average_shortest_metrics
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment

PAPER = {
    "Priority Flooding": (35.8, 19.0),
    "Reliable Flooding (w/o E2E ACKs)": (31.3, 16.7),
    "Reliable Flooding": (16.3, 8.7),
}

RUN_SECONDS = 25.0


def measure(semantics: Semantics, e2e_acks: bool, naive: bool = False) -> float:
    config = OverlayConfig(
        link_bandwidth_bps=SCALED_LINK_BPS,
        e2e_acks_enabled=e2e_acks,
        naive_flooding=naive,
        e2e_ack_timeout=0.1,
        # Without E2E ACKs the repair-link optimization has no skip-forward
        # to exploit, so the ablation floods eagerly (hold = 0).
        reliable_forward_hold=0.25 if e2e_acks else 0.0,
    )
    deployment = Deployment(config=config, seed=11)
    for source, dest in global_cloud.EVALUATION_FLOWS:
        deployment.add_flow(source, dest, rate_fraction=1.0, semantics=semantics)
    deployment.run(RUN_SECONDS)
    return deployment.dissemination_cost()


def test_table4(benchmark, reporter):
    def experiment():
        return {
            "Priority Flooding": measure(Semantics.PRIORITY, e2e_acks=True),
            "Reliable Flooding (w/o E2E ACKs)": measure(
                Semantics.RELIABLE, e2e_acks=False
            ),
            "Reliable Flooding": measure(Semantics.RELIABLE, e2e_acks=True),
        }

    costs = run_once(benchmark, experiment)
    baseline = average_shortest_metrics(global_cloud.topology()).avg_hops

    rows = []
    for name, (paper_hops, paper_scaled) in PAPER.items():
        rows.append(
            (
                name,
                f"{costs[name]:.1f}",
                f"{paper_hops:.1f}",
                f"{costs[name] / baseline:.1f}",
                f"{paper_scaled:.1f}",
            )
        )
    reporter.table(["protocol", "hops", "paper", "scaled", "paper"], rows)
    reporter.line(f"K=1 analytical baseline: {baseline:.2f} hops")

    priority = costs["Priority Flooding"]
    rel_no_e2e = costs["Reliable Flooding (w/o E2E ACKs)"]
    reliable = costs["Reliable Flooding"]
    # Shape: priority flooding (counting partial traversals against the
    # messages that arrive) costs well above the engineered-flooding
    # bound region; neighbor ACKs keep reliable flooding near engineered
    # flooding (32); E2E ACKs cut the cost by at least half again.
    assert 15.0 <= priority <= 64.0
    assert 0.75 * 32.0 <= rel_no_e2e <= 1.25 * 32.0
    assert reliable < 0.6 * rel_no_e2e
    assert reliable < priority
