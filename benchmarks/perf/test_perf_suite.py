"""Sanity and gate-logic tests for the hot-path microbenchmark suite.

These do not measure performance — CI timing is far too noisy for that;
the perf-regression gate (``repro perfbench --quick --baseline ...``)
owns the numbers.  What belongs here is everything about the harness
that can break silently:

* every registered benchmark sets up and runs at a tiny op count;
* the report payload has the shape BENCH_perf.json consumers expect;
* the regression gate's calibration scaling and pass/fail logic;
* the pre-PR merge arithmetic (calibration-corrected speedups).

Nothing in this file writes to ``benchmarks/results/`` — the committed
baseline is an artifact of a deliberate full run, never of a test.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.perf.harness import (
    Benchmark,
    attach_pre_pr,
    build_report,
    compare_to_baseline,
    run_benchmark,
)
from repro.perf.suites import BENCHMARKS, run_suite

BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "results" / "BENCH_perf.json"
)

TINY_OPS = 48


class _CountingBench(Benchmark):
    name = "counting"

    def __init__(self):
        self.setup_total = None
        self.op_calls = 0
        self.tick_calls = 0

    def setup(self, seed, total_ops):
        self.setup_total = total_ops

    def op(self, i):
        self.op_calls += 1

    def tick(self, i):
        self.tick_calls += 1


def test_harness_times_every_op_and_reports_sane_percentiles():
    bench = _CountingBench()
    result = run_benchmark(bench, ops=100, seed=0)
    # Warmup ops run but are not timed; setup saw the full budget.
    assert bench.setup_total == bench.op_calls == bench.tick_calls
    assert result.ops == 100
    assert result.ops_per_sec > 0
    assert 0 <= result.p50_us <= result.p99_us
    assert result.wall_seconds > 0
    payload = result.to_dict()
    assert payload["name"] == "counting"
    assert set(payload) == {
        "name", "ops", "wall_seconds", "ops_per_sec", "p50_us", "p99_us",
    }


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_registered_benchmark_runs_at_tiny_op_count(name):
    result = run_benchmark(BENCHMARKS[name](), ops=TINY_OPS, seed=0)
    assert result.name == name
    assert result.ops == TINY_OPS
    assert result.ops_per_sec > 0


def test_report_shape_matches_committed_baseline():
    results = [run_benchmark(_CountingBench(), ops=16, seed=0)]
    report = build_report(results, mode="quick", seed=0, calibration=1e6)
    assert report["version"] == 1
    assert report["mode"] == "quick"
    assert report["calibration_ops_per_sec"] == 1e6
    assert report["benchmarks"]["counting"]["ops_per_sec"] > 0
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        # The committed artifact must stay consumable by the gate: same
        # top-level shape, every registered benchmark present, and the
        # PR's headline speedups recorded alongside the measurements.
        assert baseline["version"] == 1
        assert set(BENCHMARKS) <= set(baseline["benchmarks"])
        assert baseline["calibration_ops_per_sec"] > 0
        speedups = baseline["speedup_vs_pre_pr"]
        # This PR's headline wins (calibration-corrected, vs the pre-PR
        # measurement merged into the artifact): the PoR round trip from
        # the lazy-RTO/nonce-block/ACK-coalescing work, and forwarding
        # from the LRU/memo fixes.  Honest floors, not aspirations — the
        # substrate-event floor analysis in DESIGN.md §10 bounds what a
        # round trip can reach.
        assert speedups["por_roundtrip"] >= 1.5
        assert speedups["message_forwarding"] >= 1.1


def _fake_report(ops_per_sec: float, calibration: float) -> dict:
    return {
        "version": 1,
        "mode": "quick",
        "seed": 0,
        "calibration_ops_per_sec": calibration,
        "benchmarks": {
            "counting": {"name": "counting", "ops": 1, "wall_seconds": 1.0,
                         "ops_per_sec": ops_per_sec, "p50_us": 1.0, "p99_us": 2.0},
        },
    }


def test_gate_passes_within_budget_and_fails_beyond_it():
    baseline = _fake_report(1000.0, calibration=1e6)
    ok_report = _fake_report(800.0, calibration=1e6)  # -20%: within 25%
    bad_report = _fake_report(700.0, calibration=1e6)  # -30%: regression
    [(name, ratio, ok)] = compare_to_baseline(ok_report, baseline)
    assert name == "counting"
    assert abs(ratio - 0.8) < 1e-9
    assert ok
    [(_, ratio, ok)] = compare_to_baseline(bad_report, baseline)
    assert abs(ratio - 0.7) < 1e-9
    assert not ok


def test_gate_scales_baseline_by_machine_calibration():
    # Same code on a machine measured 2x slower: raw ops/sec halved, but
    # the calibration ratio scales the expectation down to match.
    baseline = _fake_report(1000.0, calibration=2e6)
    report = _fake_report(500.0, calibration=1e6)
    [(_, ratio, ok)] = compare_to_baseline(report, baseline)
    assert abs(ratio - 1.0) < 1e-9 and ok


def test_gate_fails_when_a_benchmark_disappears():
    baseline = _fake_report(1000.0, calibration=1e6)
    report = _fake_report(1000.0, calibration=1e6)
    report["benchmarks"] = {}
    [(name, ratio, ok)] = compare_to_baseline(report, baseline)
    assert name == "counting" and ratio == 0.0 and not ok


def test_attach_pre_pr_records_calibration_corrected_speedups():
    report = _fake_report(3000.0, calibration=2e6)
    pre = _fake_report(1000.0, calibration=1e6)
    attach_pre_pr(report, pre)
    assert report["pre_pr_ops_per_sec"] == {"counting": 1000.0}
    assert report["pre_pr_calibration_ops_per_sec"] == 1e6
    # Raw speedup is 3x, but this machine window measured 2x faster on
    # the calibration loop, so the honest (code-only) speedup is 1.5x.
    assert abs(report["speedup_vs_pre_pr"]["counting"] - 1.5) < 1e-9


def test_quick_suite_runs_end_to_end():
    # One real end-to-end pass at quick op counts: the same entry point
    # the CI gate calls, minus the baseline comparison.
    report = run_suite(mode="quick", seed=0)
    assert set(report["benchmarks"]) == set(BENCHMARKS)
    for payload in report["benchmarks"].values():
        assert payload["ops_per_sec"] > 0
