"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
scaled deployment (see ``repro.workloads.experiment``: link capacity and
offered loads are divided by 10, so all capacity-relative quantities are
comparable).  Results are printed to the terminal (bypassing capture so
they appear in ``bench_output.txt``) and persisted under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class Reporter:
    """Collects one experiment's output table and writes it out."""

    def __init__(self, name: str):
        self.name = name
        self.lines = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers, rows) -> None:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.line(fmt.format(*headers))
        self.line(fmt.format(*("-" * w for w in widths)))
        for row in rows:
            self.line(fmt.format(*(str(c) for c in row)))

    def json_artifact(self, payload) -> pathlib.Path:
        """Persist ``payload`` as ``results/BENCH_<name>.json``.

        Rendered with sorted keys so registry-derived payloads (which are
        deterministic for a seeded run) produce byte-identical artifacts
        across runs — CI uploads these and diffs them between commits.
        """
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{self.name}.json"
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return path

    def flush(self, capmanager=None) -> None:
        text = "\n".join([f"== {self.name} ==", *self.lines, ""])
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        # Bypass pytest's capture (fd-level) so the table reaches the
        # real stdout and therefore bench_output.txt.
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print("\n" + text, flush=True)
        else:
            print("\n" + text, file=sys.__stdout__, flush=True)


@pytest.fixture
def reporter(request):
    rep = Reporter(request.node.name.replace("/", "_"))
    yield rep
    rep.flush(request.config.pluginmanager.getplugin("capturemanager"))


def run_once(benchmark, fn):
    """Run a deterministic simulation exactly once under pytest-benchmark.

    Simulations are deterministic and expensive; a single round gives the
    wall-clock cost without re-running the experiment five times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
