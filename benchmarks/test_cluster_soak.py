"""Cluster soak benchmark: the sharded multi-process overlay under fire.

Partitions a generated 24-node overlay across 4 worker OS processes
(each running its own asyncio/UDP event loop), arms the ``soak`` chaos
preset (sliced per shard by the coordinator), and drives one signed
mid-run JOIN and one signed LEAVE through the control plane.  The gate
is the paper's guarantee lifted to the multi-process runtime: flows
between correct (non-faulted, non-departed) nodes deliver ≥ 99%, no
delivery invariant is violated on any shard, and the joiner's post-join
flows deliver.  ``BENCH_cluster_soak.json`` carries the full aggregate
report (per-shard metrics, membership ledger, rollup) for CI upload;
its timing fields are inherently non-deterministic.
"""

from __future__ import annotations

from benchmarks.conftest import Reporter, run_once

from repro.cluster.deployment import run_cluster
from repro.cluster.spec import ClusterConfig

NODES = 24
SHARDS = 4
DURATION = 8.0
SEED = 1

#: The soak gate: correct-flow delivery may not dip below this.
DELIVERY_FLOOR = 0.99


def test_cluster_soak(benchmark):
    reporter = Reporter("cluster_soak")
    report = run_once(
        benchmark,
        lambda: run_cluster(ClusterConfig(
            nodes=NODES, shards=SHARDS, duration=DURATION, seed=SEED,
            rate_msgs_per_sec=5.0, drain=2.5,
            chaos_preset="soak", joins=1, leaves=1,
        )),
    )
    reporter.table(
        ["shard", "flow", "semantics", "sent", "delivered", "ratio", "tag"],
        [
            (
                f"s{flow['shard']}",
                f"{flow['source']}->{flow['dest']}",
                flow["semantics"],
                flow["sent"],
                flow["delivered"],
                f"{flow['ratio']:.1%}",
                "post-join" if flow["post_join"] else "",
            )
            for flow in report.flows
        ],
    )
    reporter.line()
    for event in report.membership_events:
        reporter.line(
            f"membership: {event['action']} node {event['node']} "
            f"seqno {event['seqno']}"
        )
    reporter.line(
        f"delivery: overall {report.delivery_ratio:.1%}  "
        f"correct-flow {report.correct_flow_ratio:.1%}  "
        f"post-join {report.post_join_ratio:.1%} "
        f"(excluded: {sorted(report.excluded) or 'none'})"
    )
    reporter.line(
        f"invariants: {report.violations} violation(s) across "
        f"{report.shards} shard(s); wall {report.wall_seconds:.1f} s"
    )
    reporter.json_artifact(report.to_dict())
    reporter.flush()

    assert report.failures == [], report.failures
    assert report.violations == 0
    # One signed JOIN applied cluster-wide, one signed LEAVE drained.
    assert len(report.joined) == 1
    assert len(report.departed) == 1
    assert str(report.departed[0]) in set(report.excluded)
    assert report.post_join_flows
    assert report.post_join_ratio >= DELIVERY_FLOOR
    assert report.correct_flow_ratio >= DELIVERY_FLOOR, report.to_dict()["flows"]
    assert report.ok
