#!/usr/bin/env python3
"""Power-grid control over the intrusion-tolerant overlay.

The paper's motivating critical-infrastructure scenario: a control center
issues breaker commands to substations.  "Cloud control messages contain
critical information that changes the state of the system and must be
delivered reliably to maintain consistency" — so commands use Reliable
Messaging with Source-Destination Fairness: end-to-end reliable, in
order, exactly once, even while a forwarder is Byzantine and an
intermediate data center crashes and recovers.

Run:  python examples/scada_control.py
"""

from repro import OverlayConfig, OverlayNetwork
from repro.byzantine.behaviors import SelectiveDropBehavior
from repro.topology import global_cloud

CONTROL_CENTER = 4    # Washington DC
SUBSTATIONS = [9, 12]  # Tokyo, Hong Kong plants
COMMANDS = [
    "breaker 12 OPEN", "breaker 12 CLOSE", "setpoint 4 -> 0.96 pu",
    "load-shed feeder 7", "resync phasor clocks", "breaker 3 OPEN",
    "tap changer +1", "capacitor bank 2 ON", "breaker 3 CLOSE",
    "setpoint 4 -> 1.00 pu",
]


def main() -> None:
    net = OverlayNetwork.build(
        global_cloud.topology(),
        OverlayConfig(link_bandwidth_bps=1e6, e2e_ack_timeout=0.2),
        seed=13,
    )

    logs = {sub: [] for sub in SUBSTATIONS}
    for sub in SUBSTATIONS:
        net.node(sub).on_deliver = (
            lambda m, s=sub: logs[s].append((m.seq, m.payload))
        )

    # A compromised forwarder drops exactly the control flows (a targeted
    # attack that plain TCP/IP routing cannot route around).
    net.compromise(
        10, SelectiveDropBehavior(lambda m: m.source == CONTROL_CENTER)
    )
    print("node 10 (Los Angeles) compromised: silently drops control traffic")

    control = net.client(CONTROL_CENTER)
    issued = {sub: 0 for sub in SUBSTATIONS}

    def issue_commands() -> None:
        for sub in SUBSTATIONS:
            while issued[sub] < len(COMMANDS) and control.send_reliable(
                sub, size_bytes=400, payload=COMMANDS[issued[sub]]
            ):
                issued[sub] += 1
        if any(issued[sub] < len(COMMANDS) for sub in SUBSTATIONS):
            net.sim.schedule(0.5, issue_commands)

    issue_commands()
    net.run(3.0)

    print("mid-sequence: node 11 (San Jose) crashes, cutting more paths")
    net.crash(11)
    net.run(4.0)
    net.recover(11)
    print("node 11 recovered from a clean state")
    net.run(20.0)

    for sub in SUBSTATIONS:
        seqs = [seq for seq, _ in logs[sub]]
        ok = seqs == list(range(1, len(COMMANDS) + 1))
        print(f"substation {sub}: {len(logs[sub])}/{len(COMMANDS)} commands, "
              f"exactly-once in-order: {ok}")
        for seq, payload in logs[sub][:3]:
            print(f"    #{seq}: {payload}")
        print("    ...")
    assert all(
        [seq for seq, _ in logs[sub]] == list(range(1, len(COMMANDS) + 1))
        for sub in SUBSTATIONS
    ), "reliable delivery violated"
    print("\nall control commands delivered reliably, in order, exactly once —")
    print("despite a targeted Byzantine forwarder and a crash/recovery.")


if __name__ == "__main__":
    main()
