#!/usr/bin/env python3
"""Cloud monitoring over the intrusion-tolerant overlay (Section VI-C).

The paper's flagship application: every data center reports status,
link-characteristics, client and task information every 1-3 seconds to a
monitoring sink, using Priority Messaging ("as it provides the necessary
semantics for monitoring").  We run the shadow-monitoring scenario with a
twist: midway through, a compromised node starts spamming highest-
priority traffic — and the operators' real-time view of the cloud stays
fresh because Priority Messaging allocates resources per *source*, never
comparing priorities across sources.

Run:  python examples/cloud_monitoring.py
"""

from repro import DisseminationMethod, OverlayConfig, OverlayNetwork
from repro.byzantine.attacks import PrioritySpamAttack
from repro.topology import global_cloud
from repro.workloads.experiment import Deployment
from repro.workloads.monitoring import MonitoringWorkload

SINK = 3  # the monitoring cluster lives in New York
LINK_BPS = 1e6


def print_view(workload: MonitoringWorkload, deployment: Deployment, label: str) -> None:
    staleness = workload.view_staleness(SINK, at_time=deployment.sim.now)
    worst = max(staleness)
    fresh = sum(1 for s in staleness if s < 3.0)
    print(f"  [{label}] real-time view: {fresh}/11 reporters fresh, "
          f"worst staleness {worst:.2f} s")


def main() -> None:
    deployment = Deployment(
        config=OverlayConfig(link_bandwidth_bps=LINK_BPS), seed=11
    )
    workload = MonitoringWorkload(
        deployment.network,
        sinks=[SINK],
        method=DisseminationMethod.k_paths(2),  # as the deployment ran
    )
    workload.start()
    print("phase 1: monitoring with K=2 node-disjoint paths")
    deployment.run(15.0)
    print_view(workload, deployment, "K=2 paths  ")

    print("phase 2: switch to constrained flooding (validated both live)")
    workload.set_method(DisseminationMethod.flooding())
    deployment.run(15.0)
    print_view(workload, deployment, "flooding   ")

    print("phase 3: node 10 (Los Angeles) is compromised and spams "
          "highest-priority traffic at full link capacity")
    spam = PrioritySpamAttack(deployment.network, 10, 12, rate_bps=LINK_BPS)
    spam.start()
    deployment.run(15.0)
    print_view(workload, deployment, "under spam ")

    print("phase 4: proactive recovery restores node 10 from a clean image")
    spam.stop()
    deployment.network.crash(10)
    deployment.run(1.0)
    deployment.network.recover(10)
    deployment.run(14.0)
    print_view(workload, deployment, "recovered  ")

    print(f"\ntotal monitoring messages sent: {workload.messages_sent}")
    meter = deployment.network.stats.goodput("delivered")
    print(f"total payload delivered: {meter.total_bytes / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
