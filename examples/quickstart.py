#!/usr/bin/env python3
"""Quickstart: build an intrusion-tolerant overlay and send messages.

Builds the paper's 12-data-center global cloud topology, sends Priority
Messaging (monitoring-style) and Reliable Messaging (control-style)
traffic with both dissemination methods, compromises a node, and shows
that delivery guarantees hold.

Run:  python examples/quickstart.py
"""

from repro import DisseminationMethod, OverlayConfig, OverlayNetwork
from repro.byzantine.behaviors import DroppingBehavior
from repro.topology import global_cloud


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build the overlay: 12 nodes, 32 links, PKI, signed MTMW,
    #    Proof-of-Receipt links — all assembled by the builder.
    # ------------------------------------------------------------------
    topology = global_cloud.topology()
    config = OverlayConfig(link_bandwidth_bps=1e6)  # scaled 1 Mbps links
    net = OverlayNetwork.build(topology, config, seed=7)
    print(f"built overlay: {len(net.nodes)} nodes, "
          f"{topology.edge_count} links, "
          f"min node-connectivity >= 3")

    # ------------------------------------------------------------------
    # 2. Priority Messaging (timely, best-effort under contention).
    #    Frankfurt (7) -> Tokyo (9), the longest path on the globe.
    # ------------------------------------------------------------------
    frankfurt = net.client(7)
    frankfurt.send_priority(9, size_bytes=1200, priority=8,
                            method=DisseminationMethod.flooding(),
                            payload=b"status update")
    frankfurt.send_priority(9, size_bytes=1200, priority=8,
                            method=DisseminationMethod.k_paths(3),
                            payload=b"status update 2")
    net.run(seconds=2.0)
    latency = net.flow_latency(7, 9)
    print(f"priority: delivered {latency.count}/2, "
          f"mean latency {latency.mean() * 1000:.1f} ms "
          f"(propagation {topology.path_weight(topology.shortest_path(7, 9)) * 1000:.1f} ms)")

    # ------------------------------------------------------------------
    # 3. Reliable Messaging (end-to-end reliable, in-order).
    # ------------------------------------------------------------------
    received = []
    net.node(5).on_deliver = lambda m: received.append(m.seq)
    dallas = net.client(2)
    sent = 0
    while sent < 20 and dallas.send_reliable(5, size_bytes=600,
                                             payload=b"open breaker"):
        sent += 1
    net.run(seconds=5.0)
    print(f"reliable: sent {sent}, delivered {len(received)}, "
          f"in order: {received == sorted(received)}")

    # ------------------------------------------------------------------
    # 4. Compromise a forwarder: flooding routes around it.
    # ------------------------------------------------------------------
    net.compromise(3, DroppingBehavior())   # New York goes Byzantine
    frankfurt.send_priority(9, size_bytes=1200, payload=b"still delivered")
    net.run(seconds=2.0)
    print(f"after compromising node 3: delivered {net.delivered_count(7, 9)}/3 "
          f"priority messages total")

    # ------------------------------------------------------------------
    # 5. The compromised node cannot fake routing either: a black-hole
    #    routing update is detected and ignored.
    # ------------------------------------------------------------------
    from repro.byzantine.attacks import RoutingWeightAttack

    RoutingWeightAttack(net, attacker=3).launch()
    net.run(seconds=1.0)
    detectors = [n for n, node in net.nodes.items()
                 if 3 in node.routing.detected_compromised]
    print(f"black-hole routing attack: detected as compromised by nodes {detectors}")


if __name__ == "__main__":
    main()
