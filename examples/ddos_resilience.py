#!/usr/bin/env python3
"""Surviving Internet-level attacks: BGP hijacking and Crossfire DDoS.

Section IV's resilient networking architecture, executable: the overlay's
links ride on a multi-ISP underlay with multihoming.  We hit it with the
two attacks of Figure 2 and the BGP-hijack scenario and watch the overlay
keep a transatlantic flow alive throughout.

Run:  python examples/ddos_resilience.py
"""

from repro import OverlayConfig
from repro.resilience.bgp import BgpHijack
from repro.resilience.ddos import RotatingLinkAttack
from repro.resilience.underlay import Underlay
from repro.resilience.variants import assign_variants
from repro.workloads.experiment import Deployment

ISPS = ["telia", "ntt", "cogent"]
FLOW = (6, 2)  # London -> Dallas


def goodput(deployment, start, end):
    return deployment.network.flow_goodput(*FLOW).average_mbps(start, end)


def main() -> None:
    deployment = Deployment(
        config=OverlayConfig(link_bandwidth_bps=1e6), seed=17
    )
    topo = deployment.topology

    # Contract ISPs: the diverse-assignment optimizer picks each node's
    # primary provider; every node multihomes with a second one.
    families = assign_variants(topo, variants=3)
    contracts = {
        node: [ISPS[f], ISPS[(f + 1) % 3]] for node, f in families.items()
    }
    underlay = Underlay(deployment.network, contracts)
    print("underlay: 3 ISPs, every node multihomed with 2 providers")

    deployment.add_flow(*FLOW, rate_fraction=0.3)
    deployment.run(10.0)
    t0 = goodput(deployment, 2, 10)
    print(f"baseline: London->Dallas at {t0:.3f} Mbps")

    # ------------------------------------------------------------------
    print("\n[attack 1] BGP hijack: all cross-ISP Internet routes diverted")
    hijack = BgpHijack(deployment.sim, underlay)
    hijack.start()
    deployment.run(10.0)
    t1 = goodput(deployment, 12, 20)
    print(f"  links usable: {len(underlay.usable_links())}/32 "
          f"(same-ISP combinations keep them up)")
    print(f"  flow goodput during hijack: {t1:.3f} Mbps")
    hijack.stop()

    # ------------------------------------------------------------------
    print("\n[attack 2] Crossfire-style rotating flood on the flow's links")
    # 4 of London's 5 overlay links (the attacker does not know about,
    # or cannot reach, the London-Washington fiber).
    targets = [(6, 3), (6, 7), (6, 8), (1, 6)]
    attack = RotatingLinkAttack(
        deployment.sim, underlay, targets, rotation_period=0.5, breadth=1
    )
    attack.start()
    deployment.run(10.0)
    t2 = goodput(deployment, 22, 30)
    print(f"  attacker floods 1 ISP-combination per link per rotation")
    print(f"  flow goodput under rotating DDoS: {t2:.3f} Mbps "
          f"(multihoming defeats narrow flooding)")

    # ------------------------------------------------------------------
    print("\n[attack 3] the attacker widens to all 4 combinations at once")
    attack.breadth = 4
    deployment.run(10.0)
    t3 = goodput(deployment, 32, 40)
    dead = [link for link in targets if not underlay.link_usable(*link)]
    print(f"  London links dead: {dead} (4 of its 5)")
    print(f"  flow goodput: {t3:.3f} Mbps "
          f"(the overlay reroutes over the surviving London-Washington link)")
    attack.stop()

    assert t1 > 0.8 * t0 and t2 > 0.8 * t0 and t3 > 0.8 * t0
    print("\nthe flow never lost its throughput: the combination of "
          "multihoming, diverse providers,\nand overlay rerouting survives "
          "everything short of a simultaneous multi-ISP meltdown.")


if __name__ == "__main__":
    main()
