"""Cryptographic toolkit.

The paper uses OpenSSL for RSA signatures, Diffie-Hellman key exchange, and
HMAC-SHA256.  We implement the same primitives from scratch on top of the
Python standard library (``hashlib``/``hmac``/``secrets`` only):

* :mod:`repro.crypto.rsa` — RSA key generation (Miller-Rabin) and
  hash-then-sign signatures;
* :mod:`repro.crypto.dh` — Diffie-Hellman over the RFC 3526 2048-bit MODP
  group, authenticated with RSA signatures;
* :mod:`repro.crypto.mac` — HMAC-SHA256 message authentication;
* :mod:`repro.crypto.nonces` — cumulative nonce chains for the
  Proof-of-Receipt link;
* :mod:`repro.crypto.pki` — the administrator-rooted public key
  infrastructure shared by all overlay nodes;
* :mod:`repro.crypto.simulated` — a fast drop-in signature scheme used
  inside large simulations: verification checks a digest of the signed
  fields (so tampering is detected) without bignum math, and CPU time is
  charged through :class:`repro.sim.cpu.Cpu`.
"""

from repro.crypto.dh import DiffieHellman
from repro.crypto.mac import BatchMacContext, hmac_sha256, verify_hmac
from repro.crypto.nonces import CumulativeNonceChain, NonceVerifier
from repro.crypto.pki import Identity, Pki
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.simulated import SimulatedSignature, SimulatedSigner

__all__ = [
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "DiffieHellman",
    "BatchMacContext",
    "hmac_sha256",
    "verify_hmac",
    "CumulativeNonceChain",
    "NonceVerifier",
    "Identity",
    "Pki",
    "SimulatedSignature",
    "SimulatedSigner",
]
