"""Diffie-Hellman key exchange over the RFC 3526 2048-bit MODP group.

The Proof-of-Receipt link establishes a shared secret between each pair of
neighboring overlay nodes with an *authenticated* Diffie-Hellman exchange:
each side signs its public value with its RSA identity key, so a
man-in-the-middle on the underlying IP path cannot substitute its own
values (the threat model lets attackers compromise any underlay component).
"""

from __future__ import annotations

import hashlib
import secrets
from typing import Optional

from repro.errors import CryptoError

# RFC 3526, group 14 (2048-bit MODP).
_P_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFFFFFFFFFF"
)
GROUP_PRIME = int(_P_HEX, 16)
GROUP_GENERATOR = 2
_EXPONENT_BITS = 256  # short exponents are standard practice for group 14


class DiffieHellman:
    """One side of a Diffie-Hellman exchange.

    Usage::

        alice, bob = DiffieHellman(), DiffieHellman()
        alice.compute_shared(bob.public) == bob.compute_shared(alice.public)
    """

    def __init__(self, private: Optional[int] = None):
        if private is None:
            private = secrets.randbits(_EXPONENT_BITS) | 1
        if not 1 <= private < GROUP_PRIME - 1:
            raise CryptoError("DH private exponent out of range")
        self._private = private
        self.public = pow(GROUP_GENERATOR, private, GROUP_PRIME)

    def compute_shared(self, peer_public: int) -> bytes:
        """Derive the 32-byte shared key from the peer's public value.

        The raw group element is hashed (SHA-256) to produce a uniform
        key, and degenerate peer values (0, 1, p-1) are rejected to block
        small-subgroup confinement.
        """
        if not 2 <= peer_public <= GROUP_PRIME - 2:
            raise CryptoError("peer DH public value out of range")
        shared = pow(peer_public, self._private, GROUP_PRIME)
        if shared in (1, GROUP_PRIME - 1):
            raise CryptoError("degenerate DH shared secret")
        size = (GROUP_PRIME.bit_length() + 7) // 8
        return hashlib.sha256(shared.to_bytes(size, "big")).digest()

    @classmethod
    def from_seed(cls, seed: bytes) -> "DiffieHellman":
        """Deterministic instance for reproducible simulations."""
        digest = hashlib.sha256(b"dh:" + seed).digest()
        private = int.from_bytes(digest, "big") | 1
        return cls(private=private)

    def encode_public(self) -> bytes:
        """Serialize the public value for transmission and signing."""
        size = (GROUP_PRIME.bit_length() + 7) // 8
        return self.public.to_bytes(size, "big")
