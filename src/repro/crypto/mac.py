"""HMAC-SHA256 message authentication.

The Proof-of-Receipt link protects every packet between neighboring overlay
nodes with an HMAC keyed by the shared secret from an authenticated
Diffie-Hellman exchange (Section V-D of the paper).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.errors import MacError

MAC_SIZE = 32  # SHA-256 output length in bytes.


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256 of ``message`` under ``key``."""
    return _hmac.new(key, message, hashlib.sha256).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> None:
    """Verify ``tag``; raise :class:`MacError` on mismatch.

    Uses constant-time comparison — malicious neighbors should not be able
    to use timing to forge link-level tags.
    """
    expected = hmac_sha256(key, message)
    if not _hmac.compare_digest(expected, tag):
        raise MacError("HMAC verification failed")


def truncated_hmac(key: bytes, message: bytes, size: int = 16) -> bytes:
    """A truncated HMAC for bandwidth-sensitive headers (still ≥128-bit)."""
    if size < 16:
        raise MacError(f"refusing to truncate HMAC below 16 bytes (got {size})")
    return hmac_sha256(key, message)[:size]


class BatchMacContext:
    """Amortized HMAC-SHA256 for one key across many messages.

    ``hmac.new`` pays the key schedule (hashing the ipad- and opad-masked
    key blocks) on every call.  A Proof-of-Receipt link MACs every data
    packet and ACK under the *same* link key for the life of a key epoch,
    so the schedule can be paid once: keep a keyed base context and
    ``copy()`` it per message, which clones the compressed inner state
    without touching the key again.

    The context holds no per-message state, so one instance may be shared
    by every packet on a link; ``rekey`` swaps in a new key after a
    handshake/rotation.  Verification still compares digests with
    :func:`hmac.compare_digest` (constant time).
    """

    __slots__ = ("_base",)

    def __init__(self, key: bytes):
        self._base = _hmac.new(key, b"", hashlib.sha256)

    def rekey(self, key: bytes) -> None:
        """Re-derive the base context for a new link key."""
        self._base = _hmac.new(key, b"", hashlib.sha256)

    def tag(self, message: bytes) -> bytes:
        """HMAC-SHA256 of ``message``, reusing the keyed base state."""
        ctx = self._base.copy()
        ctx.update(message)
        return ctx.digest()

    def tags(self, messages) -> list:
        """Tags for a batch of messages (one key schedule, N copies)."""
        base = self._base
        return [_finish(base.copy(), message) for message in messages]

    def verify(self, message: bytes, tag: bytes) -> None:
        """Verify one ``tag``; raise :class:`MacError` on mismatch."""
        if not _hmac.compare_digest(self.tag(message), tag):
            raise MacError("HMAC verification failed")

    def verify_batch(self, pairs) -> list:
        """Verify ``(message, tag)`` pairs; return per-pair booleans.

        Batched receive paths want to salvage the good frames of a batch
        rather than abort on the first bad one, so this reports verdicts
        instead of raising.
        """
        base = self._base
        compare = _hmac.compare_digest
        verdicts = []
        for message, tag in pairs:
            ctx = base.copy()
            ctx.update(message)
            verdicts.append(compare(ctx.digest(), tag))
        return verdicts


def _finish(ctx, message: bytes) -> bytes:
    ctx.update(message)
    return ctx.digest()
