"""HMAC-SHA256 message authentication.

The Proof-of-Receipt link protects every packet between neighboring overlay
nodes with an HMAC keyed by the shared secret from an authenticated
Diffie-Hellman exchange (Section V-D of the paper).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.errors import MacError

MAC_SIZE = 32  # SHA-256 output length in bytes.


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256 of ``message`` under ``key``."""
    return _hmac.new(key, message, hashlib.sha256).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> None:
    """Verify ``tag``; raise :class:`MacError` on mismatch.

    Uses constant-time comparison — malicious neighbors should not be able
    to use timing to forge link-level tags.
    """
    expected = hmac_sha256(key, message)
    if not _hmac.compare_digest(expected, tag):
        raise MacError("HMAC verification failed")


def truncated_hmac(key: bytes, message: bytes, size: int = 16) -> bytes:
    """A truncated HMAC for bandwidth-sensitive headers (still ≥128-bit)."""
    if size < 16:
        raise MacError(f"refusing to truncate HMAC below 16 bytes (got {size})")
    return hmac_sha256(key, message)[:size]
