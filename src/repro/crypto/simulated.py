"""Fast simulated signatures and MACs for large simulations.

Real RSA costs ~1 ms of *host* CPU per signature; a saturated flooding
experiment signs and verifies hundreds of thousands of simulated messages,
so doing real bignum math would make the benchmarks intractable without
changing any observable protocol behaviour.  The simulated scheme keeps the
two properties the protocols rely on:

* **integrity** — a signature binds the signer to the exact field values;
  any tampering by a Byzantine forwarder makes verification fail, because
  the tag is a hash of the fields;
* **unforgeability** — the tag also folds in a per-identity secret known
  only to that identity's signer object, so (honest) code cannot fabricate
  a signature on behalf of another node.  A *compromised* node owns its own
  signer, exactly matching the threat model ("a compromised node has access
  to all of the private cryptographic material stored at that node").

Tags use Python's builtin ``hash`` over a tuple — one C-level call — and
are therefore only meaningful within a single process, which is all a
simulation needs.  CPU *time* for crypto is charged separately through
:class:`repro.sim.cpu.Cpu` so that Table II's CPU-bound goodput shape still
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.caching import LruCache

#: Bound on the verification memo: large enough that a saturated
#: benchmark's working set (messages in flight x hops) fits, small
#: enough that a long soak cannot grow without limit.
VERIFY_MEMO_SIZE = 8192

_MISS = object()


@dataclass(frozen=True)
class SimulatedSignature:
    """A simulated signature: the claimed signer plus an integrity tag."""

    signer: Any
    tag: int

    # Wire size accounting: matches RSA-2048.
    WIRE_SIZE = 256


class SimulatedSigner:
    """Holds one identity's signing secret."""

    def __init__(self, identity: Any, secret: int):
        self.identity = identity
        self._secret = secret

    def sign(self, fields: Tuple[Any, ...]) -> SimulatedSignature:
        """Sign a tuple of hashable field values."""
        tag = hash((self._secret, fields))
        return SimulatedSignature(signer=self.identity, tag=tag)

    def mac(self, fields: Tuple[Any, ...]) -> int:
        """Compute a simulated (symmetric) MAC tag over ``fields``.

        Used by the Proof-of-Receipt link when both ends share this
        "secret" (the PKI hands the same link secret to both endpoints,
        standing in for the Diffie-Hellman derived key).
        """
        return hash((self._secret, "mac", fields))


class SimulatedVerifier:
    """Verifies simulated signatures given access to the secret table.

    Only the PKI constructs this; protocol code sees just ``verify``.

    Verdicts are memoized in a bounded LRU keyed by the *complete* check
    — ``(signer, fields, tag)`` — so a memo hit is answering exactly the
    question that was previously computed (no digest truncation that a
    collision could exploit).  The PKI calls :meth:`invalidate` whenever
    any secret changes (key rotation) or a new identity registers, so a
    memoized verdict can never outlive the key material it attests to.
    Unhashable field values (only constructible by test/attack code —
    protocol tuples are hashable) skip the memo entirely.
    """

    def __init__(self, secrets_by_identity: dict):
        self._secrets = secrets_by_identity
        self._memo: LruCache[bool] = LruCache(VERIFY_MEMO_SIZE)

    def invalidate(self) -> None:
        """Forget every memoized verdict (key material changed)."""
        self._memo.clear()

    def verify(self, signer: Any, fields: Tuple[Any, ...], signature: SimulatedSignature) -> bool:
        """Check a simulated signature against the signer's secret."""
        if signature.signer != signer:
            return False
        secret = self._secrets.get(signer)
        if secret is None:
            return False
        # Memo key: (signer, tag) — cheap to hash — with the full fields
        # tuple stored in the entry and compared on hit.  Keying by the
        # fields themselves would hash the nested tuple once for the
        # lookup and again for the insert, tripling the deep-hash work of
        # a cold verification; the equality check on hit keeps verdicts
        # exact (a replayed tag with different fields never matches).
        memo = self._memo
        key = (signer, signature.tag)
        entry = memo.get(key, _MISS)
        if entry is not _MISS and entry[0] == fields:
            return entry[1]  # type: ignore[return-value]
        try:
            verdict = signature.tag == hash((secret, fields))
        except TypeError:  # unhashable field value: nothing to memoize
            return False
        memo.put(key, (fields, verdict))
        return verdict

    def verify_mac(self, identity: Any, fields: Tuple[Any, ...], tag: int) -> bool:
        """Check a simulated symmetric MAC tag."""
        secret = self._secrets.get(identity)
        if secret is None:
            return False
        return tag == hash((secret, "mac", fields))
