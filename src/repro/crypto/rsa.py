"""RSA digital signatures, implemented from scratch.

The paper signs every overlay message with RSA (via OpenSSL) because
signatures provide non-repudiation and scale with network size, unlike
vectors of HMACs.  This module provides the same capability using only the
standard library:

* probabilistic prime generation with Miller-Rabin,
* textbook RSA with a deterministic full-domain-hash style padding
  (SHA-256 digest expanded with MGF1 to the modulus size),
* constant public exponent 65537.

Keys default to 2048 bits to match the deployment, but tests use smaller
keys for speed (key generation cost grows steeply with size).

This is a faithful, self-contained implementation intended for the
simulator and test-benches of this reproduction — not a hardened
production crypto library.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.errors import CryptoError, SignatureError

_PUBLIC_EXPONENT = 65537

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
]


def _is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with ``rounds`` random witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError(f"prime size too small ({bits} bits)")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if candidate % _PUBLIC_EXPONENT == 1:
            continue  # would make e non-invertible more likely; cheap skip
        if _is_probable_prime(candidate):
            return candidate


def _mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation (RFC 8017 B.2.1) with SHA-256."""
    output = b""
    counter = 0
    while len(output) < length:
        c = counter.to_bytes(4, "big")
        output += hashlib.sha256(seed + c).digest()
        counter += 1
    return output[:length]


def _encode_digest(message: bytes, modulus_bytes: int) -> int:
    """Deterministic full-domain-hash encoding of ``message``.

    The SHA-256 digest is expanded with MGF1 to one byte short of the
    modulus size (leading zero byte keeps the representative below n).
    """
    digest = hashlib.sha256(message).digest()
    expanded = _mgf1(digest, modulus_bytes - 1)
    return int.from_bytes(b"\x00" + expanded, "big")


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int = _PUBLIC_EXPONENT

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @property
    def signature_size(self) -> int:
        """Wire size of a signature under this key, in bytes."""
        return self.modulus_bytes

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify ``signature`` over ``message``; raise on failure."""
        if len(signature) != self.modulus_bytes:
            raise SignatureError("signature has wrong length")
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            raise SignatureError("signature representative out of range")
        recovered = pow(s, self.e, self.n)
        expected = _encode_digest(message, self.modulus_bytes)
        if recovered != expected:
            raise SignatureError("signature does not match message")

    def is_valid(self, message: bytes, signature: bytes) -> bool:
        """Boolean convenience wrapper around :meth:`verify`."""
        try:
            self.verify(message, signature)
        except SignatureError:
            return False
        return True

    def fingerprint(self) -> str:
        """Short hex identifier of the key (first 16 hex chars of SHA-256)."""
        raw = self.n.to_bytes(self.modulus_bytes, "big")
        return hashlib.sha256(raw).hexdigest()[:16]


class RsaKeyPair:
    """An RSA private/public key pair with CRT-accelerated signing."""

    def __init__(self, p: int, q: int, e: int = _PUBLIC_EXPONENT):
        if p == q:
            raise CryptoError("p and q must be distinct primes")
        n = p * q
        lam = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, lam)
        except ValueError as exc:  # e not invertible mod lambda
            raise CryptoError("public exponent not invertible") from exc
        self._p = p
        self._q = q
        self._d = d
        self._dp = d % (p - 1)
        self._dq = d % (q - 1)
        self._qinv = pow(q, -1, p)
        self.public = RsaPublicKey(n=n, e=e)

    def sign(self, message: bytes) -> bytes:
        """Produce a deterministic signature over ``message``."""
        m = _encode_digest(message, self.public.modulus_bytes)
        # CRT: s = q_inv * (sp - sq) mod p * q + sq
        sp = pow(m, self._dp, self._p)
        sq = pow(m, self._dq, self._q)
        h = (self._qinv * (sp - sq)) % self._p
        s = sq + h * self._q
        return s.to_bytes(self.public.modulus_bytes, "big")


def generate_keypair(bits: int = 2048) -> RsaKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus."""
    if bits < 128:
        raise CryptoError(f"modulus too small ({bits} bits)")
    half = bits // 2
    while True:
        p = _generate_prime(half)
        q = _generate_prime(bits - half)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        try:
            return RsaKeyPair(p, q)
        except CryptoError:
            continue


def keypair_from_seed(seed: bytes, bits: int = 512) -> RsaKeyPair:
    """Deterministically derive a key pair from ``seed``.

    Used by the simulator's PKI so that node identities are reproducible
    across runs without paying key-generation time on every test.
    """

    def prime_from(counter: int, size: int) -> int:
        nonce = 0
        while True:
            material = hashlib.sha256(seed + bytes([counter]) + nonce.to_bytes(8, "big"))
            candidate = int.from_bytes(_mgf1(material.digest(), size // 8), "big")
            candidate |= (1 << (size - 1)) | 1
            if candidate % _PUBLIC_EXPONENT != 1 and _is_probable_prime(candidate):
                return candidate
            nonce += 1

    half = bits // 2
    p = prime_from(1, half)
    q = prime_from(2, bits - half)
    attempt = 3
    while p == q or (p * q).bit_length() != bits:
        q = prime_from(attempt, bits - half)
        attempt += 1
    return RsaKeyPair(p, q)
