"""Canonical byte encoding of message fields.

Signatures and MACs must cover a *canonical* serialization: two parties
encoding the same logical fields must produce identical bytes, and no two
distinct field tuples may encode to the same bytes (otherwise an attacker
could shift bytes between fields).  We use a simple recursive
length-prefixed tagged encoding over the primitive types that appear in
protocol messages.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import CryptoError


def canonical_bytes(value: Any) -> bytes:
    """Encode ``value`` canonically.

    Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, and (possibly nested) tuples/lists of these.
    """
    if value is None:
        return b"N"
    if value is True:
        return b"T"
    if value is False:
        return b"F"
    if isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"I" + len(raw).to_bytes(4, "big") + raw
    if isinstance(value, float):
        return b"D" + struct.pack(">d", value)
    if isinstance(value, bytes):
        return b"B" + len(value).to_bytes(4, "big") + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(4, "big") + raw
    if isinstance(value, (tuple, list)):
        parts = [canonical_bytes(item) for item in value]
        body = b"".join(parts)
        return b"L" + len(value).to_bytes(4, "big") + body
    raise CryptoError(f"cannot canonically encode type {type(value).__name__}")
