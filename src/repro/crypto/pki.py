"""The overlay's Public Key Infrastructure.

Section III-A: "Overlay network communication is authenticated using a
Public Key Infrastructure (PKI), where the system administrator and each
node in the overlay network has a public/private key pair and knows all
the other public keys."

:class:`Pki` is that shared key directory.  It supports three modes:

* ``REAL`` — every identity gets a from-scratch RSA key pair
  (:mod:`repro.crypto.rsa`); signatures cover the canonical encoding of
  the message fields.  Slow; used in crypto tests and small integration
  runs.
* ``SIMULATED`` — signatures are integrity tags bound to a per-identity
  secret (:mod:`repro.crypto.simulated`).  Tampering and forgery are still
  detected; the cost is one builtin-hash call.  Default for simulations.
* ``NONE`` — signatures are absent and verification always succeeds.
  Used only for Table II(a), which measures goodput with cryptography
  disabled.

The special identity :data:`ADMIN` signs the Maximal Topology with Minimal
Weights.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, Dict, Tuple

from repro.crypto.encoding import canonical_bytes
from repro.crypto.rsa import RsaKeyPair, keypair_from_seed
from repro.crypto.simulated import SimulatedSignature, SimulatedSigner, SimulatedVerifier
from repro.errors import CryptoError

ADMIN = "admin"


class PkiMode(enum.Enum):
    """How signatures are produced and verified."""

    REAL = "real"
    SIMULATED = "simulated"
    NONE = "none"


class Identity:
    """One participant's identity: an id plus its private key material.

    A compromised node "has access to all of the private cryptographic
    material stored at that node" — in this model, its ``Identity``.
    """

    def __init__(self, pki: "Pki", node_id: Any):
        self._pki = pki
        self.node_id = node_id

    def sign(self, fields: Tuple[Any, ...]):
        """Sign a tuple of message fields with this identity's key."""
        return self._pki._sign(self.node_id, fields)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Identity({self.node_id!r})"


class Pki:
    """Shared key directory for every overlay node and the administrator."""

    def __init__(self, mode: PkiMode = PkiMode.SIMULATED, seed: int = 0, rsa_bits: int = 512):
        self.mode = mode
        self._seed = seed
        self._rsa_bits = rsa_bits
        self._rsa_keys: Dict[Any, RsaKeyPair] = {}
        self._sim_secrets: Dict[Any, int] = {}
        self._sim_verifier = SimulatedVerifier(self._sim_secrets)
        self._identities: Dict[Any, Identity] = {}
        #: Monotonic key-material generation.  Bumped whenever the set of
        #: valid (identity, key) pairs changes — new registration or key
        #: rotation — so callers caching verification verdicts (e.g.
        #: ``Message.verify``) can key them by ``(pki, epoch)`` and never
        #: serve a verdict computed under superseded key material.
        self.epoch = 0
        #: Per-identity rotation counts (feeds key derivation).
        self._rotations: Dict[Any, int] = {}
        # Crypto-op accounting (attach_metrics); None keeps the hot path
        # to a single identity check per operation.
        self._ops: Dict[str, Any] = None  # type: ignore[assignment]
        # The administrator exists in every PKI.
        self.register(ADMIN)

    def attach_metrics(self, metrics: Any) -> None:
        """Count every signature/MAC operation in ``metrics``.

        ``metrics`` is a :class:`repro.telemetry.metrics.MetricsRegistry`
        (duck-typed: anything with ``counter(name)``).  The counters —
        ``crypto.sign``, ``crypto.verify``, ``crypto.mac_sign``,
        ``crypto.mac_verify`` — count *logical* operations: in NONE mode
        no work happens and nothing is counted.
        """
        self._ops = {
            "sign": metrics.counter("crypto.sign"),
            "verify": metrics.counter("crypto.verify"),
            "mac_sign": metrics.counter("crypto.mac_sign"),
            "mac_verify": metrics.counter("crypto.mac_verify"),
        }

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, node_id: Any) -> Identity:
        """Create (or return) the identity for ``node_id``."""
        identity = self._identities.get(node_id)
        if identity is not None:
            return identity
        self._install_keys(node_id, rotation=0)
        identity = Identity(self, node_id)
        self._identities[node_id] = identity
        # Registration changes verification outcomes (unknown-signer
        # verdicts flip), so cached verdicts from before are stale.
        self.epoch += 1
        self._sim_verifier.invalidate()
        return identity

    def rotate(self, node_id: Any) -> Identity:
        """Replace ``node_id``'s key pair with a freshly derived one.

        Signatures produced under the old key no longer verify, and the
        epoch bump invalidates every cached verdict (per-message caches
        and the simulated-verifier memo alike).
        """
        identity = self.identity(node_id)
        rotation = self._rotations.get(node_id, 0) + 1
        self._rotations[node_id] = rotation
        self._install_keys(node_id, rotation=rotation)
        self.epoch += 1
        self._sim_verifier.invalidate()
        return identity

    def _install_keys(self, node_id: Any, rotation: int) -> None:
        """Derive and store key material for ``node_id``."""
        suffix = "" if rotation == 0 else f":rot{rotation}"
        if self.mode is PkiMode.REAL:
            seed = hashlib.sha256(
                f"{self._seed}:{node_id}{suffix}".encode("utf-8")
            ).digest()
            self._rsa_keys[node_id] = keypair_from_seed(seed, bits=self._rsa_bits)
        elif self.mode is PkiMode.SIMULATED:
            digest = hashlib.sha256(
                f"{self._seed}:sim:{node_id}{suffix}".encode("utf-8")
            ).digest()
            self._sim_secrets[node_id] = int.from_bytes(digest[:8], "big")

    def identity(self, node_id: Any) -> Identity:
        """Look up an existing identity; raises CryptoError if unknown."""
        identity = self._identities.get(node_id)
        if identity is None:
            raise CryptoError(f"unknown identity {node_id!r}")
        return identity

    @property
    def admin(self) -> Identity:
        return self._identities[ADMIN]

    def knows(self, node_id: Any) -> bool:
        """Whether ``node_id`` is registered in this PKI."""
        return node_id in self._identities

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------
    @property
    def signature_wire_size(self) -> int:
        """Bytes a signature occupies on the wire (for size accounting)."""
        if self.mode is PkiMode.REAL:
            return self._rsa_bits // 8
        if self.mode is PkiMode.SIMULATED:
            return SimulatedSignature.WIRE_SIZE
        return 0

    def _sign(self, node_id: Any, fields: Tuple[Any, ...]):
        if self.mode is PkiMode.NONE:
            return None
        if self._ops is not None:
            self._ops["sign"].add()
        if self.mode is PkiMode.REAL:
            key = self._rsa_keys.get(node_id)
            if key is None:
                raise CryptoError(f"no private key for {node_id!r}")
            return key.sign(canonical_bytes(fields))
        signer = SimulatedSigner(node_id, self._sim_secrets[node_id])
        return signer.sign(fields)

    def verify(self, signer: Any, fields: Tuple[Any, ...], signature: Any) -> bool:
        """Check that ``signature`` was produced by ``signer`` over ``fields``."""
        if self.mode is PkiMode.NONE:
            return True
        if self._ops is not None:
            self._ops["verify"].add()
        if signer not in self._identities:
            return False
        if self.mode is PkiMode.REAL:
            if not isinstance(signature, bytes):
                return False
            key = self._rsa_keys[signer]
            return key.public.is_valid(canonical_bytes(fields), signature)
        if not isinstance(signature, SimulatedSignature):
            return False
        return self._sim_verifier.verify(signer, fields, signature)

    def forge(self, claimed_signer: Any, fields: Tuple[Any, ...]):
        """Produce a *bogus* signature, as a Byzantine node without the
        victim's key would.  Verification of the result always fails
        (with overwhelming probability) — used by attack tests."""
        if self.mode is PkiMode.NONE:
            return None
        if self.mode is PkiMode.REAL:
            return b"\x00" * self.signature_wire_size
        return SimulatedSignature(signer=claimed_signer, tag=hash(("forged", fields)))

    # ------------------------------------------------------------------
    # Link (symmetric) keys
    # ------------------------------------------------------------------
    def link_secret(self, a: Any, b: Any) -> bytes:
        """Shared symmetric key for the link between ``a`` and ``b``.

        Stands in for the authenticated Diffie-Hellman exchange that the
        Proof-of-Receipt link performs at startup (the real handshake is
        implemented and tested in :mod:`repro.link.por`; simulations skip
        re-deriving it every run).
        """
        lo, hi = sorted((str(a), str(b)))
        return hashlib.sha256(f"{self._seed}:link:{lo}:{hi}".encode("utf-8")).digest()

    def _mac(self, a: Any, b: Any, fields: Tuple[Any, ...]) -> int:
        secret = int.from_bytes(self.link_secret(a, b)[:8], "big")
        return hash((secret, fields))

    def mac_tag(self, a: Any, b: Any, fields: Tuple[Any, ...]) -> int:
        """Simulated link MAC under the (a, b) link secret."""
        if self._ops is not None:
            self._ops["mac_sign"].add()
        return self._mac(a, b, fields)

    def verify_mac_tag(self, a: Any, b: Any, fields: Tuple[Any, ...], tag: int) -> bool:
        """Verify a simulated link MAC tag under the (a, b) link secret."""
        if self.mode is PkiMode.NONE:
            return True
        if self._ops is not None:
            self._ops["mac_verify"].add()
        return tag == self._mac(a, b, fields)
