"""Cumulative nonce chains for the Proof-of-Receipt link.

TCP-style cumulative ACKs are vulnerable to the *optimistic ACK* attack
(Savage et al. 1999): a malicious receiver acknowledges data it has not
received, driving the sender arbitrarily fast.  The paper defeats this with
a *proof of receipt*: the sender attaches an unpredictable nonce to every
packet, and a cumulative ACK for sequence ``s`` must present a value that
can only be computed by a party that actually received every nonce up to
``s`` (we fold the nonces into a running SHA-256 chain).

:class:`CumulativeNonceChain` is the receiver side (folds nonces, produces
proofs); :class:`NonceVerifier` is the sender side (remembers what the
proof should be for each sequence number and checks ACKs against it).
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.errors import ProtocolError

NONCE_SIZE = 8
PROOF_SIZE = 16


def _fold(state: bytes, seq: int, nonce: bytes) -> bytes:
    return hashlib.sha256(state + seq.to_bytes(8, "big") + nonce).digest()


class CumulativeNonceChain:
    """Receiver-side cumulative proof computation.

    The receiver folds each in-order packet's nonce into a running state.
    ``proof()`` returns a short tag that only a party holding every nonce
    up to the current sequence could have computed.
    """

    def __init__(self) -> None:
        self._state = hashlib.sha256(b"por-chain-init").digest()
        self._next_seq = 0

    @property
    def next_seq(self) -> int:
        """The next in-order sequence number this chain expects."""
        return self._next_seq

    def fold(self, seq: int, nonce: bytes) -> None:
        """Fold the nonce for ``seq`` (must be the next in-order packet)."""
        if seq != self._next_seq:
            raise ProtocolError(
                f"nonce fold out of order (expected {self._next_seq}, got {seq})"
            )
        self._state = _fold(self._state, seq, nonce)
        self._next_seq += 1

    def proof(self) -> bytes:
        """Proof of receipt covering all folded packets."""
        return self._state[:PROOF_SIZE]


class NonceVerifier:
    """Sender-side proof bookkeeping.

    The sender mirrors the receiver's fold as it transmits packets, records
    the expected proof after each sequence number, and validates incoming
    cumulative ACKs.  Proofs for acknowledged prefixes are discarded, so
    memory is bounded by the in-flight window.
    """

    def __init__(self) -> None:
        self._state = hashlib.sha256(b"por-chain-init").digest()
        self._next_seq = 0
        self._expected: Dict[int, bytes] = {}
        self._acked_up_to = -1

    def register(self, seq: int, nonce: bytes) -> None:
        """Record the nonce attached to outgoing packet ``seq``."""
        if seq != self._next_seq:
            raise ProtocolError(
                f"nonce register out of order (expected {self._next_seq}, got {seq})"
            )
        self._state = _fold(self._state, seq, nonce)
        self._expected[seq] = self._state[:PROOF_SIZE]
        self._next_seq += 1

    def check(self, acked_seq: int, proof: bytes) -> bool:
        """Validate a cumulative ACK for everything up to ``acked_seq``.

        Returns True when the proof is genuine.  An ACK for a sequence the
        sender never transmitted, or with a wrong proof, returns False —
        the caller must ignore it (this is the opt-ack defense).
        """
        if acked_seq <= self._acked_up_to:
            # Stale but potentially honest duplicate; harmless.
            return False
        expected = self._expected.get(acked_seq)
        if expected is None or expected != proof:
            return False
        for seq in range(self._acked_up_to + 1, acked_seq + 1):
            self._expected.pop(seq, None)
        self._acked_up_to = acked_seq
        return True

    @property
    def acked_up_to(self) -> int:
        return self._acked_up_to
