"""The round-robin fair link scheduler.

Both messaging semantics share the same scheduling core (Section V-C):
"each active source [or flow] is treated in a round-robin manner by
selecting the source at the front of the link's sending queue.  If that
source has no message to send, it is removed from the queue, ensuring
that only active sources are considered.  Newly active sources are added
to the end of the queue."

:class:`RoundRobinQueue` implements exactly that: a FIFO of keys with
O(1) membership, where a key is re-appended after service and silently
dropped when it has nothing to send.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Hashable, Optional, Set, TypeVar

T = TypeVar("T")


class RoundRobinQueue:
    """FIFO of active keys (sources or flows) with O(1) membership."""

    def __init__(self) -> None:
        self._queue: Deque[Hashable] = deque()
        self._members: Set[Hashable] = set()

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._members

    def activate(self, key: Hashable) -> None:
        """Add ``key`` to the end of the queue if not already present."""
        if key not in self._members:
            self._members.add(key)
            self._queue.append(key)

    def select(self, has_work: Callable[[Hashable], bool]) -> Optional[Hashable]:
        """Pick the next key to serve.

        Keys without work are removed (they re-activate when new work
        arrives); the served key is moved to the back of the queue.
        Returns None when no key has work.
        """
        while self._queue:
            key = self._queue[0]
            if has_work(key):
                self._queue.rotate(-1)
                return key
            self._queue.popleft()
            self._members.discard(key)
        return None

    def keys(self) -> list:
        """Snapshot of the queued keys, front first."""
        return list(self._queue)
