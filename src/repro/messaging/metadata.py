"""Duplicate-suppression metadata for Priority Messaging.

"Since Priority Messaging does not provide ordered delivery, we cannot
rely on a single sequence number for each source to detect duplicates and
defeat replay attacks.  Each node must store the metadata (i.e. source and
sequence number, but not the message content) of each unique received
message until that message expires.  To limit storage required for
metadata, we can enforce an upper bound on the lifetime of each message."

:class:`MetadataStore` keeps each seen message uid until its expiration
time and reclaims memory lazily with an expiry heap.
"""

from __future__ import annotations

import heapq
from typing import Hashable, List, Tuple


class MetadataStore:
    """Uid → expiry map with heap-based garbage collection."""

    def __init__(self, max_lifetime: float = 120.0):
        #: Upper bound applied to every recorded lifetime (bounds memory).
        self.max_lifetime = max_lifetime
        self._expiry: dict = {}
        self._heap: List[Tuple[float, Hashable]] = []
        self.duplicates_detected = 0

    def __len__(self) -> int:
        return len(self._expiry)

    def check_and_record(self, uid: Hashable, expiration: float, now: float) -> bool:
        """Record ``uid``; returns True if new, False if a duplicate.

        ``expiration`` is the message's own expiration time; it is capped
        at ``now + max_lifetime`` so a malicious source cannot force
        unbounded metadata retention.
        """
        heap = self._heap
        if heap and heap[0][0] < now:
            self._collect(now)
        if uid in self._expiry:
            self.duplicates_detected += 1
            return False
        capped = min(expiration, now + self.max_lifetime)
        self._expiry[uid] = capped
        heapq.heappush(heap, (capped, uid))
        return True

    def seen(self, uid: Hashable, now: float) -> bool:
        """Non-recording membership check."""
        expiry = self._expiry.get(uid)
        return expiry is not None and expiry >= now

    def _collect(self, now: float) -> None:
        while self._heap and self._heap[0][0] < now:
            _, uid = heapq.heappop(self._heap)
            # The uid may have been re-pushed with a later expiry; only
            # drop it when the stored expiry really has passed.
            expiry = self._expiry.get(uid)
            if expiry is not None and expiry < now:
                del self._expiry[uid]
