"""Message and acknowledgment formats.

Every data message is signed by its source overlay node with RSA
(Section V-D, "Cryptographic mechanisms") and carries its dissemination
method: either the full set of K source-selected node-disjoint paths
(source-based routing — forwarders cannot redirect a message without
breaking the signature) or the constrained-flooding flag.

``Message`` objects are immutable; a Byzantine forwarder that wants to
tamper must build a modified copy, whose signature then fails to verify.

Performance: messages are forwarded by reference (copy elision — every
hop offers the *same* immutable object to its link queues, sharing the
payload and path tuples), and the derived values each hop needs —
the canonical signed-field tuple, the duplicate-suppression ``uid``, and
the signature verdict — are computed once per object and cached in
dedicated slots.  The caches are safe precisely because the dataclass is
frozen: any tamper requires ``dataclasses.replace``, which builds a new
object with *empty* caches (``init=False`` fields are reinitialized, not
copied), so a modified copy can never inherit a stale "verified" verdict.
The verify cache additionally records the PKI instance and its key
``epoch``, so rotating a key invalidates every previously cached verdict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.crypto.pki import Pki
from repro.topology.graph import NodeId

#: Wire bytes added to each data message by the overlay header
#: (ids, seqno, priority, expiration, dissemination descriptor).
MESSAGE_HEADER_SIZE = 64

#: Wire size of an E2E ACK: header + per-source cumulative entries.
E2E_ACK_BASE_SIZE = 48
E2E_ACK_ENTRY_SIZE = 12

#: Wire size of a neighbor ACK entry (flow id + cumulative seq).
NEIGHBOR_ACK_BASE_SIZE = 32
NEIGHBOR_ACK_ENTRY_SIZE = 16


class Semantics(enum.Enum):
    """Which intrusion-tolerant messaging semantics a message uses."""

    PRIORITY = "priority"
    RELIABLE = "reliable"


@dataclass(frozen=True, slots=True)
class Message:
    """One overlay data message.

    Attributes
    ----------
    source, dest:
        Overlay node ids.  (Priority messages are point-to-point in the
        evaluation; flooding still delivers only to ``dest``.)
    seq:
        Monotonically increasing per source (PRIORITY) or consecutive per
        (source, dest) flow (RELIABLE).
    semantics:
        PRIORITY or RELIABLE.
    priority:
        1 (lowest) .. 10 (highest); meaningful for PRIORITY only.
    expiration:
        Absolute simulated time after which the message is worthless and
        every node discards it (PRIORITY only; None for RELIABLE).
    size_bytes:
        Application payload size (goodput is accounted in payload bytes).
    flooding / paths:
        The dissemination method: constrained flooding, or the tuple of
        source-selected node-disjoint paths.
    sent_at:
        Source timestamp used for latency measurement.
    payload:
        Opaque application data (not interpreted by the overlay).
    signature:
        Source signature over every semantic field above.
    """

    source: NodeId
    dest: NodeId
    seq: int
    semantics: Semantics
    priority: int = 1
    expiration: Optional[float] = None
    size_bytes: int = 1000
    flooding: bool = True
    paths: Optional[Tuple[Tuple[NodeId, ...], ...]] = None
    sent_at: float = 0.0
    payload: Any = None
    signature: Any = None
    # Per-object derived-value caches.  Excluded from __init__, __eq__,
    # __hash__, and __repr__, so semantics are identical to the uncached
    # dataclass; ``replace`` resets them (a tampered copy starts cold).
    _signed_fields_cache: Optional[Tuple[Any, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _uid_cache: Optional[Tuple[Any, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: (pki instance, pki.epoch at verification time, verdict)
    _verify_cache: Optional[Tuple[Any, int, bool]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def signed_fields(self) -> Tuple[Any, ...]:
        """Canonical tuple of fields covered by the source signature."""
        cached = self._signed_fields_cache
        if cached is not None:
            return cached
        # No ``None`` in the canonical tuple: ``hash(None)`` is derived
        # from its address on CPython < 3.12, so a None field would make
        # SIMULATED signatures disagree across OS processes (the sharded
        # cluster runtime verifies messages signed in another process).
        fields = (
            "msg",
            str(self.source),
            str(self.dest),
            self.seq,
            self.semantics.value,
            self.priority,
            -1.0 if self.expiration is None else self.expiration,
            self.size_bytes,
            self.flooding,
            tuple(tuple(str(n) for n in p) for p in self.paths) if self.paths else (),
            self.sent_at,
        )
        object.__setattr__(self, "_signed_fields_cache", fields)
        return fields

    def sign(self, pki: Pki) -> "Message":
        """Return a copy carrying the source's signature."""
        fields = self.signed_fields()
        signature = pki.identity(self.source).sign(fields)
        signed = replace(self, signature=signature)
        # The signed fields do not cover the signature itself, so the
        # fresh copy may inherit the canonical tuple (but nothing else).
        object.__setattr__(signed, "_signed_fields_cache", fields)
        return signed

    def verify(self, pki: Pki) -> bool:
        """Check the source signature against the PKI.

        The verdict is cached per message object and per PKI key epoch:
        forwarding the same immutable object across many hops of one
        node's queues verifies once, while any key rotation (which bumps
        ``pki.epoch``) or tampered copy (fresh object, cold cache) is
        re-checked in full.
        """
        cached = self._verify_cache
        epoch = pki.epoch
        if (
            cached is not None
            and cached[0] is pki
            and cached[1] == epoch
        ):
            return cached[2]
        verdict = pki.verify(self.source, self.signed_fields(), self.signature)
        object.__setattr__(self, "_verify_cache", (pki, epoch, verdict))
        return verdict

    # ------------------------------------------------------------------
    @property
    def uid(self) -> Tuple[Any, ...]:
        """Network-wide unique id used for duplicate suppression."""
        cached = self._uid_cache
        if cached is not None:
            return cached
        uid = (self.semantics.value, str(self.source), str(self.dest), self.seq)
        object.__setattr__(self, "_uid_cache", uid)
        return uid

    @property
    def flow(self) -> Tuple[NodeId, NodeId]:
        return (self.source, self.dest)

    def wire_size(self, signature_size: int) -> int:
        """Total bytes on the wire: payload + header + paths + signature."""
        path_bytes = 0
        if self.paths:
            path_bytes = sum(4 * len(p) for p in self.paths)
        return self.size_bytes + MESSAGE_HEADER_SIZE + path_bytes + signature_size

    def is_expired(self, now: float) -> bool:
        """Whether the message is past its expiration at time ``now``."""
        return self.expiration is not None and now > self.expiration

    def __repr__(self) -> str:  # pragma: no cover
        method = "flood" if self.flooding else f"k={len(self.paths or ())}"
        return (
            f"Message({self.source}->{self.dest} #{self.seq} "
            f"{self.semantics.value}/{method} prio={self.priority})"
        )


@dataclass(frozen=True, slots=True)
class E2eAck:
    """A destination's signed, flooded end-to-end acknowledgment.

    ``cumulative`` maps source node id → highest in-order sequence number
    the destination has received from that source.  ``stamp`` orders ACKs
    from the same destination (overtaken-by-event: nodes keep only the
    newest stamp per destination and forward only ACKs that indicate
    progress, no more often than the E2E timeout).
    """

    dest: NodeId
    stamp: int
    cumulative: Tuple[Tuple[str, int], ...]  # sorted ((source, seq), ...)
    signature: Any = None
    # Same per-object caches as Message (see its docstring): an ACK is
    # flooded network-wide, so the verdict cache saves one verification
    # per additional hop within a node process.
    _signed_fields_cache: Optional[Tuple[Any, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _verify_cache: Optional[Tuple[Any, int, bool]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @staticmethod
    def make_cumulative(by_source: Dict[NodeId, int]) -> Tuple[Tuple[str, int], ...]:
        """Canonical sorted tuple form of a per-source cumulative map."""
        return tuple(sorted((str(s), seq) for s, seq in by_source.items()))

    def signed_fields(self) -> Tuple[Any, ...]:
        """Canonical tuple of fields covered by the destination signature."""
        cached = self._signed_fields_cache
        if cached is not None:
            return cached
        fields = ("e2e-ack", str(self.dest), self.stamp, self.cumulative)
        object.__setattr__(self, "_signed_fields_cache", fields)
        return fields

    @classmethod
    def create(
        cls, pki: Pki, dest: NodeId, stamp: int, by_source: Dict[NodeId, int]
    ) -> "E2eAck":
        cumulative = cls.make_cumulative(by_source)
        unsigned = cls(dest, stamp, cumulative)
        signature = pki.identity(dest).sign(unsigned.signed_fields())
        return cls(dest, stamp, cumulative, signature)

    def verify(self, pki: Pki) -> bool:
        """Check the destination signature against the PKI (cached per
        object and PKI key epoch, exactly like :meth:`Message.verify`)."""
        cached = self._verify_cache
        epoch = pki.epoch
        if cached is not None and cached[0] is pki and cached[1] == epoch:
            return cached[2]
        verdict = pki.verify(self.dest, self.signed_fields(), self.signature)
        object.__setattr__(self, "_verify_cache", (pki, epoch, verdict))
        return verdict

    def seq_for(self, source: NodeId) -> int:
        """Cumulative acked sequence for ``source`` (-1 if absent)."""
        key = str(source)
        for src, seq in self.cumulative:
            if src == key:
                return seq
        return -1

    @property
    def wire_size(self) -> int:
        return E2E_ACK_BASE_SIZE + E2E_ACK_ENTRY_SIZE * len(self.cumulative)

    def indicates_progress_over(self, other: Optional["E2eAck"]) -> bool:
        """True if this ACK advances any flow relative to ``other``."""
        if other is None:
            return True
        if self.stamp <= other.stamp:
            return False
        theirs = dict(other.cumulative)
        return any(seq > theirs.get(src, -1) for src, seq in self.cumulative)


@dataclass(frozen=True, slots=True)
class NeighborAck:
    """Hop-local, unsigned ACK: "for flow F, I have stored up to ``h`` and
    can store up to ``limit``".

    Sent between direct neighbors over the (already authenticated) PoR
    link, so no end-to-end signature is needed.  Used by Reliable
    Messaging to avoid forwarding messages a neighbor already has
    (``h``), for hop-by-hop flow control (``limit`` = acked + buffer, so
    honest senders never overrun a neighbor's static per-flow buffer),
    and to re-trigger sending when the neighbor's buffer frees.
    """

    sender: NodeId
    #: ((source, dest), stored_h, limit) per flow.
    entries: Tuple[Tuple[Tuple[str, str], int, int], ...]

    @property
    def wire_size(self) -> int:
        return NEIGHBOR_ACK_BASE_SIZE + NEIGHBOR_ACK_ENTRY_SIZE * len(self.entries)


@dataclass(frozen=True, slots=True)
class Hello:
    """Periodic liveness beacon used for link monitoring."""

    sender: NodeId
    stamp: int

    WIRE_SIZE = 24


@dataclass(frozen=True, slots=True)
class AdmissionNack:
    """Typed admission verdict, flooded from an ingress node back to a
    client session's home node.

    ``offer_priority`` returns ADMITTED/PARKED/REJECTED synchronously on
    every substrate, but a PARKED offer's *terminal* fate — released,
    expired, evicted, or cleared by a crash — resolves asynchronously
    inside the admission controller.  When the offering session's home
    node differs from the ingress that parked the offer (failover), this
    frame carries the resolution across the overlay so the session can
    stop waiting on a deadline it will never meet.  Like
    :class:`NeighborAck` it is unsigned: it only travels hop-by-hop over
    already-authenticated PoR links, and the worst a Byzantine forger
    achieves is a spurious client retry, which the session layer's
    global retry budget bounds.

    ``seq`` is monotonically increasing per ingress and, with
    ``ingress``, forms the flood-dedup uid.
    """

    ingress: NodeId
    home: NodeId
    client: str
    key: str
    outcome: str  # "released" | "expired" | "evicted" | "cleared" | "rejected"
    seq: int

    WIRE_SIZE = 64

    @property
    def uid(self) -> Tuple[Any, ...]:
        """Flood-dedup id (unique per ingress decision)."""
        return ("nack", str(self.ingress), self.seq)


@dataclass(frozen=True, slots=True)
class StateRequest:
    """Sent by a node recovering from a crash (Section V-C2).

    The neighbor replies with its latest stored E2E ACKs (so the
    recovering node can skip forward to global progress) and rewinds its
    per-flow sending cursors toward the requester (so unacknowledged data
    is retransmitted).
    """

    sender: NodeId

    WIRE_SIZE = 24
