"""Intrusion-tolerant messaging semantics.

Two semantics from Section V-C, each combinable with either dissemination
method (K node-disjoint paths or constrained flooding) on a
message-by-message basis:

* :mod:`repro.messaging.priority` — Priority Messaging with Source
  Fairness: strict timeliness for each source's highest-priority
  messages; per-source fair storage/bandwidth on every outgoing link.
* :mod:`repro.messaging.reliable` — Reliable Messaging with
  Source-Destination Fairness: end-to-end reliable in-order delivery per
  flow, static per-flow buffers with back-pressure, flooded
  overtaken-by-event E2E ACKs and neighbor ACKs.

Shared pieces: the message/ACK wire formats (:mod:`repro.messaging.message`),
the duplicate-suppression metadata store (:mod:`repro.messaging.metadata`),
and the round-robin fair link scheduler (:mod:`repro.messaging.scheduler`).
"""

from repro.messaging.message import (
    E2eAck,
    Message,
    NeighborAck,
    Semantics,
)
from repro.messaging.metadata import MetadataStore
from repro.messaging.scheduler import RoundRobinQueue

__all__ = [
    "Message",
    "Semantics",
    "E2eAck",
    "NeighborAck",
    "MetadataStore",
    "RoundRobinQueue",
]
