"""DoS-resistant admission control in front of Priority Messaging.

The overlay's source-fairness eviction (Section V-C1) protects the
*network interior*, but a node that signs and forwards every message its
clients offer still wastes its own egress capacity under overload — and
a Byzantine client tier can offer unbounded load.  This module puts an
admission stage between the client tier and :meth:`OverlayNode.
send_priority`, modeled on DoS-resistant transaction mempools:

* **Dynamic per-source floor** — each client source is metered by a
  token bucket refilled at ``clamp(capacity_rate / active_sources,
  floor_min, floor_max)`` messages/second.  A conforming source that
  offers at or below ``floor_min`` is therefore *never* rejected, no
  matter what the rest of the tier does (the no-starvation guarantee the
  property tests pin).
* **Surge multiplier** — while the measured load is low the allowance is
  multiplied by up to ``surge_max`` so idle capacity is usable; the
  multiplier decays linearly to 1.0 as load rises through the park band.
* **Park / reject watermarks with hysteresis** — a load signal (the
  node's worst outgoing priority-queue occupancy) drives an
  OPEN → PARK → REJECT state machine.  Out-of-allowance offers are
  *parked* in a bounded buffer while load is moderate and *rejected*
  outright once the reject watermark is crossed; distinct enter/exit
  watermarks keep the state from flapping.
* **Replace-by-priority** — when the park buffer is full, a strictly
  higher-priority offer evicts the oldest lowest-priority parked entry;
  a lower- or equal-priority offer is rejected.  An eviction never
  discards a higher-priority entry for a lower one, by construction.

Every offer ends in exactly one bucket, and the controller maintains the
conservation law::

    offered == admitted + released + rejected + evicted + expired
               + cleared + parked (live)

which the Hypothesis property tests assert after arbitrary operation
sequences.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError


class AdmissionOutcome(enum.Enum):
    """Fate of one offered message at the admission stage."""

    ADMITTED = "admitted"
    PARKED = "parked"
    REJECTED = "rejected"


class AdmissionState(enum.Enum):
    """The watermark state machine (hysteresis over the load signal)."""

    OPEN = "open"
    PARK = "park"
    REJECT = "reject"


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of one node's admission controller.

    Watermarks are fractions of the load signal (0..1) and must satisfy
    ``park_low < park_high <= reject_low < reject_high``: the park band
    always opens strictly below the reject band, so the controller can
    never reject without first having parked (watermark monotonicity).
    """

    #: Aggregate client messages/second this node's egress is sized for.
    #: The per-source allowance is this divided by the active sources.
    capacity_rate: float = 250.0
    #: Per-source allowance clamp (messages/second).  ``floor_min`` is a
    #: hard guarantee: a source offering at or below it is always served.
    floor_min: float = 5.0
    floor_max: float = 50.0
    #: Token-bucket depth per source, in messages (burst tolerance).
    burst_tokens: float = 8.0
    #: Allowance multiplier at low load; decays to 1.0 across the park
    #: band.  ``1.0`` disables the surge entirely.
    surge_max: float = 4.0
    #: Bounded park buffer (0 disables parking: out-of-allowance offers
    #: are rejected immediately — the conformance test mode, where every
    #: decision is a pure token-bucket count).
    park_capacity: int = 256
    #: Parked entries older than this are expired at the next tick.
    park_timeout: float = 2.0
    #: Hysteresis watermarks on the load signal.
    park_low: float = 0.25
    park_high: float = 0.50
    reject_low: float = 0.60
    reject_high: float = 0.85
    #: Parked entries released per tick while the load is below
    #: ``park_low`` (drain pacing).
    release_batch: int = 16
    #: Controller tick cadence (load sampling, state transitions, drain).
    tick_interval: float = 0.05
    #: Sources silent for this long stop counting as active.
    source_idle_timeout: float = 10.0
    #: Two-key metering: when True, offers are additionally metered by a
    #: per-*destination* token bucket (same capacity/floor math, keyed by
    #: the offer's ``dest``), so a Zipf-hot destination throttles at the
    #: ingress even when every individual source is conforming.  Both
    #: buckets must hold a token; both are decremented only on admission.
    per_destination: bool = False

    def __post_init__(self) -> None:
        if self.capacity_rate <= 0:
            raise ConfigurationError("capacity_rate must be positive")
        if not 0 < self.floor_min <= self.floor_max:
            raise ConfigurationError("need 0 < floor_min <= floor_max")
        if self.burst_tokens < 1.0:
            raise ConfigurationError("burst_tokens must be >= 1")
        if self.surge_max < 1.0:
            raise ConfigurationError("surge_max must be >= 1")
        if self.park_capacity < 0:
            raise ConfigurationError("park_capacity must be >= 0")
        if self.park_timeout <= 0:
            raise ConfigurationError("park_timeout must be positive")
        if not 0.0 <= self.park_low < self.park_high:
            raise ConfigurationError("need 0 <= park_low < park_high")
        if not self.park_high <= self.reject_low < self.reject_high <= 1.0:
            raise ConfigurationError(
                "need park_high <= reject_low < reject_high <= 1"
            )
        if self.release_batch < 1:
            raise ConfigurationError("release_batch must be >= 1")
        if self.tick_interval <= 0:
            raise ConfigurationError("tick_interval must be positive")
        if self.source_idle_timeout <= 0:
            raise ConfigurationError("source_idle_timeout must be positive")


class _SourceMeter:
    """Token bucket + bookkeeping for one client source."""

    __slots__ = ("tokens", "refilled_at", "last_offer", "offered", "admitted")

    def __init__(self, now: float, burst: float):
        self.tokens = burst  # new sources start with a full bucket
        self.refilled_at = now
        self.last_offer = now
        self.offered = 0
        self.admitted = 0


class _ParkedEntry:
    """One deferred offer waiting in the park buffer."""

    __slots__ = ("source", "priority", "send", "parked_at", "on_final")

    def __init__(
        self,
        source: Hashable,
        priority: int,
        send: Callable[[], Any],
        parked_at: float,
        on_final: Optional[Callable[[str], None]] = None,
    ):
        self.source = source
        self.priority = priority
        self.send = send
        self.parked_at = parked_at
        self.on_final = on_final


class AdmissionController:
    """Per-node admission stage (see module docstring).

    ``clock`` is anything with a ``now`` attribute (the simulator, the
    asyncio scheduler, or a plain test stub).  ``load_fn`` returns the
    load signal in [0, 1]; it is sampled on every :meth:`tick`.  Offers
    carry a zero-argument ``send`` callable that performs the actual
    injection — invoked immediately on admission, later on release of a
    parked entry, and never for rejected or evicted offers.
    """

    def __init__(
        self,
        config: AdmissionConfig,
        clock: Any,
        load_fn: Callable[[], float],
        stats: Optional[Any] = None,
        name: str = "admission",
    ):
        self.config = config
        self.name = name
        self._clock = clock
        self._load_fn = load_fn
        self.state = AdmissionState.OPEN
        self.load = 0.0
        self._surge = config.surge_max
        self._sources: Dict[Hashable, _SourceMeter] = {}
        #: Second meter family for two-key admission (``per_destination``).
        self._dests: Dict[Hashable, _SourceMeter] = {}
        #: Park buffer: per-priority FIFO deques + a live total.
        self._park: Dict[int, Deque[_ParkedEntry]] = {}
        self._parked_live = 0
        # Conservation counters (see module docstring).
        self.offered = 0
        self.admitted = 0
        self.released = 0
        self.rejected = 0
        self.evicted = 0
        self.expired = 0
        self.cleared = 0
        self.state_changes = 0
        self._stats = stats
        if stats is not None:
            self._c_offered = stats.counter("admission.offered")
            self._c_admitted = stats.counter("admission.admitted")
            self._c_parked = stats.counter("admission.parked")
            self._c_rejected = stats.counter("admission.rejected")
            self._c_evicted = stats.counter("admission.evicted")
            self._c_released = stats.counter("admission.released")
            self._c_expired = stats.counter("admission.expired")
            self._load_series = stats.series(f"{name}.load")

    # ------------------------------------------------------------------
    # Offer path
    # ------------------------------------------------------------------
    def offer(
        self,
        source: Hashable,
        priority: int,
        send: Callable[[], Any],
        size_bytes: int = 0,
        dest: Optional[Hashable] = None,
        on_final: Optional[Callable[[str], None]] = None,
    ) -> AdmissionOutcome:
        """Decide the fate of one offered message and act on it.

        ``dest`` feeds the optional two-key (per-destination) meter.
        ``on_final`` is invoked at most once with the *terminal*
        resolution of a PARKED offer — ``"released"``, ``"expired"``,
        ``"evicted"`` or ``"cleared"`` — so callers (the typed-NACK
        path) learn asynchronously what the synchronous PARKED return
        could not tell them.  Synchronous outcomes never fire it.
        """
        now = self._clock.now
        self.offered += 1
        if self._stats is not None:
            self._c_offered.add()
        meter = self._sources.get(source)
        if meter is None:
            meter = self._sources[source] = _SourceMeter(
                now, self.config.burst_tokens
            )
        else:
            self._refill(meter, now, self._sources)
        meter.offered += 1
        meter.last_offer = now
        dest_meter: Optional[_SourceMeter] = None
        if self.config.per_destination and dest is not None:
            dest_meter = self._dests.get(dest)
            if dest_meter is None:
                dest_meter = self._dests[dest] = _SourceMeter(
                    now, self.config.burst_tokens
                )
            else:
                self._refill(dest_meter, now, self._dests)
            dest_meter.offered += 1
            dest_meter.last_offer = now
        if meter.tokens >= 1.0 and (
            dest_meter is None or dest_meter.tokens >= 1.0
        ):
            # Both keys pass: decrement atomically, only on admission.
            meter.tokens -= 1.0
            meter.admitted += 1
            if dest_meter is not None:
                dest_meter.tokens -= 1.0
                dest_meter.admitted += 1
            self.admitted += 1
            if self._stats is not None:
                self._c_admitted.add()
            send()
            return AdmissionOutcome.ADMITTED
        # Out of allowance: park while moderate, reject while saturated.
        if self.state is AdmissionState.REJECT or self.config.park_capacity == 0:
            return self._reject()
        if self._parked_live >= self.config.park_capacity:
            if not self._replace_by_priority(priority, now):
                return self._reject()
        entry = _ParkedEntry(source, priority, send, now, on_final)
        level = self._park.get(priority)
        if level is None:
            level = self._park[priority] = deque()
        level.append(entry)
        self._parked_live += 1
        if self._stats is not None:
            self._c_parked.add()
        return AdmissionOutcome.PARKED

    @staticmethod
    def _finalize(entry: _ParkedEntry, outcome: str) -> None:
        """Fire a parked entry's terminal-resolution callback (once)."""
        callback, entry.on_final = entry.on_final, None
        if callback is not None:
            callback(outcome)

    def _reject(self) -> AdmissionOutcome:
        self.rejected += 1
        if self._stats is not None:
            self._c_rejected.add()
        return AdmissionOutcome.REJECTED

    def _replace_by_priority(self, priority: int, now: float) -> bool:
        """Evict the oldest lowest-priority parked entry iff the incoming
        offer's priority is strictly higher.  Returns True when room was
        made.  Never discards a higher- or equal-priority entry."""
        worst = self._lowest_parked_priority()
        if worst is None or worst >= priority:
            return False
        level = self._park[worst]
        entry = level.popleft()
        if not level:
            del self._park[worst]
        self._parked_live -= 1
        self.evicted += 1
        if self._stats is not None:
            self._c_evicted.add()
        self._finalize(entry, "evicted")
        return True

    def _lowest_parked_priority(self) -> Optional[int]:
        return min(self._park) if self._park else None

    # ------------------------------------------------------------------
    # Allowance
    # ------------------------------------------------------------------
    def allowance_rate(self, family: Optional[Dict[Hashable, _SourceMeter]] = None) -> float:
        """The current per-key refill rate, messages/second.  The fair
        share divides capacity by the family's active keys (sources by
        default; destinations for the two-key meter)."""
        if family is None:
            family = self._sources
        active = max(1, len(family))
        fair = self.config.capacity_rate / active
        floor = min(max(fair, self.config.floor_min), self.config.floor_max)
        return floor * self._surge

    def _refill(
        self,
        meter: _SourceMeter,
        now: float,
        family: Optional[Dict[Hashable, _SourceMeter]] = None,
    ) -> None:
        elapsed = now - meter.refilled_at
        if elapsed > 0:
            meter.tokens = min(
                self.config.burst_tokens,
                meter.tokens + elapsed * self.allowance_rate(family),
            )
        meter.refilled_at = now

    def surge_multiplier(self, load: float) -> float:
        """Surge factor at ``load``: ``surge_max`` below ``park_low``,
        decaying linearly to 1.0 at ``park_high`` and above."""
        config = self.config
        if load <= config.park_low:
            return config.surge_max
        if load >= config.park_high:
            return 1.0
        span = config.park_high - config.park_low
        return config.surge_max - (config.surge_max - 1.0) * (
            (load - config.park_low) / span
        )

    # ------------------------------------------------------------------
    # Tick: load sampling, state machine, park drain
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Sample the load signal, run the hysteresis state machine,
        expire stale parked entries, and drain the park buffer when the
        load has receded below the park-low watermark."""
        now = self._clock.now
        load = self._load_fn()
        self.load = min(1.0, max(0.0, load))
        self._surge = self.surge_multiplier(self.load)
        if self._stats is not None:
            self._load_series.record(now, self.load)
        self._transition(self.load)
        self._expire_parked(now)
        if self.load <= self.config.park_low:
            self._release(self.config.release_batch)
        self._prune_idle(now)

    def _transition(self, load: float) -> None:
        config = self.config
        state = self.state
        if state is AdmissionState.OPEN:
            if load >= config.reject_high:
                self._set_state(AdmissionState.REJECT)
            elif load >= config.park_high:
                self._set_state(AdmissionState.PARK)
        elif state is AdmissionState.PARK:
            if load >= config.reject_high:
                self._set_state(AdmissionState.REJECT)
            elif load <= config.park_low:
                self._set_state(AdmissionState.OPEN)
        elif load <= config.reject_low:
            # REJECT exits into PARK (never straight to OPEN): the load
            # must fall through the whole park band before offers flow
            # unconditionally again.
            self._set_state(AdmissionState.PARK)

    def _set_state(self, state: AdmissionState) -> None:
        if state is not self.state:
            self.state = state
            self.state_changes += 1

    def _expire_parked(self, now: float) -> None:
        deadline = now - self.config.park_timeout
        for priority in sorted(self._park):
            level = self._park.get(priority)
            if level is None:
                continue
            while level and level[0].parked_at <= deadline:
                entry = level.popleft()
                self._parked_live -= 1
                self.expired += 1
                if self._stats is not None:
                    self._c_expired.add()
                self._finalize(entry, "expired")
            if not level:
                del self._park[priority]

    def _release(self, budget: int) -> None:
        """Re-inject parked offers, highest priority first, oldest within
        a priority level."""
        while budget > 0 and self._park:
            best = max(self._park)
            level = self._park[best]
            entry = level.popleft()
            if not level:
                del self._park[best]
            self._parked_live -= 1
            self.released += 1
            budget -= 1
            if self._stats is not None:
                self._c_released.add()
            try:
                entry.send()
            except ProtocolError:
                # Transiently unroutable at release time: the entry left
                # the park either way (the network's loss, not ours).
                pass
            self._finalize(entry, "released")

    def _prune_idle(self, now: float) -> None:
        deadline = now - self.config.source_idle_timeout
        stale = [
            source
            for source, meter in self._sources.items()
            if meter.last_offer <= deadline
        ]
        for source in stale:
            del self._sources[source]
        if self._dests:
            stale_dests = [
                dest
                for dest, meter in self._dests.items()
                if meter.last_offer <= deadline
            ]
            for dest in stale_dests:
                del self._dests[dest]

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Crash path: drop all parked offers and per-source meters.
        Dropped entries are accounted as ``cleared`` so the conservation
        law survives a crash."""
        self.cleared += self._parked_live
        for level in self._park.values():
            for entry in level:
                self._finalize(entry, "cleared")
        self._park.clear()
        self._parked_live = 0
        self._sources.clear()
        self._dests.clear()
        self.state = AdmissionState.OPEN
        self.load = 0.0
        self._surge = self.config.surge_max

    @property
    def parked_live(self) -> int:
        """Live entries currently waiting in the park buffer."""
        return self._parked_live

    @property
    def active_sources(self) -> int:
        """Sources currently tracked (not yet idle-pruned)."""
        return len(self._sources)

    def parked_items(self) -> Iterator[Tuple[int, Hashable, float]]:
        """(priority, source, parked_at) of every live parked entry —
        test/introspection hook."""
        for priority, level in self._park.items():
            for entry in level:
                yield (priority, entry.source, entry.parked_at)

    def source_tokens(self, source: Hashable) -> Optional[float]:
        """Current bucket depth for ``source`` (None when untracked)."""
        meter = self._sources.get(source)
        return meter.tokens if meter is not None else None

    def dest_tokens(self, dest: Hashable) -> Optional[float]:
        """Current two-key bucket depth for ``dest`` (None when
        untracked or ``per_destination`` is off)."""
        meter = self._dests.get(dest)
        return meter.tokens if meter is not None else None

    @property
    def active_dests(self) -> int:
        """Destinations currently tracked by the two-key meter."""
        return len(self._dests)

    def balance(self) -> Tuple[int, int]:
        """(offered, accounted) — equal iff the conservation law holds."""
        accounted = (
            self.admitted
            + self.released
            + self.rejected
            + self.evicted
            + self.expired
            + self.cleared
            + self._parked_live
        )
        return self.offered, accounted

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly counter summary (reports and CLI)."""
        return {
            "state": self.state.value,
            "load": self.load,
            "offered": self.offered,
            "admitted": self.admitted,
            "released": self.released,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "expired": self.expired,
            "cleared": self.cleared,
            "parked": self._parked_live,
            "active_sources": len(self._sources),
            "active_dests": len(self._dests),
            "state_changes": self.state_changes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController({self.name!r}, state={self.state.value}, "
            f"load={self.load:.2f}, parked={self._parked_live})"
        )


__all__: List[str] = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionOutcome",
    "AdmissionState",
]
