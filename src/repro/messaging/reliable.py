"""Reliable Messaging with Source-Destination Fairness (Section V-C2).

End-to-end reliable, in-order delivery per (source, destination) flow:

* every node stores a flow's messages **in order** in a statically sized
  per-flow buffer (``b`` messages) and "maintains responsibility for
  messages until they are acknowledged by the destination";
* when a flow's buffer fills the node stops accepting new messages for
  it, creating **back-pressure** all the way to the source;
* destinations periodically generate signed, flooded **E2E ACKs** (one
  cumulative sequence number per source) that let intermediate nodes
  discard acknowledged messages; nodes keep only the newest ACK per
  destination (overtaken-by-event), forward only ACKs that indicate
  progress, and no more often than the E2E timeout;
* **neighbor ACKs** ("I have stored flow F up to h") stop neighbors from
  sending messages a node already has and re-trigger sending when a
  buffer frees or a recovered node needs retransmission;
* per-link bandwidth is shared round-robin across **active flows**, with
  the next in-order message sent for the selected flow.

The engine is deliberately event-driven: there are no per-message
retransmission timers above the PoR link.  Retransmission across a hop
happens exactly when a neighbor ACK proves the downstream node is missing
data it is able to store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dissemination import path_targets
from repro.messaging.message import E2eAck, Message, NeighborAck
from repro.topology.graph import NodeId

Flow = Tuple[NodeId, NodeId]


@dataclass
class FlowState:
    """One flow's state at one node.

    Invariant: ``stored`` holds exactly the messages with sequence numbers
    in (acked, stored_h], and ``stored_h - acked <= buffer_size``.
    """

    stored: Dict[int, Message] = field(default_factory=dict)
    stored_at: Dict[int, float] = field(default_factory=dict)
    stored_h: int = 0
    acked: int = 0
    flooding: bool = True
    paths: Optional[Tuple[Tuple[NodeId, ...], ...]] = None

    def buffer_used(self) -> int:
        """Messages currently held beyond the acked prefix."""
        return self.stored_h - self.acked

    def apply_e2e(self, seq: int) -> bool:
        """Apply a cumulative E2E ack; returns True if it freed anything."""
        if seq <= self.acked:
            return False
        for s in range(self.acked + 1, min(seq, self.stored_h) + 1):
            self.stored.pop(s, None)
            self.stored_at.pop(s, None)
        self.acked = seq
        if self.stored_h < self.acked:
            # Messages up to ``seq`` are globally delivered; skip forward.
            self.stored_h = self.acked
            self.stored.clear()
        return True


@dataclass
class _Cursor:
    """Per-(link, flow) sending state."""

    sent_h: int = 0        # highest seq transmitted on this link
    nbr_h: int = 0         # highest seq the neighbor reported storing
    nbr_limit: int = 0     # highest seq the neighbor can store (acked + b)
    nbr_progress_at: float = 0.0  # when nbr_h last advanced
    #: True when this link is on the flow's shortest path toward its
    #: destination: primary links stream eagerly, the rest only *repair*
    #: (they serve a seq once it has aged ``reliable_forward_hold``
    #: seconds locally and the neighbor still lacks it).
    primary: bool = False
    wake_at: float = 0.0   # pending repair-wake time (0 = none)


class ReliableLinkState:
    """Per-outgoing-link reliable scheduling: flow cursors + round-robin."""

    def __init__(self, default_limit: int = 0) -> None:
        from repro.messaging.scheduler import RoundRobinQueue

        self.default_limit = default_limit
        self.cursors: Dict[Flow, _Cursor] = {}
        self.rr = RoundRobinQueue()

    def cursor(self, flow: Flow) -> _Cursor:
        """The (lazily created) cursor for ``flow`` on this link."""
        cursor = self.cursors.get(flow)
        if cursor is None:
            # A fresh neighbor's buffer is empty, so it can store at least
            # ``default_limit`` (= the static per-flow buffer size).
            cursor = _Cursor(nbr_limit=self.default_limit)
            self.cursors[flow] = cursor
        return cursor

    def next_needed(self, flow: Flow, state: FlowState) -> int:
        """Next sequence this link should transmit for ``flow``."""
        cursor = self.cursor(flow)
        return max(cursor.sent_h, cursor.nbr_h, state.acked) + 1


class ReliableEngine:
    """Node-level Reliable Messaging logic."""

    def __init__(self, node: "OverlayNode"):  # noqa: F821 - runtime duck type
        self._node = node
        self.flows: Dict[Flow, FlowState] = {}
        self.latest_acks: Dict[NodeId, E2eAck] = {}
        self._ack_forwarded_at: Dict[NodeId, float] = {}
        self._ack_flush_pending: Set[NodeId] = set()
        self._ack_stamp = 0
        self._delivered_since_ack = False
        self._dirty_flows: Set[Flow] = set()
        self._flush_scheduled = False
        self._id_by_str = {}
        # Observability.
        self.messages_delivered = 0
        self.duplicates_dropped = 0
        self.gap_drops = 0
        self.backpressure_drops = 0
        self.acks_generated = 0
        self.acks_rejected = 0

    # ------------------------------------------------------------------
    # Flow state helpers
    # ------------------------------------------------------------------
    def flow_state(self, flow: Flow) -> FlowState:
        """The (lazily created) local state for ``flow``, seeded from E2E ACKs."""
        state = self.flows.get(flow)
        if state is None:
            state = FlowState()
            latest = self.latest_acks.get(flow[1])
            if latest is not None:
                acked = latest.seq_for(flow[0])
                if acked > 0:
                    state.acked = acked
                    state.stored_h = acked
            self.flows[flow] = state
        return state

    def node_id_from_str(self, key: str) -> Optional[NodeId]:
        """Map a stringified member id back to the real node id."""
        if not self._id_by_str:
            for member in self._node.mtmw.members:
                self._id_by_str[str(member)] = member
        return self._id_by_str.get(key)

    def refresh_membership(self) -> None:
        """Invalidate the member-id cache after an MTMW change."""
        self._id_by_str = {}

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def try_send(self, message: Message) -> bool:
        """Source API: accept a new outgoing message unless back-pressured."""
        node = self._node
        flow = message.flow
        state = self.flow_state(flow)
        if state.buffer_used() >= node.config.reliable_buffer:
            self.backpressure_drops += 1
            return False
        assert message.seq == state.stored_h + 1, "source must send consecutive seqs"
        self._store(state, message)
        self._activate(flow, state, exclude=None)
        return True

    def next_seq(self, dest: NodeId) -> int:
        """The sequence number the next accepted message to ``dest`` will get."""
        return self.flow_state((self._node.node_id, dest)).stored_h + 1

    def can_send(self, dest: NodeId) -> bool:
        """Whether the per-flow buffer has room (no back-pressure)."""
        state = self.flow_state((self._node.node_id, dest))
        return state.buffer_used() < self._node.config.reliable_buffer

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def note_duplicate(self, message: Message, from_neighbor: Optional[NodeId]) -> None:
        """Cheap-path handling of a copy at or below stored_h: count it
        and remember that the sending neighbor evidently has it."""
        self.duplicates_dropped += 1
        if from_neighbor is not None:
            link = self._node.links.get(from_neighbor)
            if link is not None:
                cursor = link.reliable.cursor(message.flow)
                if message.seq > cursor.nbr_h:
                    cursor.nbr_h = message.seq
                    cursor.nbr_progress_at = self._node.sim.now

    def handle(self, message: Message, from_neighbor: Optional[NodeId]) -> None:
        """Process one verified reliable data message (receive path)."""
        node = self._node
        flow = message.flow
        state = self.flow_state(flow)
        if from_neighbor is not None:
            # The neighbor evidently has this message.
            link = node.links.get(from_neighbor)
            if link is not None:
                cursor = link.reliable.cursor(flow)
                if message.seq > cursor.nbr_h:
                    cursor.nbr_h = message.seq
                    cursor.nbr_progress_at = node.sim.now
        if message.seq <= state.stored_h:
            self.duplicates_dropped += 1
            return
        if message.seq > state.stored_h + 1:
            self.gap_drops += 1
            return
        if message.dest == node.node_id:
            # Destination: deliver immediately, no buffering needed.
            state.stored_h = message.seq
            state.acked = message.seq
            self.messages_delivered += 1
            self._delivered_since_ack = True
            node.deliver_local(message)
            self._mark_dirty(flow)
            return
        if state.buffer_used() >= node.config.reliable_buffer:
            self.backpressure_drops += 1
            return
        self._store(state, message)
        self._mark_dirty(flow)
        self._activate(flow, state, exclude=None)

    def _store(self, state: FlowState, message: Message) -> None:
        state.stored[message.seq] = message
        state.stored_at[message.seq] = self._node.sim.now
        state.stored_h = message.seq
        state.flooding = message.flooding
        state.paths = message.paths

    def _activate(self, flow: Flow, state: FlowState, exclude: Optional[NodeId]) -> None:
        """Mark the flow active on every outgoing link it should use.

        Under flooding, the link toward the destination's shortest-path
        next hop is the flow's *primary* link here and streams eagerly;
        every other link is a *repair* link that only serves messages the
        neighbor still lacks ``reliable_forward_hold`` seconds after we
        stored them.  This is the "engineered flooding" delay technique
        from Table III applied to Reliable Messaging (whose semantics
        allow it — Priority Messaging cannot delay): repair links remain
        a full-coverage safety net if the primary path is slow, failed,
        or compromised.  K-paths flows stream eagerly on their paths.
        """
        node = self._node
        primary = self._primary_next_hop(flow) if state.flooding else None
        for neighbor in self._forward_targets(flow, state):
            if neighbor == exclude:
                continue
            link = node.links[neighbor]
            link.reliable.cursor(flow).primary = (
                not state.flooding or neighbor == primary
            )
            link.reliable.rr.activate(flow)
            link.pump()

    def reactivate_link(self, link: "LinkSender") -> None:  # noqa: F821
        """Re-arm every known flow on a link whose cursors were rewound
        (the neighbor recovered from a crash)."""
        node = self._node
        for flow, state in self.flows.items():
            primary = self._primary_next_hop(flow) if state.flooding else None
            link.reliable.cursor(flow).primary = (
                not state.flooding or link.neighbor == primary
            )
            link.reliable.rr.activate(flow)

    def _primary_next_hop(self, flow: Flow) -> Optional[NodeId]:
        path = self._node.routing.shortest_path(self._node.node_id, flow[1])
        if path is not None and len(path) >= 2:
            return path[1]
        return None

    def _forward_targets(self, flow: Flow, state: FlowState) -> List[NodeId]:
        node = self._node
        if state.flooding or not state.paths:
            return list(node.links)
        return [
            n
            for n in path_targets(
                node.node_id, state.paths, metrics=node.stats.metrics
            )
            if n in node.links
        ]

    # ------------------------------------------------------------------
    # Link scheduler interface
    # ------------------------------------------------------------------
    def next_for_link(self, link: "LinkSender") -> Optional[Message]:  # noqa: F821
        """The next in-order message for the round-robin-selected flow."""

        def has_work(flow: Flow) -> bool:
            return self._link_has_work(link, flow)

        flow = link.reliable.rr.select(has_work)
        if flow is None:
            return None
        state = self.flows[flow]
        needed = link.reliable.next_needed(flow, state)
        link.reliable.cursor(flow).sent_h = needed
        return state.stored[needed]

    def _link_has_work(self, link: "LinkSender", flow: Flow) -> bool:  # noqa: F821
        state = self.flows.get(flow)
        if state is None:
            return False
        needed = link.reliable.next_needed(flow, state)
        cursor = link.reliable.cursor(flow)
        # ``reliable_link_window`` bounds optimism: at most this many
        # messages beyond the neighbor's *confirmed* stored_h may be in
        # flight on one link.  Under flooding a neighbor usually receives
        # the stream from whichever link is fastest; without this bound a
        # slower parallel link would redundantly transmit the entire
        # buffer before neighbor ACKs caught up.
        window = self._node.config.reliable_link_window
        # The window is anchored at the neighbor's confirmed progress; a
        # global E2E ack counts as progress too (the neighbor will skip
        # forward to it), which matters when resuming after recovery.
        anchor = max(cursor.nbr_h, state.acked)
        # The neighbor's storage limit is its acked + buffer.  Our best
        # lower bound on its acked is our own (E2E ACKs are flooded, and
        # we forward ours to it), so a freshly created cursor — e.g.
        # toward a just-recovered neighbor — must not anchor the limit at
        # zero or the flow wedges below its current sequence range.
        limit = max(cursor.nbr_limit, state.acked + self._node.config.reliable_buffer)
        available = (
            needed <= state.stored_h
            and needed <= limit
            and needed <= anchor + window
            and needed in state.stored
        )
        if not available:
            return False
        if cursor.primary or not state.flooding:
            return True
        # Secondary (repair) link: serve this seq only once it has aged
        # ``reliable_forward_hold`` seconds here and the neighbor still
        # lacks it — by then, in the common case, the neighbor obtained
        # it through its primary path and the send is suppressed.
        hold = self._node.config.reliable_forward_hold
        if hold <= 0.0:
            return True
        ready_at = state.stored_at.get(needed, 0.0) + hold
        now = self._node.sim.now
        if ready_at <= now:
            return True
        # Nothing to send yet: arrange a wake-up so the repair actually
        # happens even if the link would otherwise go idle.
        if cursor.wake_at <= now:
            cursor.wake_at = ready_at
            self._node.sim.schedule(
                ready_at - now, self._repair_wake, link, flow
            )
        return False

    def _repair_wake(self, link: "LinkSender", flow: Flow) -> None:  # noqa: F821
        cursor = link.reliable.cursors.get(flow)
        if cursor is not None:
            cursor.wake_at = 0.0
        if not self._node.crashed:
            link.reliable.rr.activate(flow)
            link.pump()

    def has_work_for_link(self, link: "LinkSender") -> bool:  # noqa: F821
        """Whether any flow has a transmittable message for ``link``."""
        return any(
            self._link_has_work(link, flow) for flow in link.reliable.rr.keys()
        )

    # ------------------------------------------------------------------
    # E2E ACKs
    # ------------------------------------------------------------------
    def generate_e2e_ack(self) -> None:
        """Periodic destination-side ACK generation (called by a timer)."""
        node = self._node
        if not self._delivered_since_ack:
            return
        self._delivered_since_ack = False
        by_source = {
            src: state.acked
            for (src, dst), state in self.flows.items()
            if dst == node.node_id and state.acked > 0
        }
        if not by_source:
            return
        self._ack_stamp += 1
        ack = E2eAck.create(node.pki, node.node_id, self._ack_stamp, by_source)
        self.acks_generated += 1
        self._absorb_ack(ack)
        for link in node.links.values():
            link.enqueue_control(ack, ack.wire_size)
            link.pump()
        self._ack_forwarded_at[node.node_id] = node.sim.now

    def handle_e2e_ack(self, ack: E2eAck, from_neighbor: Optional[NodeId]) -> None:
        """Absorb and (rate-limited) forward a verified E2E ACK."""
        node = self._node
        latest = self.latest_acks.get(ack.dest)
        if not ack.indicates_progress_over(latest):
            self.acks_rejected += 1
            return
        self._absorb_ack(ack)
        # Forward, rate-limited: no more often than the E2E timeout per
        # dest.  A suppressed forward is deferred, not dropped: when the
        # limit clears, the *newest* stored ACK for that dest goes out.
        interval = node.config.e2e_ack_timeout * 0.9
        last = self._ack_forwarded_at.get(ack.dest)
        if last is not None and node.sim.now - last < interval:
            if ack.dest not in self._ack_flush_pending:
                self._ack_flush_pending.add(ack.dest)
                node.sim.schedule(
                    last + interval - node.sim.now, self._flush_ack, ack.dest
                )
            return
        self._forward_ack(ack, from_neighbor)

    def _flush_ack(self, dest: NodeId) -> None:
        self._ack_flush_pending.discard(dest)
        if self._node.crashed:
            return
        latest = self.latest_acks.get(dest)
        if latest is not None:
            self._forward_ack(latest, exclude=None)

    def _forward_ack(self, ack: E2eAck, exclude: Optional[NodeId]) -> None:
        node = self._node
        self._ack_forwarded_at[ack.dest] = node.sim.now
        for neighbor, link in node.links.items():
            if neighbor == exclude:
                continue
            link.enqueue_control(ack, ack.wire_size)
            link.pump()

    def _absorb_ack(self, ack: E2eAck) -> None:
        node = self._node
        self.latest_acks[ack.dest] = ack
        for src_str, seq in ack.cumulative:
            source = self.node_id_from_str(src_str)
            if source is None:
                continue
            flow = (source, ack.dest)
            state = self.flows.get(flow)
            if state is None:
                continue
            if state.apply_e2e(seq):
                # Buffer freed (or skipped forward): let neighbors know so
                # upstream can retransmit what we still need, and re-pump
                # downstream links whose floor just moved.
                self._mark_dirty(flow)
                self._activate(flow, state, exclude=None)

    # ------------------------------------------------------------------
    # Neighbor ACKs
    # ------------------------------------------------------------------
    def _mark_dirty(self, flow: Flow) -> None:
        self._dirty_flows.add(flow)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._node.sim.schedule(
                self._node.config.neighbor_ack_delay, self._flush_neighbor_acks
            )

    def _flush_neighbor_acks(self) -> None:
        self._flush_scheduled = False
        node = self._node
        if node.crashed or not self._dirty_flows:
            self._dirty_flows.clear()
            return
        buffer = node.config.reliable_buffer
        entries = tuple(
            (
                (str(flow[0]), str(flow[1])),
                self.flows[flow].stored_h,
                self.flows[flow].acked + buffer,
            )
            for flow in sorted(self._dirty_flows, key=str)
            if flow in self.flows
        )
        self._dirty_flows.clear()
        if not entries:
            return
        ack = NeighborAck(node.node_id, entries)
        for link in node.links.values():
            link.enqueue_control(ack, ack.wire_size)
            link.pump()

    def handle_neighbor_ack(self, ack: NeighborAck, from_neighbor: NodeId) -> None:
        """Update cursors/limits from a neighbor's stored/limit report."""
        node = self._node
        link = node.links.get(from_neighbor)
        if link is None:
            return
        now = node.sim.now
        for (src_str, dst_str), h, limit in ack.entries:
            source = self.node_id_from_str(src_str)
            dest = self.node_id_from_str(dst_str)
            if source is None or dest is None:
                continue
            flow = (source, dest)
            cursor = link.reliable.cursor(flow)
            if h > cursor.nbr_h:
                cursor.nbr_h = h
                cursor.nbr_progress_at = now
            if limit > cursor.nbr_limit:
                cursor.nbr_limit = limit
            state = self.flows.get(flow)
            if state is None:
                continue
            if h < state.acked:
                # The neighbor is behind global progress (e.g. it just
                # recovered from a crash): give it the newest E2E ACK so
                # it can skip forward, rate-limited like any forward.
                latest = self.latest_acks.get(dest)
                if latest is not None:
                    link.enqueue_control(latest, latest.wire_size)
            link.reliable.rr.activate(flow)
            if not node.config.e2e_acks_enabled:
                self._neighbor_coverage_release(flow, state)
        link.pump()

    def check_stalls(self) -> None:
        """Periodic (hello-tick) retransmission safety net.

        Honest flow control means a neighbor normally acknowledges (via
        neighbor ACKs) everything we send; if a cursor is ahead of the
        neighbor's report and no progress has happened for
        ``reliable_stall_timeout`` seconds — a crash we did not observe,
        a dropped-in-reset PoR packet, or a Byzantine neighbor — rewind
        and retransmit.
        """
        node = self._node
        now = node.sim.now
        timeout = node.config.reliable_stall_timeout
        for link in node.links.values():
            pumped = False
            for flow, cursor in link.reliable.cursors.items():
                if cursor.sent_h <= cursor.nbr_h:
                    continue
                if now - cursor.nbr_progress_at < timeout:
                    continue
                cursor.sent_h = cursor.nbr_h
                cursor.nbr_progress_at = now
                link.reliable.rr.activate(flow)
                pumped = True
            if pumped:
                link.pump()

    def _neighbor_coverage_release(self, flow: Flow, state: FlowState) -> None:
        """Without E2E ACKs (the Table IV ablation, not a correct
        protocol): release a message once every neighbor stored it."""
        node = self._node
        if not node.links:
            return
        coverage = min(
            link.reliable.cursor(flow).nbr_h for link in node.links.values()
        )
        if coverage > state.acked:
            if state.apply_e2e(min(coverage, state.stored_h)):
                self._mark_dirty(flow)
                self._activate(flow, state, exclude=None)

    # ------------------------------------------------------------------
    # Crash support
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all soft state, as a crash would."""
        self.flows.clear()
        self.latest_acks.clear()
        self._ack_forwarded_at.clear()
        self._ack_flush_pending.clear()
        self._dirty_flows.clear()
        self._delivered_since_ack = False
        self._id_by_str = {}

    def announce_all_flows(self) -> None:
        """After recovery: advertise (empty) stored state so neighbors
        rewind their cursors and retransmit what we need."""
        for flow in list(self.flows):
            self._mark_dirty(flow)
