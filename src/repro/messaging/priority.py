"""Priority Messaging with Source Fairness (Section V-C1).

Per outgoing link, each node keeps a bounded storage queue organized per
source and per priority level:

* **Eviction** — "If the message storage queue for a given outgoing link
  is full, the oldest lowest-priority message from the source currently
  using the most storage on that link is dropped.  This may either make
  room for the new message or result in the new message being dropped."
* **Sending** — round-robin across active sources; once a source is
  selected, its *oldest highest-priority* message is sent.
* **Expiration** — messages past their expiration time are discarded
  wherever they are encountered.

Because resources are allocated per *source* (never comparing priorities
across sources), a compromised source flooding highest-priority traffic
can only consume its own fair share (Theorem "Priority Flooding
Guaranteed Throughput"; reproduced by Figures 5-7 benchmarks).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.dissemination import flood_targets, path_successors
from repro.errors import ConfigurationError
from repro.messaging.message import Message
from repro.messaging.scheduler import RoundRobinQueue
from repro.topology.graph import NodeId

MIN_PRIORITY = 1
MAX_PRIORITY = 10


class _Entry:
    """A queued message; cancellation is lazy (entries stay in their deque
    until popped)."""

    __slots__ = ("message", "cancelled")

    def __init__(self, message: Message):
        self.message = message
        self.cancelled = False


class _SourceBucket:
    """All messages a link queue holds for one source, by priority."""

    __slots__ = ("levels", "live")

    def __init__(self) -> None:
        self.levels: Dict[int, Deque[_Entry]] = {}
        self.live = 0

    def push(self, entry: _Entry) -> None:
        priority = entry.message.priority
        level = self.levels.get(priority)
        if level is None:
            level = self.levels[priority] = deque()
        level.append(entry)
        self.live += 1

    def pop_best(self, now: float, expired_sink: Callable[[Message], None]) -> Optional[Message]:
        """Oldest highest-priority live, unexpired message (and remove it)."""
        for priority in sorted(self.levels, reverse=True):
            level = self.levels[priority]
            while level:
                entry = level.popleft()
                if entry.cancelled:
                    continue
                if entry.message.is_expired(now):
                    self.live -= 1
                    expired_sink(entry.message)
                    continue
                self.live -= 1
                return entry.message
        return None

    def evict_worst(self, now: float, expired_sink: Callable[[Message], None]) -> Optional[Message]:
        """Oldest lowest-priority live message (and remove it)."""
        for priority in sorted(self.levels):
            level = self.levels[priority]
            while level:
                entry = level[0]
                if entry.cancelled:
                    level.popleft()
                    continue
                if entry.message.is_expired(now):
                    level.popleft()
                    self.live -= 1
                    expired_sink(entry.message)
                    continue
                level.popleft()
                self.live -= 1
                return entry.message
        return None


class PriorityLinkQueue:
    """The per-outgoing-link storage + fair scheduler for Priority Messaging."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1 (got {capacity})")
        self.capacity = capacity
        self._buckets: Dict[Hashable, _SourceBucket] = {}
        self._rr = RoundRobinQueue()
        self._index: Dict[Tuple, _Entry] = {}
        self._live_total = 0
        # Observability.
        self.dropped_for_space = 0
        self.dropped_expired = 0
        self.cancelled_by_feedback = 0

    def __len__(self) -> int:
        return self._live_total

    def source_usage(self, source: Hashable) -> int:
        """Live queued messages currently charged to ``source``."""
        bucket = self._buckets.get(source)
        return bucket.live if bucket else 0

    # ------------------------------------------------------------------
    def offer(self, message: Message, now: float) -> bool:
        """Try to store ``message``; apply the eviction policy when full.

        Returns True if the message is in the queue afterwards.
        """
        expiration = message.expiration  # inlined Message.is_expired
        if expiration is not None and now > expiration:
            self.dropped_expired += 1
            return False
        uid = message.uid
        existing = self._index.get(uid)
        if existing is not None and not existing.cancelled:
            return False  # already queued for this link
        entry = _Entry(message)
        source = message.source
        bucket = self._buckets.get(source)
        if bucket is None:
            bucket = _SourceBucket()
            self._buckets[source] = bucket
        bucket.push(entry)
        self._index[uid] = entry
        self._live_total += 1
        self._rr.activate(source)
        if self._live_total > self.capacity:
            victim = self._evict(now)
            if victim is not None and victim.uid == uid:
                return False
        return True

    def _evict(self, now: float) -> Optional[Message]:
        """Drop the oldest lowest-priority message of the heaviest source."""
        heaviest = None
        heaviest_live = -1
        for source, bucket in self._buckets.items():
            if bucket.live > heaviest_live or (
                bucket.live == heaviest_live and str(source) < str(heaviest)
            ):
                heaviest = source
                heaviest_live = bucket.live
        if heaviest is None:
            return None
        victim = self._buckets[heaviest].evict_worst(now, self._note_expired)
        if victim is not None:
            self._live_total -= 1
            self.dropped_for_space += 1
            self._index.pop(victim.uid, None)
        return victim

    def next_message(self, now: float) -> Optional[Message]:
        """Round-robin source selection; oldest highest-priority message."""
        while True:
            source = self._rr.select(
                lambda s: self._buckets.get(s) is not None and self._buckets[s].live > 0
            )
            if source is None:
                return None
            message = self._buckets[source].pop_best(now, self._note_expired)
            if message is not None:
                self._live_total -= 1
                self._index.pop(message.uid, None)
                return message

    def cancel(self, uid: Tuple) -> bool:
        """Neighbor feedback: the peer already has this message; un-queue it."""
        entry = self._index.pop(uid, None)
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        bucket = self._buckets.get(entry.message.source)
        if bucket is not None:
            bucket.live -= 1
        self._live_total -= 1
        self.cancelled_by_feedback += 1
        return True

    def _note_expired(self, message: Message) -> None:
        self.dropped_expired += 1
        self._index.pop(message.uid, None)
        self._live_total -= 1
        # live counters are adjusted by the bucket helpers' callers; the
        # bucket already decremented its own counter before calling us.

    def active_sources(self) -> List[Hashable]:
        """Sources with at least one live queued message."""
        return [s for s, b in self._buckets.items() if b.live > 0]


class PriorityEngine:
    """Node-level Priority Messaging logic: dedup, delivery, forwarding."""

    def __init__(self, node: "OverlayNode"):  # noqa: F821 - runtime duck type
        self._node = node
        self.messages_originated = 0
        self.messages_delivered = 0
        self.duplicates_suppressed = 0
        self.path_violations = 0

    # ------------------------------------------------------------------
    def note_duplicate(self, message: Message, from_neighbor: Optional[NodeId]) -> None:
        """Cheap-path handling of a copy already known from metadata:
        count it and apply constrained-flooding neighbor feedback."""
        node = self._node
        self.duplicates_suppressed += 1
        if (
            message.flooding
            and from_neighbor is not None
            and not node.config.naive_flooding
        ):
            link = node.links.get(from_neighbor)
            if link is not None:
                link.priority_queue.cancel(message.uid)

    def handle(self, message: Message, from_neighbor: Optional[NodeId]) -> None:
        """Process one verified priority message (local inject or receive)."""
        node = self._node
        now = node.sim.now
        expiration = message.expiration
        if expiration is None:
            expiration = now + node.config.max_message_lifetime
        elif now > expiration:  # inlined Message.is_expired
            return
        is_new = node.metadata.check_and_record(message.uid, expiration, now)
        if not is_new:
            self.duplicates_suppressed += 1
            if (
                message.flooding
                and from_neighbor is not None
                and not node.config.naive_flooding
            ):
                # Constrained-flooding neighbor feedback: the neighbor we
                # just heard from provably has the message; cancel any
                # pending copy queued toward it.
                link = node.links.get(from_neighbor)
                if link is not None:
                    link.priority_queue.cancel(message.uid)
            return
        if message.dest == node.node_id:
            self.messages_delivered += 1
            node.deliver_local(message)
            # Constrained flooding stops at the destination (its copies
            # would be suppressed everywhere anyway); the naïve baseline
            # keeps forwarding so each message truly traverses every edge
            # in both directions (Table III's 2|E| cost).
            if message.flooding and node.config.naive_flooding:
                self._forward(message, from_neighbor, now)
            return
        self._forward(message, from_neighbor, now)

    def _forward(
        self, message: Message, from_neighbor: Optional[NodeId], now: Optional[float] = None
    ) -> None:
        node = self._node
        if now is None:
            now = node.sim.now
        if message.flooding:
            targets = flood_targets(
                node.links,
                from_neighbor,
                naive=node.config.naive_flooding,
                metrics=node.stats.metrics,
            )
        elif message.paths:
            targets, violations = path_successors(
                node.node_id,
                message.paths,
                from_neighbor,
                metrics=node.stats.metrics,
            )
            self.path_violations += violations
        else:
            return
        links = node.links
        for neighbor in targets:
            link = links.get(neighbor)
            if link is None:
                continue
            queue = link.priority_queue
            had_backlog = queue._live_total != 0
            if queue.offer(message, now) and not had_backlog:
                # A backlogged link is already blocked on the PoR window
                # or pacing, and both come with a wake-up (on_ready / a
                # scheduled retry): pumping again would just re-probe a
                # closed window on every enqueue.
                link.pump()
