"""K node-disjoint path forwarding.

The K paths are selected by the source and covered by the message
signature (source-based routing): a compromised forwarder cannot redirect
a message onto different paths without invalidating it.  A forwarder
relays a message along a path only when the message actually arrived from
that path's predecessor; anything else is a path violation (replay or
misrouting) and is not forwarded.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.caching import LruCache
from repro.topology.graph import NodeId

Paths = Sequence[Tuple[NodeId, ...]]

#: Successor-scan memo.  Every message of a flow carries the *same* path
#: tuple (the route cache hands out shared objects), so the scan result
#: for a (node, paths, arrival) triple repeats for the flow's lifetime.
#: Entries are keyed by (node, id(paths), arrival) and store the paths
#: object itself — see path_successors for why identity keying is both
#: safe and much cheaper than hashing the nested tuple per decision.
#: The memo is a pure function of node position within signed immutable
#: paths, so it never needs invalidation, only bounding.
_SUCCESSOR_CACHE_SIZE = 4096
_successor_cache: LruCache[Tuple[Any, List[NodeId], int]] = LruCache(_SUCCESSOR_CACHE_SIZE)

_MISS = object()


def _kpaths_counters(metrics: Any):
    """The module's three counters, resolved once per registry.

    Counters are stable, never-removed objects inside a
    :class:`~repro.telemetry.metrics.MetricsRegistry`, so the resolved
    tuple is cached on the registry itself — this runs on every
    forwarding decision."""
    counters = getattr(metrics, "_kpaths_counter_cache", None)
    if counters is None:
        counters = (
            metrics.counter("dissemination.kpaths.calls"),
            metrics.counter("dissemination.kpaths.successors"),
            metrics.counter("dissemination.kpaths.violations"),
        )
        metrics._kpaths_counter_cache = counters
    return counters


def path_successors(
    node_id: NodeId,
    paths: Paths,
    from_neighbor: Optional[NodeId],
    metrics: Optional[Any] = None,
) -> Tuple[List[NodeId], int]:
    """Next hops for a message at ``node_id``.

    Returns ``(successors, violations)`` where ``violations`` counts path
    positions this node occupies that the message did not legitimately
    arrive through (from ``from_neighbor``; ``None`` means the node is the
    source).

    When ``metrics`` is supplied, ``dissemination.kpaths.calls``,
    ``.successors``, and ``.violations`` track forwarding decisions and
    detected replay/misrouting across the whole deployment.  Telemetry is
    counted per *call*, cache hit or not, so memoization never changes
    the recorded dissemination counters.
    """
    # Memo key: the *identity* of the shared paths tuple, not its value.
    # Hashing the nested tuple on every forwarding decision costs more
    # than the scan it memoizes; the route cache hands out shared tuple
    # objects, so identity hits whenever value would.  The cached entry
    # pins the paths object, which keeps its id stable and makes an id
    # collision with a different live tuple impossible; the identity
    # check on hit guards against a stale entry whose pin was evicted.
    # Mutable (non-tuple) paths skip the memo: their contents can change
    # under a pinned entry.
    cacheable = type(paths) is tuple
    cached = _MISS
    if cacheable:
        key = (node_id, id(paths), from_neighbor)
        cached = _successor_cache.get(key, _MISS)
    if cached is not _MISS and cached[0] is paths:
        successors, violations = cached[1], cached[2]
    else:
        successors = []
        violations = 0
        for path in paths:
            for i, hop in enumerate(path):
                if hop != node_id:
                    continue
                legitimate = (i == 0 and from_neighbor is None) or (
                    i > 0 and from_neighbor == path[i - 1]
                )
                if not legitimate:
                    violations += 1
                    continue
                if i + 1 < len(path):
                    successors.append(path[i + 1])
        if cacheable:
            _successor_cache.put(key, (paths, successors, violations))
    if metrics is not None:
        calls, succ, viol = _kpaths_counters(metrics)
        calls.add()
        succ.add(len(successors))
        if violations:
            viol.add(violations)
    return successors, violations


def path_targets(
    node_id: NodeId, paths: Paths, metrics: Optional[Any] = None
) -> List[NodeId]:
    """All next hops this node ever has on ``paths`` (arrival-agnostic).

    Used by Reliable Messaging, whose hop-by-hop cursors already bind a
    flow's messages to specific links; per-message arrival checks would
    reject legitimate retransmissions that cross between neighbors.
    """
    targets: List[NodeId] = []
    for path in paths:
        for i, hop in enumerate(path):
            if hop == node_id and i + 1 < len(path):
                targets.append(path[i + 1])
    if metrics is not None:
        metrics.counter("dissemination.kpaths.targets").add(len(targets))
    return targets
