"""K node-disjoint path forwarding.

The K paths are selected by the source and covered by the message
signature (source-based routing): a compromised forwarder cannot redirect
a message onto different paths without invalidating it.  A forwarder
relays a message along a path only when the message actually arrived from
that path's predecessor; anything else is a path violation (replay or
misrouting) and is not forwarded.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.topology.graph import NodeId

Paths = Sequence[Tuple[NodeId, ...]]


def path_successors(
    node_id: NodeId,
    paths: Paths,
    from_neighbor: Optional[NodeId],
    metrics: Optional[Any] = None,
) -> Tuple[List[NodeId], int]:
    """Next hops for a message at ``node_id``.

    Returns ``(successors, violations)`` where ``violations`` counts path
    positions this node occupies that the message did not legitimately
    arrive through (from ``from_neighbor``; ``None`` means the node is the
    source).

    When ``metrics`` is supplied, ``dissemination.kpaths.calls``,
    ``.successors``, and ``.violations`` track forwarding decisions and
    detected replay/misrouting across the whole deployment.
    """
    successors: List[NodeId] = []
    violations = 0
    for path in paths:
        for i, hop in enumerate(path):
            if hop != node_id:
                continue
            legitimate = (i == 0 and from_neighbor is None) or (
                i > 0 and from_neighbor == path[i - 1]
            )
            if not legitimate:
                violations += 1
                continue
            if i + 1 < len(path):
                successors.append(path[i + 1])
    if metrics is not None:
        metrics.counter("dissemination.kpaths.calls").add()
        metrics.counter("dissemination.kpaths.successors").add(len(successors))
        if violations:
            metrics.counter("dissemination.kpaths.violations").add(violations)
    return successors, violations


def path_targets(
    node_id: NodeId, paths: Paths, metrics: Optional[Any] = None
) -> List[NodeId]:
    """All next hops this node ever has on ``paths`` (arrival-agnostic).

    Used by Reliable Messaging, whose hop-by-hop cursors already bind a
    flow's messages to specific links; per-message arrival checks would
    reject legitimate retransmissions that cross between neighbors.
    """
    targets: List[NodeId] = []
    for path in paths:
        for i, hop in enumerate(path):
            if hop == node_id and i + 1 < len(path):
                targets.append(path[i + 1])
    if metrics is not None:
        metrics.counter("dissemination.kpaths.targets").add(len(targets))
    return targets
