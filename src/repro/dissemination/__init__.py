"""Redundant source-based dissemination methods (Section V-B).

* :mod:`repro.dissemination.kpaths` — K node-disjoint paths: the source
  selects K paths (computed by :mod:`repro.topology.disjoint` over its
  routing view) and stamps them on the signed message; forwarders follow
  the path they legitimately sit on.  Tolerates K−1 compromised nodes
  anywhere in the network.
* :mod:`repro.dissemination.flooding` — constrained flooding: each new
  message goes to every neighbor except where it came from, and neighbor
  feedback (duplicate receipt / neighbor ACKs / E2E ACKs) cancels copies
  that are no longer needed.  Optimal: delivers whenever a correct path
  exists.  The *naïve* variant (every edge, both directions) is kept as
  the Table IV / Figure 4 baseline.
"""

from repro.dissemination.flooding import flood_targets
from repro.dissemination.kpaths import path_successors, path_targets

__all__ = ["flood_targets", "path_successors", "path_targets"]
