"""Constrained (and naïve) flooding target selection.

Constrained flooding forwards each *new* message to every neighbor except
the one it arrived from; duplicate-arrival feedback then cancels queued
copies toward neighbors that provably already have the message (the
Priority engine) or neighbor/E2E ACKs suppress sends (the Reliable
engine).  Naïve flooding — the baseline of Table IV and Figure 4(a) —
forwards to *every* neighbor, so each message traverses every edge in
both directions (cost 2·|E|)."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.topology.graph import NodeId


def flood_targets(
    neighbors: Iterable[NodeId],
    from_neighbor: Optional[NodeId],
    naive: bool = False,
    metrics: Optional[Any] = None,
) -> List[NodeId]:
    """Neighbors a newly received (or injected) message is forwarded to.

    When ``metrics`` (a :class:`repro.telemetry.metrics.MetricsRegistry`)
    is supplied, ``dissemination.flood.calls`` and
    ``dissemination.flood.fanout`` record how often flooding ran and how
    many copies it produced — the numerator/denominator of the
    per-message dissemination cost reported in Table IV.
    """
    if naive:
        targets = list(neighbors)
    else:
        targets = [n for n in neighbors if n != from_neighbor]
    if metrics is not None:
        # Counters are stable registry objects; resolve them once per
        # registry and cache the pair (this runs per flooded message).
        counters = getattr(metrics, "_flood_counter_cache", None)
        if counters is None:
            counters = (
                metrics.counter("dissemination.flood.calls"),
                metrics.counter("dissemination.flood.fanout"),
            )
            metrics._flood_counter_cache = counters
        counters[0].add()
        counters[1].add(len(targets))
    return targets
