"""Turret-style automated attack finding (Section VI-B1).

"Turret enables a system to be run with several attacker-controlled
nodes.  The compromised nodes launch attacks to attempt to subvert the
system.  Such actions include, but are not limited to, dropping,
delaying, replaying, diverting, and reordering messages.  In addition,
compromised nodes can maliciously craft messages [...] fields of a target
message may be set to zero, their minimum or maximum values, or a random
value.  Turret can be configured to run for an extended period of time,
continuously trying different attacks."

:class:`TurretCampaign` reproduces the method: every iteration builds a
fresh overlay, compromises a random subset of nodes with randomly drawn
malicious strategies (including random field fuzzing), drives a mixed
Priority/Reliable workload, and checks the protocol invariants that the
paper's guarantees imply.  Any violation (or unhandled exception — the
class of bug Turret found in Spines' message validation) is reported
with the seed that reproduces it.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, List, Optional, Sequence, Tuple

from repro.byzantine.behaviors import (
    Behavior,
    CorruptingBehavior,
    DelayingBehavior,
    DroppingBehavior,
    DuplicatingBehavior,
    ReorderingBehavior,
    StackedBehavior,
)
from repro.errors import ProtocolError
from repro.faults.chaos import ChaosEngine
from repro.faults.invariants import InvariantMonitor
from repro.faults.schedule import ChaosSpec
from repro.messaging.message import Message
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.graph import Topology


class FieldFuzzBehavior(Behavior):
    """Maliciously craft messages: set fields to zero, extremes, or random
    values (Turret's message-crafting strategy)."""

    _FIELDS = ("seq", "priority", "expiration", "size_bytes", "dest", "sent_at")

    def __init__(self, rng: random.Random, fuzz_fraction: float = 0.5):
        self.rng = rng
        self.fuzz_fraction = fuzz_fraction
        self.fuzzed = 0

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        if not isinstance(payload, Message) or self.rng.random() > self.fuzz_fraction:
            return payload
        self.fuzzed += 1
        field = self.rng.choice(self._FIELDS)
        value = self._extreme(field, payload, node)
        return dataclasses.replace(payload, **{field: value})

    def _extreme(self, field: str, message: Message, node: Any) -> Any:
        choice = self.rng.randrange(4)
        if field == "dest":
            members = node.mtmw.members
            return self.rng.choice(members)
        if field == "expiration":
            return [0.0, None, 1e18, self.rng.random() * 100][choice]
        if field == "sent_at":
            return [0.0, -1e9, 1e18, self.rng.random() * 100][choice]
        extremes = {
            "seq": [0, -(2**63), 2**63 - 1],
            "priority": [0, -1, 2**31],
            "size_bytes": [0, 1, 2**31],
        }[field]
        if choice < 3:
            return extremes[choice]
        return self.rng.randrange(2**31)


@dataclasses.dataclass
class TurretIteration:
    """One fuzzing iteration's outcome."""

    seed: int
    compromised: Tuple[Any, ...]
    strategies: Tuple[str, ...]
    violations: Tuple[str, ...]
    exception: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.exception is None


@dataclasses.dataclass
class TurretReport:
    iterations: List[TurretIteration]

    @property
    def failures(self) -> List[TurretIteration]:
        return [it for it in self.iterations if not it.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """Human-readable campaign summary (failures with reproducing seeds)."""
        total = len(self.iterations)
        bad = len(self.failures)
        lines = [f"Turret campaign: {total} iterations, {bad} failure(s)"]
        for it in self.failures:
            issue = it.exception or "; ".join(it.violations)
            lines.append(
                f"  seed={it.seed} compromised={it.compromised} "
                f"strategies={it.strategies}: {issue}"
            )
        return "\n".join(lines)


class TurretCampaign:
    """Randomized attack search over a topology."""

    STRATEGIES = (
        "drop", "gray-hole", "delay", "duplicate", "reorder",
        "corrupt-priority", "corrupt-dest", "corrupt-seq", "fuzz", "stacked",
    )

    def __init__(
        self,
        topology_factory,
        n_compromised: int = 2,
        run_seconds: float = 6.0,
        master_seed: int = 0,
        config: Optional[OverlayConfig] = None,
        chaos: Optional[ChaosSpec] = None,
    ):
        self.topology_factory = topology_factory
        self.n_compromised = n_compromised
        self.run_seconds = run_seconds
        self.master_seed = master_seed
        self.config = config or OverlayConfig(link_bandwidth_bps=1e6)
        #: Optional chaos layered under the Byzantine attackers: each
        #: iteration additionally runs a fault schedule generated from the
        #: iteration seed, with the InvariantMonitor armed.  Prefer
        #: ``ChaosSpec.link_level(...)``: node crash/churn faults lose the
        #: destination's soft state, which invalidates this campaign's
        #: endpoint-ledger exactly-once checks (the monitor's crash-aware
        #: checks still run either way).
        self.chaos = chaos

    # ------------------------------------------------------------------
    def run(self, iterations: int) -> TurretReport:
        """Run ``iterations`` randomized attack iterations and collect a report."""
        results = [self.run_iteration(self.master_seed + i) for i in range(iterations)]
        return TurretReport(results)

    def run_iteration(self, seed: int) -> TurretIteration:
        """Run one seeded iteration: random attackers, workload, invariant checks."""
        rng = random.Random(seed)
        topology: Topology = self.topology_factory()
        net = OverlayNetwork.build(topology, self.config, seed=seed)
        nodes = sorted(topology.nodes, key=str)

        compromised = tuple(rng.sample(nodes, min(self.n_compromised, len(nodes) - 2)))
        correct = [n for n in nodes if n not in compromised]
        strategies = []
        for node_id in compromised:
            name = rng.choice(self.STRATEGIES)
            strategies.append(name)
            net.compromise(node_id, self._make_behavior(name, rng))

        source, dest = rng.sample(correct, 2)
        observed: List[Message] = []
        net.node(dest).on_deliver = observed.append
        sent_priority: List[Tuple[Any, ...]] = []
        reliable_target = rng.randrange(10, 30)
        reliable_sent = [0]

        monitor: Optional[InvariantMonitor] = None
        has_node_faults = False
        if self.chaos is not None:
            schedule = self.chaos.generate(topology, seed=seed)
            has_node_faults = any(f.kind in ("crash", "churn") for f in schedule)
            ChaosEngine(net, schedule).arm()
            monitor = InvariantMonitor(net)
            monitor.arm()

        def workload() -> None:
            if net.sim.now >= self.run_seconds - 1.0:
                return
            method = (
                DisseminationMethod.flooding()
                if rng.random() < 0.5
                else DisseminationMethod.k_paths(rng.choice((1, 2)))
            )
            try:
                message = net.node(source).send_priority(
                    dest, size_bytes=rng.randrange(100, 1400),
                    priority=rng.randrange(1, 11), method=method,
                )
                sent_priority.append(message.uid)
                while reliable_sent[0] < reliable_target and net.node(
                    source
                ).send_reliable(dest, size_bytes=500):
                    reliable_sent[0] += 1
            except ProtocolError:
                # Under chaos the source may be crashed or partitioned off
                # (no usable path); that is expected load shedding, not a
                # protocol bug.  Without chaos it stays a failure.
                if self.chaos is None:
                    raise
            net.sim.schedule(0.1, workload)

        violations: List[str] = []
        exception: Optional[str] = None
        try:
            workload()
            net.run(self.run_seconds)
            # The endpoint-ledger checks assume the destination never
            # loses its delivery history; skip them when the chaos
            # schedule crashed nodes (the monitor's crash-aware checks
            # below cover that regime).
            if not has_node_faults:
                violations = self._check_invariants(
                    net, source, dest, observed, sent_priority, reliable_sent[0]
                )
            if monitor is not None:
                violations.extend(
                    f"{v.invariant}: {v.detail}" for v in monitor.violations
                )
        except Exception as exc:  # noqa: BLE001 - crash-freedom is the invariant
            exception = f"{type(exc).__name__}: {exc}"
        return TurretIteration(
            seed=seed,
            compromised=compromised,
            strategies=tuple(strategies),
            violations=tuple(violations),
            exception=exception,
        )

    # ------------------------------------------------------------------
    def _make_behavior(self, name: str, rng: random.Random) -> Behavior:
        if name == "drop":
            return DroppingBehavior()
        if name == "gray-hole":
            return DroppingBehavior(drop_fraction=0.5, rng=rng)
        if name == "delay":
            return DelayingBehavior(delay=rng.uniform(0.05, 1.0))
        if name == "duplicate":
            return DuplicatingBehavior(copies=rng.randrange(1, 4))
        if name == "reorder":
            return ReorderingBehavior(batch=rng.randrange(2, 6))
        if name == "corrupt-priority":
            return CorruptingBehavior("priority")
        if name == "corrupt-dest":
            return CorruptingBehavior("dest")
        if name == "corrupt-seq":
            return CorruptingBehavior("seq")
        if name == "fuzz":
            return FieldFuzzBehavior(rng)
        return StackedBehavior(
            [FieldFuzzBehavior(rng, 0.3), DuplicatingBehavior(1), DroppingBehavior(0.3, rng)]
        )

    def _check_invariants(
        self,
        net: OverlayNetwork,
        source: Any,
        dest: Any,
        observed: Sequence[Message],
        sent_priority: Sequence[Tuple[Any, ...]],
        reliable_sent: int,
    ) -> List[str]:
        violations: List[str] = []
        sent_uids = set(sent_priority)
        seen_uids = set()
        reliable_seqs: List[int] = []
        for message in observed:
            if message.source != source:
                violations.append(f"delivered message from wrong source {message.source}")
            if message.semantics.value == "priority":
                if message.uid not in sent_uids:
                    violations.append(f"forged/unsent priority message delivered: {message.uid}")
                if message.uid in seen_uids:
                    violations.append(f"duplicate priority delivery: {message.uid}")
                seen_uids.add(message.uid)
            else:
                reliable_seqs.append(message.seq)
        if reliable_seqs != sorted(set(reliable_seqs)):
            violations.append("reliable delivery not in order / not exactly-once")
        if reliable_seqs and reliable_seqs != list(range(1, reliable_seqs[-1] + 1)):
            violations.append("reliable delivery has gaps")
        if reliable_seqs and reliable_seqs[-1] > reliable_sent:
            violations.append("reliable delivered more than was sent")
        return violations
