"""Canned attacks from the paper's evaluation (Section VI-B).

Each attack is a *driver*: it uses a compromised node's legitimate APIs
and key material (exactly what the threat model grants) plus, where
relevant, a Byzantine interception behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.messaging.message import E2eAck, Message, Semantics
from repro.overlay.config import DisseminationMethod
from repro.overlay.network import OverlayNetwork
from repro.routing.link_state import UPDATE_WIRE_SIZE, LinkStateUpdate
from repro.topology.graph import NodeId


class SaturationFlow:
    """A source sending as fast as it can (Figures 5, 6, 9).

    ``rate_bps`` is the offered load; attackers usually set it at or
    above the link capacity.  Works for both semantics; Reliable flows
    respect back-pressure (they cannot do otherwise — the network simply
    stops accepting), Priority flows keep injecting and let the fair
    schedulers drop.
    """

    def __init__(
        self,
        network: OverlayNetwork,
        source: NodeId,
        dest: NodeId,
        rate_bps: float,
        size_bytes: int = 1186,
        priority: int = 10,
        semantics: Semantics = Semantics.PRIORITY,
        method: Optional[DisseminationMethod] = None,
        burst_interval: float = 0.02,
    ):
        if rate_bps <= 0:
            raise ConfigurationError("rate_bps must be positive")
        self.network = network
        self.source = source
        self.dest = dest
        self.rate_bps = rate_bps
        self.size_bytes = size_bytes
        self.priority = priority
        self.semantics = semantics
        self.method = method or DisseminationMethod.flooding()
        self.burst_interval = burst_interval
        self.running = False
        self.messages_sent = 0
        self._credit = 0.0
        self._last = 0.0

    def start(self) -> None:
        """Begin offering load now."""
        self.running = True
        self._last = self.network.sim.now
        self._tick()

    def stop(self) -> None:
        """Stop offering load."""
        self.running = False

    def schedule(self, start_at: float, stop_at: Optional[float] = None) -> None:
        """Arm start (and optionally stop) at absolute simulated times."""
        self.network.sim.schedule_at(start_at, self.start)
        if stop_at is not None:
            self.network.sim.schedule_at(stop_at, self.stop)

    def _tick(self) -> None:
        if not self.running:
            return
        sim = self.network.sim
        node = self.network.node(self.source)
        self._credit += (sim.now - self._last) * self.rate_bps / 8.0
        self._last = sim.now
        max_backlog = self.rate_bps / 8.0 * self.burst_interval * 4
        self._credit = min(self._credit, max_backlog)
        while self._credit >= self.size_bytes and not node.crashed:
            if self.semantics is Semantics.PRIORITY:
                node.send_priority(
                    self.dest,
                    size_bytes=self.size_bytes,
                    priority=self.priority,
                    method=self.method,
                )
            else:
                if not node.send_reliable(
                    self.dest, size_bytes=self.size_bytes, method=self.method
                ):
                    break  # back-pressure
            self.messages_sent += 1
            self._credit -= self.size_bytes
        sim.schedule(self.burst_interval, self._tick)


class PrioritySpamAttack(SaturationFlow):
    """Message-spamming attack of Figure 7: a compromised source floods
    highest-priority messages to starve others (it cannot — source
    fairness caps it at its own share)."""

    def __init__(self, network: OverlayNetwork, source: NodeId, dest: NodeId,
                 rate_bps: float, **kwargs: Any):
        kwargs.setdefault("priority", 10)
        super().__init__(network, source, dest, rate_bps, **kwargs)


class RoutingWeightAttack:
    """Black-hole attempt via routing updates (Section V-A).

    The compromised node floods signed updates that (a) advertise a
    weight below the MTMW minimum on its own links to attract traffic,
    and (b) lower the weight of links it is not an endpoint of.  Correct
    nodes detect both, ignore the updates, and mark the issuer
    compromised.
    """

    def __init__(self, network: OverlayNetwork, attacker: NodeId):
        self.network = network
        self.attacker = attacker
        self.updates_issued = 0

    def launch(self) -> List[LinkStateUpdate]:
        """Flood the malicious routing updates; returns them for inspection."""
        node = self.network.node(self.attacker)
        pki = self.network.pki
        mtmw = self.network.mtmw
        updates: List[LinkStateUpdate] = []
        seq = 10_000  # distinct from the node's honest seqno space
        for neighbor in node.links:
            minimum = mtmw.min_weight(self.attacker, neighbor)
            updates.append(
                LinkStateUpdate.create(
                    pki, self.attacker, self.attacker, neighbor, minimum / 100.0, seq
                )
            )
            seq += 1
        # A link the attacker is not an endpoint of.
        for a, b in mtmw.topology.edges():
            if self.attacker not in (a, b):
                updates.append(
                    LinkStateUpdate.create(pki, self.attacker, a, b, 1e-6, seq)
                )
                break
        for update in updates:
            for link in node.links.values():
                link.enqueue_control(update, UPDATE_WIRE_SIZE, raw=True)
                link.pump()
        self.updates_issued = len(updates)
        return updates


class E2eAckSpamAttack:
    """Spam E2E ACKs to consume bandwidth / disrupt reliable flows.

    Forged ACKs (for other destinations) fail signature verification;
    the attacker's own ACKs are legitimate but are only forwarded by
    correct nodes when they indicate progress and no more often than the
    E2E timeout, bounding the damage.
    """

    def __init__(self, network: OverlayNetwork, attacker: NodeId,
                 victim_dest: NodeId, interval: float = 0.01):
        self.network = network
        self.attacker = attacker
        self.victim_dest = victim_dest
        self.interval = interval
        self.running = False
        self.acks_sent = 0

    def start(self) -> None:
        """Begin spamming forged and no-progress E2E ACKs."""
        self.running = True
        self._tick()

    def stop(self) -> None:
        """Stop the ACK spam."""
        self.running = False

    def _tick(self) -> None:
        if not self.running:
            return
        network = self.network
        node = network.node(self.attacker)
        if node.crashed:
            return
        # Forged: claims the victim destination acked everything.
        forged = E2eAck(
            dest=self.victim_dest,
            stamp=self.acks_sent + 1_000_000,
            cumulative=(("1", 10**9),),
            signature=network.pki.forge(
                self.victim_dest,
                ("e2e-ack", str(self.victim_dest), self.acks_sent + 1_000_000,
                 (("1", 10**9),)),
            ),
        )
        # Legitimate identity, no progress: correct nodes refuse to flood it.
        own = E2eAck.create(network.pki, self.attacker, 1, {self.attacker: 1})
        for link in node.links.values():
            link.enqueue_control(forged, forged.wire_size, raw=True)
            link.enqueue_control(own, own.wire_size, raw=True)
            link.pump()
        self.acks_sent += 2
        network.sim.schedule(self.interval, self._tick)


class ReplayAttack:
    """Capture a victim flow's messages at a compromised forwarder and
    replay them later; duplicate suppression must hold."""

    def __init__(self, network: OverlayNetwork, attacker: NodeId, copies: int = 3):
        self.network = network
        self.attacker = attacker
        self.copies = copies
        self.captured: List[Tuple[Message, int]] = []

    def capture_behavior(self):
        """Behaviour that records every forwarded data message for later replay."""
        attack = self

        from repro.byzantine.behaviors import Behavior

        class _Capture(Behavior):
            def filter_outgoing(self, payload, neighbor, node):
                if isinstance(payload, Message):
                    attack.captured.append(
                        (payload, payload.wire_size(node.pki.signature_wire_size))
                    )
                return payload

        return _Capture()

    def replay_all(self) -> int:
        """Re-inject every captured message on all links; returns the replay count."""
        node = self.network.node(self.attacker)
        replayed = 0
        for message, size in self.captured:
            for _ in range(self.copies):
                for link in node.links.values():
                    link.enqueue_control(message, size, raw=True)
                    link.pump()
                replayed += 1
        return replayed


@dataclasses.dataclass
class CrashEvent:
    at: float
    node: NodeId
    recover_at: Optional[float] = None


class CrashSchedule:
    """Timed crash/recovery script (Figure 9's partition events)."""

    def __init__(self, network: OverlayNetwork, events: Sequence[CrashEvent]):
        self.network = network
        self.events = list(events)

    def arm(self) -> None:
        """Schedule every crash/recovery event on the simulator."""
        for event in self.events:
            self.network.sim.schedule_at(
                event.at, self.network.crash, event.node
            )
            if event.recover_at is not None:
                self.network.sim.schedule_at(
                    event.recover_at, self.network.recover, event.node
                )
