"""Composable Byzantine interception behaviours.

A :class:`Behavior` sits inside an overlay node and sees every payload
the node is about to transmit (``filter_outgoing``) or has just received
(``filter_incoming``).  It may pass the payload through, drop it, delay
it, duplicate it, corrupt it, or substitute something else entirely —
the node executes whatever comes back.  :class:`HonestBehavior` passes
everything through and is installed by default.

Behaviours deliberately receive the *node* object: a compromised node has
full access to its own state and private keys (threat model, Section
III-B), so attacks may also use the node's legitimate APIs directly (see
:mod:`repro.byzantine.attacks`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence

from repro.messaging.message import Message


class Behavior:
    """Base interception behaviour (honest pass-through)."""

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        """Called for every payload about to be sent to ``neighbor``.

        Return the payload (possibly altered), a replacement, or None to
        silently drop it.
        """
        return payload

    def filter_incoming(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        """Called for every payload received from ``neighbor``."""
        return payload


class HonestBehavior(Behavior):
    """The default: forward everything faithfully."""


class DroppingBehavior(Behavior):
    """Drop every data message (black-hole forwarding), optionally only a
    fraction of them (gray hole)."""

    def __init__(self, drop_fraction: float = 1.0, rng=None, control_too: bool = False):
        self.drop_fraction = drop_fraction
        self._rng = rng
        self.control_too = control_too
        self.dropped = 0

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        if not self.control_too and not isinstance(payload, Message):
            return payload
        if self.drop_fraction >= 1.0 or (
            self._rng is not None and self._rng.random() < self.drop_fraction
        ):
            self.dropped += 1
            return None
        return payload


class SelectiveDropBehavior(Behavior):
    """Drop only messages matching a predicate (e.g. one victim flow)."""

    def __init__(self, predicate: Callable[[Message], bool]):
        self.predicate = predicate
        self.dropped = 0

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        if isinstance(payload, Message) and self.predicate(payload):
            self.dropped += 1
            return None
        return payload


class DelayingBehavior(Behavior):
    """Hold data messages for ``delay`` seconds before letting them out."""

    def __init__(self, delay: float):
        self.delay = delay
        self.delayed = 0

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        if not isinstance(payload, Message):
            return payload
        self.delayed += 1
        link = node.links.get(neighbor)
        size = payload.wire_size(node.pki.signature_wire_size)
        node.sim.schedule(self.delay, self._release, link, payload, size)
        return None

    @staticmethod
    def _release(link, payload, size) -> None:
        if link is not None:
            link.enqueue_control(payload, size, raw=True)
            link.pump()


class DuplicatingBehavior(Behavior):
    """Send every data message ``copies`` extra times (replay flooding)."""

    def __init__(self, copies: int = 1):
        self.copies = copies
        self.duplicated = 0

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        if isinstance(payload, Message):
            link = node.links.get(neighbor)
            size = payload.wire_size(node.pki.signature_wire_size)
            for _ in range(self.copies):
                self.duplicated += 1
                if link is not None:
                    link.enqueue_control(payload, size, raw=True)
        return payload


class CorruptingBehavior(Behavior):
    """Tamper with data messages in flight (flip the payload/priority).

    The tampered copy carries the original signature, so every correct
    node rejects it; the behaviour exists to *prove* that, and to model
    the resource-consumption cost of carrying garbage one hop.
    """

    def __init__(self, mutate_field: str = "priority"):
        self.mutate_field = mutate_field
        self.corrupted = 0

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        if not isinstance(payload, Message):
            return payload
        self.corrupted += 1
        if self.mutate_field == "priority":
            return dataclasses.replace(payload, priority=10)
        if self.mutate_field == "dest":
            return dataclasses.replace(payload, dest=node.node_id)
        if self.mutate_field == "size":
            return dataclasses.replace(payload, size_bytes=max(1, payload.size_bytes // 2))
        return dataclasses.replace(payload, seq=payload.seq + 1000)


class ReorderingBehavior(Behavior):
    """Buffer data messages and release them in reverse batches."""

    def __init__(self, batch: int = 4):
        self.batch = batch
        self._held: List[tuple] = []

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        if not isinstance(payload, Message):
            return payload
        link = node.links.get(neighbor)
        size = payload.wire_size(node.pki.signature_wire_size)
        self._held.append((link, payload, size))
        if len(self._held) >= self.batch:
            for held_link, held_payload, held_size in reversed(self._held):
                if held_link is not None:
                    held_link.enqueue_control(held_payload, held_size, raw=True)
            self._held.clear()
        return None


class StackedBehavior(Behavior):
    """Compose several behaviours; each filters the previous one's output."""

    def __init__(self, behaviors: Sequence[Behavior]):
        self.behaviors = list(behaviors)

    def filter_outgoing(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        for behavior in self.behaviors:
            if payload is None:
                return None
            payload = behavior.filter_outgoing(payload, neighbor, node)
        return payload

    def filter_incoming(self, payload: Any, neighbor: Any, node: Any) -> Optional[Any]:
        for behavior in self.behaviors:
            if payload is None:
                return None
            payload = behavior.filter_incoming(payload, neighbor, node)
        return payload
