"""Byzantine node behaviours, canned attacks, and the Turret-style fuzzer.

The threat model (Section III-B) lets a compromised node exhibit
arbitrary behaviour with full access to its own key material.  This
package models that as a :class:`~repro.byzantine.behaviors.Behavior`
object attached to an overlay node, intercepting every message the node
receives or forwards, plus *attack drivers* that use the compromised
node's legitimate APIs (e.g. spamming highest-priority traffic).

* :mod:`repro.byzantine.behaviors` — composable interception behaviours
  (drop, delay, duplicate, corrupt, misroute, ...);
* :mod:`repro.byzantine.attacks` — canned attacks from the paper's
  evaluation: black hole, routing-weight lies, priority spam,
  saturation flows, ACK spam, crash/recover schedules;
* :mod:`repro.byzantine.turret` — randomized attack-strategy search with
  protocol invariant checking, after the Turret platform the authors
  used to validate the implementation.
"""

from repro.byzantine.behaviors import (
    Behavior,
    CorruptingBehavior,
    DelayingBehavior,
    DroppingBehavior,
    DuplicatingBehavior,
    HonestBehavior,
    SelectiveDropBehavior,
    StackedBehavior,
)

__all__ = [
    "Behavior",
    "HonestBehavior",
    "DroppingBehavior",
    "DelayingBehavior",
    "DuplicatingBehavior",
    "CorruptingBehavior",
    "SelectiveDropBehavior",
    "StackedBehavior",
]
