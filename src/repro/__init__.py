"""Reproduction of "Practical Intrusion-Tolerant Networks" (ICDCS 2016).

The package implements a Spines-style intrusion-tolerant overlay network —
Maximal Topology with Minimal Weights, K node-disjoint paths, constrained
flooding, Priority Messaging with Source Fairness, and Reliable Messaging
with Source-Destination Fairness — on top of a from-scratch discrete-event
network simulator, cryptographic toolkit, and resilient-underlay model.

Quickstart::

    from repro import OverlayNetwork
    from repro.topology import global_cloud

    net = OverlayNetwork.build(global_cloud.topology())
    net.client(7).send_reliable(dest=9, payload=b"open breaker 12")
    net.run(seconds=5.0)

See ``examples/quickstart.py`` for a complete runnable walkthrough.

Top-level names are imported lazily (PEP 562) so that subpackages can be
used independently without paying the full import cost.
"""

from repro.errors import (
    ConfigurationError,
    CryptoError,
    ProtocolError,
    ReproError,
    RoutingSecurityError,
    TopologyError,
)

__version__ = "1.0.0"

_LAZY = {
    "ChaosEngine": ("repro.faults.chaos", "ChaosEngine"),
    "ChaosSpec": ("repro.faults.schedule", "ChaosSpec"),
    "CryptoMode": ("repro.overlay.config", "CryptoMode"),
    "DisseminationMethod": ("repro.overlay.config", "DisseminationMethod"),
    "FaultSchedule": ("repro.faults.schedule", "FaultSchedule"),
    "InvariantMonitor": ("repro.faults.invariants", "InvariantMonitor"),
    "OverlayConfig": ("repro.overlay.config", "OverlayConfig"),
    "OverlayNetwork": ("repro.overlay.network", "OverlayNetwork"),
    "Message": ("repro.messaging.message", "Message"),
    "Semantics": ("repro.messaging.message", "Semantics"),
    "Simulator": ("repro.sim.engine", "Simulator"),
}

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "RoutingSecurityError",
    "CryptoError",
    "ProtocolError",
] + sorted(_LAZY)


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
