"""Exception hierarchy for the repro package.

Every exception raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single handler while still
being able to distinguish security-relevant conditions (for example,
:class:`RoutingSecurityError` signals that a peer violated the Maximal
Topology with Minimal Weights and should be treated as compromised).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class TopologyError(ReproError):
    """A topology operation failed (unknown node, missing edge, ...)."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad signature, bad MAC, ...)."""


class SignatureError(CryptoError):
    """A digital signature failed verification."""


class MacError(CryptoError):
    """A message authentication code failed verification."""


class ProtocolError(ReproError):
    """A protocol message was malformed or violated the state machine."""


class RoutingSecurityError(ProtocolError):
    """A routing update violated the MTMW and its issuer is compromised.

    Raised (or recorded) when a node attempts to decrease a link weight
    below the administrator-signed minimum, to update a link it is not an
    endpoint of, or to replay a stale topology.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class WireFormatError(ProtocolError):
    """A wire payload could not be encoded or decoded.

    Base class for the live runtime's datagram codec errors; network
    input that is truncated, corrupted, or simply not ours raises a
    subclass instead of leaking ``struct.error`` / ``IndexError``.
    """


class WireEncodeError(WireFormatError):
    """A payload cannot be represented in the wire format."""


class WireDecodeError(WireFormatError):
    """A received datagram is malformed, truncated, or unsupported."""


class LiveRuntimeError(ReproError):
    """The live (asyncio/UDP) runtime was misused or failed to boot."""
