"""The cluster coordinator: spawn shards, drive membership, aggregate.

:class:`ClusterDeployment` is the control plane of a multi-process run:

1. Generate and validate a large MTMW topology
   (:func:`~repro.topology.generators.large_overlay`, spot-checked for
   disjoint-path headroom), partition it into contiguous
   :class:`~repro.cluster.spec.ShardSpec` slices.
2. Generate the chaos schedule once and slice it per shard
   (:meth:`~repro.faults.schedule.FaultSchedule.restricted_to`), so the
   cluster-wide fault story is one seeded schedule, not N independent
   ones.
3. Spawn one ``multiprocessing`` (spawn) worker per shard with
   ``PYTHONHASHSEED`` pinned — the SIMULATED PKI's builtin-``hash`` MACs
   must agree across processes — and a single shared ``CLOCK_MONOTONIC``
   epoch so cross-shard latency stamps are comparable.
4. Run the HELLO → ADDR_MAP → READY → START boot barrier over an
   HMAC-authenticated TCP control plane, then drive signed JOIN/LEAVE
   membership changes mid-run and relay restart re-announcements
   between shards.
5. Gather per-shard reports and join them into a
   :class:`ClusterReport`; a worker that died instead of reporting is
   *attributed* (exit code + the nodes it hosted), never awaited
   forever.

The delivery join is a pure function (:func:`rollup`): a flow's ``sent``
count lives in the source node's shard, its ``delivered`` count in the
destination node's latency recorder — possibly a different process — so
only the coordinator can compute end-to-end ratios.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.control import control_key, read_frame, write_frame
from repro.cluster.membership import (
    LEAVE,
    MembershipRecord,
    membership_key,
    next_join_record,
)
from repro.cluster.spec import ClusterConfig, ShardSpec, partition_topology
from repro.cluster.worker import worker_main
from repro.crypto.pki import Pki, PkiMode
from repro.errors import ConfigurationError, LiveRuntimeError
from repro.faults.schedule import FaultSchedule
from repro.runtime.live import CHAOS_PRESETS
from repro.topology.disjoint import max_node_disjoint_paths
from repro.topology.generators import large_overlay
from repro.topology.graph import NodeId, Topology
from repro.topology.mtmw import Mtmw

#: How long a join waits for the hosting shard's JOIN_ACK.
JOIN_ACK_TIMEOUT = 8.0

#: Anchor-link weight for joining nodes (administrator-assigned minimum,
#: same 10 ms order as the generated topology's weights).
JOIN_ANCHOR_WEIGHT = 0.01

#: Disjoint-path spot checks on the generated topology: sampled pairs.
VALIDATE_PAIR_SAMPLES = 6


def _node(value: Any) -> Any:
    try:
        return int(value)
    except (TypeError, ValueError):
        return value


class _ShardHandle:
    """Coordinator-side state for one worker process."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.hello_event = asyncio.Event()
        self.ready_event = asyncio.Event()
        self.report_event = asyncio.Event()
        self.addresses: Dict[NodeId, Tuple[str, int]] = {}
        self.report: Optional[Dict[str, Any]] = None
        self.heartbeats = 0
        self.last_heartbeat: Optional[float] = None
        self.failure: Optional[str] = None

    def attribution(self) -> str:
        """Which nodes this worker hosted (for failure messages)."""
        return ", ".join(str(n) for n in self.spec.nodes)


# ----------------------------------------------------------------------
# Pure aggregation (unit-testable without processes)
# ----------------------------------------------------------------------
def rollup(shard_reports: Dict[int, Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Join every shard's sent-side flows with the destination shard's
    delivered-side latency recorders.  A destination hosted by a dead
    (unreported) shard yields ``delivered=0`` — the gate then excludes
    that flow via the dead shard's nodes, but the join never fails."""
    node_home: Dict[str, Dict[str, Any]] = {}
    for report in shard_reports.values():
        for node_str in report.get("per_node", {}):
            node_home[node_str] = report
    flows: List[Dict[str, Any]] = []
    for shard_id in sorted(shard_reports):
        report = shard_reports[shard_id]
        for flow in report.get("flows", []):
            source, dest = flow["source"], flow["dest"]
            delivered = 0
            mean_latency = None
            dest_report = node_home.get(str(dest))
            if dest_report is not None:
                entry = (
                    dest_report["per_node"][str(dest)]
                    .get("latency", {})
                    .get(f"latency:{source}->{dest}")
                )
                if entry:
                    delivered = int(entry["count"])
                    mean_latency = entry.get("mean")
            sent = int(flow["sent"])
            flows.append(
                {
                    "source": source,
                    "dest": dest,
                    "semantics": flow["semantics"],
                    "post_join": bool(flow.get("post_join")),
                    "shard": shard_id,
                    "sent": sent,
                    "delivered": delivered,
                    "ratio": 1.0 if sent == 0 else delivered / sent,
                    "mean_latency": mean_latency,
                }
            )
    return flows


def excluded_nodes(
    shard_reports: Dict[int, Dict[str, Any]],
    dead_nodes: Set[str] = frozenset(),
) -> Set[str]:
    """Endpoints the delivery gate must not hold the overlay accountable
    for: chaos-faulted, supervisor-crashed, departed, or hosted by a
    worker that died without reporting."""
    excluded: Set[str] = set(dead_nodes)
    for report in shard_reports.values():
        supervision = report.get("supervision") or {}
        excluded.update(str(n) for n in supervision.get("crashed_nodes", ()))
        excluded.update(str(n) for n in supervision.get("departed", ()))
        chaos = report.get("chaos") or {}
        excluded.update(str(n) for n in chaos.get("faulted_nodes", ()))
        excluded.update(str(n) for n in report.get("departed", ()))
    return excluded


def _flows_ratio(flows: List[Dict[str, Any]]) -> float:
    sent = sum(f["sent"] for f in flows)
    delivered = sum(f["delivered"] for f in flows)
    return 1.0 if sent == 0 else delivered / sent


@dataclass
class ClusterReport:
    """Aggregate outcome of one sharded cluster run (JSON-serializable)."""

    nodes: int
    shards: int
    duration: float
    seed: int
    topology_edges: int
    wall_seconds: float
    flows: List[Dict[str, Any]]
    shard_reports: Dict[str, Any]
    joined: List[Any]
    departed: List[Any]
    membership_events: List[Dict[str, Any]]
    excluded: List[str]
    failures: List[str]

    @property
    def correct_flows(self) -> List[Dict[str, Any]]:
        excluded = set(self.excluded)
        return [
            f
            for f in self.flows
            if str(f["source"]) not in excluded and str(f["dest"]) not in excluded
        ]

    @property
    def delivery_ratio(self) -> float:
        return _flows_ratio(self.flows)

    @property
    def correct_flow_ratio(self) -> float:
        return _flows_ratio(self.correct_flows)

    @property
    def post_join_flows(self) -> List[Dict[str, Any]]:
        return [f for f in self.correct_flows if f["post_join"]]

    @property
    def post_join_ratio(self) -> float:
        """Delivery over the mid-run joiners' flows (correct endpoints
        only) — the membership gate's number."""
        return _flows_ratio(self.post_join_flows)

    @property
    def sessions(self) -> Optional[Dict[str, Any]]:
        """Cluster-wide session-tier rollup: integer counters summed
        across shard slices, ratios recomputed from the sums.  None when
        no shard ran a session tier."""
        snapshots = [
            report.get("sessions")
            for report in self.shard_reports.values()
            if isinstance(report, dict) and report.get("sessions")
        ]
        if not snapshots:
            return None
        totals: Dict[str, Any] = {}
        for snap in snapshots:
            for key, value in snap.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                if key in ("success_ratio", "amplification", "retry_budget",
                           "retry_tokens"):
                    continue
                totals[key] = totals.get(key, 0) + value
        requests = totals.get("requests", 0)
        totals["success_ratio"] = (
            round(totals.get("succeeded", 0) / requests, 6) if requests else 1.0
        )
        base = totals.get("base_offers", 0)
        totals["amplification"] = (
            round((base + totals.get("retry_offers", 0)) / base, 4)
            if base
            else 1.0
        )
        return totals

    @property
    def violations(self) -> int:
        total = 0
        for report in self.shard_reports.values():
            invariants = (
                report.get("invariants") if isinstance(report, dict) else None
            )
            if invariants:
                total += int(invariants.get("violations", 0))
        return total

    @property
    def failed(self) -> bool:
        if self.failures:
            return True
        return any(
            isinstance(report, dict) and report.get("failed")
            for report in self.shard_reports.values()
        )

    @property
    def ok(self) -> bool:
        return not self.failed and self.violations == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form: the rollup ratios, per-flow results
        (shard-tagged), per-shard detail, and membership timeline."""
        return {
            "nodes": self.nodes,
            "shards": self.shards,
            "duration": self.duration,
            "seed": self.seed,
            "topology_edges": self.topology_edges,
            "wall_seconds": self.wall_seconds,
            "delivery_ratio": self.delivery_ratio,
            "correct_flow_ratio": self.correct_flow_ratio,
            "post_join_ratio": self.post_join_ratio,
            "flows": self.flows,
            "shards_detail": self.shard_reports,
            "joined": self.joined,
            "departed": self.departed,
            "membership_events": self.membership_events,
            "excluded_nodes": sorted(self.excluded),
            "failures": self.failures,
            "sessions": self.sessions,
            "violations": self.violations,
            "failed": self.failed,
            "ok": self.ok,
        }


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ClusterDeployment:
    """Spawns, synchronizes, and aggregates a sharded cluster run."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        self.topology = large_overlay(
            self.config.nodes,
            degree=self.config.degree,
            chord_fraction=self.config.chord_fraction,
            seed=self.config.seed,
        )
        self._validate_topology()
        self.shards: List[ShardSpec] = partition_topology(
            self.topology, self.config.shards
        )
        self.handles: Dict[int, _ShardHandle] = {
            spec.shard_id: _ShardHandle(spec) for spec in self.shards
        }
        self._key = control_key(self.config.seed)
        self._mkey = membership_key(self.config.seed)
        self._seqno = 1  # the boot MTMW's
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at: Optional[float] = None
        self._stopped = False
        self._pending_join: Optional[asyncio.Future] = None
        self._current_nodes: List[NodeId] = sorted(self.topology.nodes)
        self.chaos_schedule: Optional[FaultSchedule] = None
        self.addresses: Dict[NodeId, Tuple[str, int]] = {}
        self.joined: List[Any] = []
        self.departed: List[Any] = []
        self.membership_events: List[Dict[str, Any]] = []
        self.failures: List[str] = []
        #: The spawned worker processes, in shard order (tests kill one
        #: mid-run to exercise dead-worker attribution).
        self.workers: List[multiprocessing.process.BaseProcess] = []

    def _validate_topology(self) -> None:
        """The generated graph must be a valid, signable MTMW with
        disjoint-path headroom (sampled k-connectivity spot checks —
        exhaustive max-flow over all pairs is O(n^2) and the circulant
        construction is degree-connected by design)."""
        pki = Pki(mode=PkiMode.SIMULATED, seed=self.config.seed)
        for node_id in self.topology.nodes:
            pki.register(node_id)
        mtmw = Mtmw.create(self.topology, pki)
        if not mtmw.verify(pki):
            raise ConfigurationError("generated MTMW failed verification")
        nodes = sorted(self.topology.nodes)
        rng = random.Random(f"cluster-validate:{self.config.seed}")
        for _ in range(min(VALIDATE_PAIR_SAMPLES, len(nodes) // 2)):
            a, b = rng.sample(nodes, 2)
            paths = max_node_disjoint_paths(self.topology, a, b)
            if paths < 2:
                raise ConfigurationError(
                    f"generated topology has only {paths} disjoint "
                    f"path(s) between {a!r} and {b!r}"
                )

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the shard workers and run the boot barrier to START."""
        config = self.config
        loop = asyncio.get_event_loop()
        if self._server is not None:
            raise LiveRuntimeError("cluster already started")
        self._server = await asyncio.start_server(
            self._on_connection, config.host, 0
        )
        control_port = self._server.sockets[0].getsockname()[1]

        if config.chaos_preset is not None:
            spec = CHAOS_PRESETS[config.chaos_preset](
                duration=config.inject_seconds,
                intensity=config.chaos_intensity,
            )
            self.chaos_schedule = spec.generate(
                self.topology, seed=config.seed
            )

        # One shared monotonic epoch: every shard's scheduler measures
        # time as CLOCK_MONOTONIC minus this, so a latency stamp written
        # in one process reads correctly in another.
        epoch = time.monotonic()
        all_nodes = sorted(self.topology.nodes)
        edges = [
            [a, b, self.topology.weight(a, b)] for a, b in self.topology.edges()
        ]
        seed_nodes = {spec.shard_id: spec.seed_node for spec in self.shards}
        supervision = dataclasses.asdict(config.supervision)

        # SIMULATED crypto tags use builtin hash(); pin the children's
        # hash randomization so tags agree across the process boundary
        # (spawn re-execs the interpreter, so the env var takes effect).
        previous_hashseed = os.environ.get("PYTHONHASHSEED")
        os.environ["PYTHONHASHSEED"] = str(config.seed % 4294967296)
        try:
            ctx = multiprocessing.get_context("spawn")
            for spec in self.shards:
                chaos_slice = None
                if self.chaos_schedule is not None:
                    chaos_slice = self.chaos_schedule.restricted_to(
                        set(spec.nodes)
                    ).to_dict()
                payload = {
                    "shard_id": spec.shard_id,
                    "nodes": list(spec.nodes),
                    "all_nodes": all_nodes,
                    "edges": edges,
                    "seed": config.seed,
                    "total_nodes": config.nodes,
                    "duration": config.duration,
                    "rate_msgs_per_sec": config.rate_msgs_per_sec,
                    "size_bytes": config.size_bytes,
                    "host": config.host,
                    "drain": config.drain,
                    "kpaths": config.kpaths,
                    "flow_stride": config.flow_stride,
                    "session_rate": config.session_rate,
                    "chaos": chaos_slice,
                    "supervision": supervision,
                    "monitor_invariants": config.monitor_invariants,
                    "epoch": epoch,
                    "control_host": config.host,
                    "control_port": control_port,
                    "seed_nodes": seed_nodes,
                    "heartbeat_interval": config.heartbeat_interval,
                }
                process = ctx.Process(
                    target=worker_main, args=(payload,), daemon=True
                )
                process.start()
                self.handles[spec.shard_id].process = process
                self.workers.append(process)
        finally:
            if previous_hashseed is None:
                os.environ.pop("PYTHONHASHSEED", None)
            else:
                os.environ["PYTHONHASHSEED"] = previous_hashseed

        # Boot barrier: everyone binds (HELLO), learns the cluster-wide
        # address map, wires links (READY), then starts together.
        await self._await_all("hello_event", config.ready_timeout, "hello")
        for handle in self.handles.values():
            self.addresses.update(handle.addresses)
        await self._broadcast(
            {
                "kind": "addr_map",
                "addresses": {
                    str(node): list(address)
                    for node, address in self.addresses.items()
                },
            }
        )
        await self._await_all("ready_event", config.ready_timeout, "ready")
        await self._broadcast({"kind": "start"})
        self._started_at = loop.time()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            frame = await read_frame(reader, self._key)
        except (
            LiveRuntimeError,
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ):
            writer.close()
            return
        if frame.get("kind") != "hello":
            writer.close()
            return
        handle = self.handles.get(int(frame.get("shard", -1)))
        if handle is None or handle.writer is not None:
            writer.close()
            return
        handle.reader = reader
        handle.writer = writer
        handle.addresses = {
            _node(node): (address[0], int(address[1]))
            for node, address in frame.get("addresses", {}).items()
        }
        handle.hello_event.set()
        handle.reader_task = asyncio.get_event_loop().create_task(
            self._shard_reader(handle)
        )

    async def _shard_reader(self, handle: _ShardHandle) -> None:
        """Demultiplex one shard's control frames until its stream ends."""
        try:
            while True:
                frame = await read_frame(handle.reader, self._key)
                kind = frame.get("kind")
                if kind == "heartbeat":
                    handle.heartbeats += 1
                    handle.last_heartbeat = frame.get("now")
                elif kind == "ready":
                    handle.ready_event.set()
                elif kind == "announce":
                    await self._relay_peer_update(handle.spec.shard_id, frame)
                elif kind == "join_ack":
                    if (
                        self._pending_join is not None
                        and not self._pending_join.done()
                    ):
                        self._pending_join.set_result(frame)
                elif kind == "report":
                    handle.report = frame.get("report")
                    handle.report_event.set()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # stream closed; exitcode attribution happens at gather
        except LiveRuntimeError as exc:
            handle.failure = (
                f"shard {handle.spec.shard_id}: control-plane frame "
                f"rejected: {exc}"
            )

    async def _relay_peer_update(
        self, origin_shard: int, frame: Dict[str, Any]
    ) -> None:
        """A node restarted on a new port: tell every *other* shard."""
        body = {
            "kind": "peer_update",
            "node": frame["node"],
            "address": frame["address"],
        }
        for shard_id, handle in self.handles.items():
            if shard_id == origin_shard or handle.writer is None:
                continue
            try:
                await write_frame(handle.writer, self._key, body)
            except (ConnectionError, OSError):
                continue

    async def _await_all(
        self, event_name: str, timeout: float, what: str
    ) -> None:
        """Wait for every shard's event, failing fast — with exit-code
        and node attribution — if a worker dies before producing it."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while True:
            pending = [
                handle
                for handle in self.handles.values()
                if not getattr(handle, event_name).is_set()
            ]
            if not pending:
                return
            for handle in pending:
                process = handle.process
                if process is not None and process.exitcode is not None:
                    raise LiveRuntimeError(
                        f"shard {handle.spec.shard_id} worker exited with "
                        f"code {process.exitcode} before {what} "
                        f"(nodes {handle.attribution()})"
                    )
            if loop.time() > deadline:
                shard_ids = sorted(h.spec.shard_id for h in pending)
                raise LiveRuntimeError(
                    f"timed out waiting for {what} from shards {shard_ids}"
                )
            await asyncio.sleep(0.05)

    async def _broadcast(self, body: Dict[str, Any]) -> None:
        for handle in self.handles.values():
            if handle.writer is None:
                continue
            try:
                await write_frame(handle.writer, self._key, body)
            except (ConnectionError, OSError):
                continue

    # ------------------------------------------------------------------
    # Run: membership timeline, then STOP
    # ------------------------------------------------------------------
    async def serve(self) -> None:
        """Drive the membership timeline over the inject window and send
        STOP after the drain: joins land around 35% of injection, leaves
        around 65%, so joiners source a meaningful post-join flow span
        and leavers drain while traffic still runs."""
        config = self.config
        if self._started_at is None:
            raise LiveRuntimeError("cluster not started")
        inject = config.inject_seconds
        timeline: List[Tuple[float, str, Optional[NodeId]]] = []
        for index in range(config.joins):
            timeline.append((inject * 0.35 + index * 0.6, "join", None))
        for index, node in enumerate(self._pick_leavers(config.leaves)):
            timeline.append((inject * 0.65 + index * 0.6, "leave", node))
        timeline.sort(key=lambda item: item[0])
        for offset, action, node in timeline:
            await self._sleep_until(self._started_at + offset)
            if action == "join":
                await self._do_join()
            else:
                await self._do_leave(node)
        await self._sleep_until(self._started_at + config.duration + 1.0)
        await self._broadcast({"kind": "stop"})

    @staticmethod
    async def _sleep_until(when: float) -> None:
        delay = when - asyncio.get_event_loop().time()
        if delay > 0:
            await asyncio.sleep(delay)

    def _pick_leavers(self, count: int) -> List[NodeId]:
        """Leave candidates: non-seed nodes (seed nodes anchor discovery
        and joins), picked from the back of the shard list."""
        seeds = {spec.seed_node for spec in self.shards}
        candidates: List[NodeId] = []
        for spec in reversed(self.shards):
            for node in reversed(spec.nodes):
                if node not in seeds:
                    candidates.append(node)
        return candidates[:count]

    async def _do_join(self) -> None:
        """One signed JOIN: host shard boots the node, acks its address,
        then every other shard folds it in."""
        loop = asyncio.get_event_loop()
        self._seqno += 1
        anchors = tuple(
            (spec.seed_node, JOIN_ANCHOR_WEIGHT)
            for spec in self.shards[: min(3, len(self.shards))]
        )
        record = next_join_record(
            self._current_nodes, self._seqno, anchors
        ).signed(self._mkey)
        host = self.handles[self.shards[-1].shard_id]
        if host.writer is None:
            self.failures.append(
                f"join {record.node}: host shard {host.spec.shard_id} "
                f"has no control connection"
            )
            return
        future: asyncio.Future = loop.create_future()
        self._pending_join = future
        try:
            await write_frame(
                host.writer,
                self._key,
                {
                    "kind": "join",
                    "record": record.to_dict(),
                    "host_shard": host.spec.shard_id,
                },
            )
            try:
                ack = await asyncio.wait_for(future, JOIN_ACK_TIMEOUT)
            except asyncio.TimeoutError:
                self.failures.append(
                    f"join {record.node}: no JOIN_ACK from shard "
                    f"{host.spec.shard_id} within {JOIN_ACK_TIMEOUT}s"
                )
                return
        except (ConnectionError, OSError) as exc:
            self.failures.append(f"join {record.node}: control plane: {exc}")
            return
        finally:
            self._pending_join = None
        if not ack.get("ok"):
            self.failures.append(
                f"join {record.node}: host shard rejected record "
                f"({ack.get('result')!r})"
            )
            return
        address = ack["address"]
        self._current_nodes.append(record.node)
        self.joined.append(record.node)
        self.addresses[record.node] = (address[0], int(address[1]))
        self.membership_events.append(
            {
                "action": "join",
                "node": record.node,
                "seqno": record.seqno,
                "host_shard": host.spec.shard_id,
                "anchors": [peer for peer, _ in anchors],
            }
        )
        body = {
            "kind": "join",
            "record": record.to_dict(),
            "host_shard": host.spec.shard_id,
            "address": address,
        }
        for shard_id, handle in self.handles.items():
            if shard_id == host.spec.shard_id or handle.writer is None:
                continue
            try:
                await write_frame(handle.writer, self._key, body)
            except (ConnectionError, OSError):
                continue

    async def _do_leave(self, node: NodeId) -> None:
        """One signed LEAVE, broadcast to every shard."""
        self._seqno += 1
        record = MembershipRecord(LEAVE, node, self._seqno).signed(self._mkey)
        if node in self._current_nodes:
            self._current_nodes.remove(node)
        self.departed.append(node)
        self.membership_events.append(
            {"action": "leave", "node": node, "seqno": record.seqno}
        )
        await self._broadcast({"kind": "leave", "record": record.to_dict()})

    # ------------------------------------------------------------------
    # Gather, stop, report
    # ------------------------------------------------------------------
    async def finish(self) -> ClusterReport:
        """Collect every shard's report (attributing dead workers), tear
        everything down, and build the aggregate report."""
        for handle in self.handles.values():
            await self._gather_report(handle)
        await self.stop()
        return self._build_report()

    async def _gather_report(self, handle: _ShardHandle) -> None:
        """Wait for one shard's report — but never past a dead worker:
        an exited process is given one beat for its final frame to drain
        and is then attributed by exit code and hosted nodes."""
        loop = asyncio.get_event_loop()
        process = handle.process
        if process is None:
            if handle.failure is None:
                handle.failure = (
                    f"shard {handle.spec.shard_id} worker never started "
                    f"(nodes {handle.attribution()})"
                )
            return
        deadline = loop.time() + self.config.report_timeout
        while handle.report is None:
            if process.exitcode is not None:
                await asyncio.sleep(0.2)  # let a final frame drain
                if handle.report is None:
                    handle.failure = (
                        f"shard {handle.spec.shard_id} worker exited with "
                        f"code {process.exitcode} before reporting "
                        f"(nodes {handle.attribution()})"
                    )
                    return
                break
            if loop.time() > deadline:
                handle.failure = (
                    f"shard {handle.spec.shard_id} worker unresponsive "
                    f"(no report within {self.config.report_timeout}s; "
                    f"nodes {handle.attribution()})"
                )
                return
            try:
                await asyncio.wait_for(handle.report_event.wait(), 0.25)
            except asyncio.TimeoutError:
                continue

    async def stop(self) -> None:
        """Teardown: close the control plane, reap every worker with a
        bounded escalation (poll → terminate → kill) so a wedged child
        can never hang the coordinator.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        for handle in self.handles.values():
            if handle.reader_task is not None:
                handle.reader_task.cancel()
            if handle.writer is not None:
                try:
                    handle.writer.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for handle in self.handles.values():
            await self._reap(handle)

    async def _reap(
        self, handle: _ShardHandle, grace: float = 3.0
    ) -> None:
        process = handle.process
        if process is None:
            return
        loop = asyncio.get_event_loop()
        deadline = loop.time() + grace
        while process.is_alive() and loop.time() < deadline:
            await asyncio.sleep(0.05)
        if process.is_alive():
            process.terminate()
            terminate_deadline = loop.time() + 1.0
            while process.is_alive() and loop.time() < terminate_deadline:
                await asyncio.sleep(0.05)
        if process.is_alive():  # pragma: no cover - last resort
            process.kill()
        process.join(timeout=0.5)

    def _build_report(self) -> ClusterReport:
        loop = asyncio.get_event_loop()
        reports: Dict[int, Dict[str, Any]] = {}
        dead_nodes: Set[str] = set()
        failures = list(self.failures)
        shard_detail: Dict[str, Any] = {}
        for shard_id in sorted(self.handles):
            handle = self.handles[shard_id]
            if handle.failure is not None:
                failures.append(handle.failure)
            if handle.report is not None:
                reports[shard_id] = handle.report
                shard_detail[str(shard_id)] = handle.report
            else:
                dead_nodes.update(str(n) for n in handle.spec.nodes)
                shard_detail[str(shard_id)] = {
                    "failed": True,
                    "nodes": [str(n) for n in handle.spec.nodes],
                    "heartbeats": handle.heartbeats,
                }
        flows = rollup(reports)
        excluded = excluded_nodes(reports, dead_nodes)
        excluded.update(str(n) for n in self.departed)
        wall = max(
            [r.get("wall_seconds", 0.0) for r in reports.values()]
            or [
                loop.time() - self._started_at
                if self._started_at is not None
                else 0.0
            ]
        )
        return ClusterReport(
            nodes=self.config.nodes,
            shards=self.config.shards,
            duration=self.config.duration,
            seed=self.config.seed,
            topology_edges=len(self.topology.edges()),
            wall_seconds=wall,
            flows=flows,
            shard_reports=shard_detail,
            joined=list(self.joined),
            departed=list(self.departed),
            membership_events=list(self.membership_events),
            excluded=sorted(excluded),
            failures=failures,
        )


async def _run_cluster_async(config: ClusterConfig) -> ClusterReport:
    deployment = ClusterDeployment(config)
    try:
        await deployment.start()
        await deployment.serve()
    except LiveRuntimeError as exc:
        deployment.failures.append(str(exc))
        await deployment._broadcast({"kind": "stop"})  # best effort
    return await deployment.finish()


def run_cluster(config: Optional[ClusterConfig] = None) -> ClusterReport:
    """Boot a sharded cluster, run it to completion, and aggregate."""
    return asyncio.run(_run_cluster_async(config or ClusterConfig()))
