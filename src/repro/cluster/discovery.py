"""Seed-node bootstrap discovery over the UDP data plane.

A node that joins mid-run knows only the run seed and the addresses of
the per-shard *seed nodes* (the first node of every shard, fixed by the
:class:`~repro.cluster.spec.ShardSpec`).  It discovers its anchor
neighbors' current addresses by sending an
:class:`~repro.runtime.wire.AddrQuery` to a seed node, which answers
with an :class:`~repro.runtime.wire.AddrReply` from its directory;
restarted nodes broadcast :class:`~repro.runtime.wire.AddrAnnounce` so
directories stay current without any central registration step.

These frames are deliberately *unauthenticated* (a joiner has no link —
and thus no link key — yet): a forged reply or announce can at worst
point a node at a wrong address, where every PoR packet then fails its
MAC — degraded to a DoS the link retransmission already rides out, never
to accepted traffic.  The authenticated membership decision itself rides
the signed record path (:mod:`repro.cluster.membership`), not discovery.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import LiveRuntimeError
from repro.runtime.transport import Address, AsyncioUdpTransport
from repro.runtime.wire import (
    AddrAnnounce,
    AddrQuery,
    AddrReply,
    encode_datagram,
)


class SeedDirectory:
    """A seed node's address directory plus its query/announce handler.

    Installed on the seed node's existing transport via the
    ``on_control`` hook — discovery shares the node's data-plane socket,
    so there is nothing extra to bind, supervise, or re-announce.
    """

    def __init__(
        self,
        transport: AsyncioUdpTransport,
        addresses: Dict[Any, Address],
        on_announce: Optional[Callable[[Any, Address], None]] = None,
    ):
        self._transport = transport
        self.addresses = dict(addresses)
        self.queries_answered = 0
        self.announces_applied = 0
        self._on_announce = on_announce
        transport.on_control = self._handle

    def update(self, node: Any, address: Address) -> None:
        """Fold a new binding into the directory (restart, join)."""
        self.addresses[node] = (address[0], address[1])

    def forget(self, node: Any) -> None:
        """Drop a departed node from the directory."""
        self.addresses.pop(node, None)

    def _handle(self, packet: Any, addr: Address) -> None:
        if isinstance(packet, AddrQuery):
            entries = tuple(
                (target, self.addresses[target][0], self.addresses[target][1])
                for target in packet.targets
                if target in self.addresses
            )
            self.queries_answered += 1
            self._transport.sendto_address(
                encode_datagram(
                    self._transport.node_id,
                    packet.sender,
                    AddrReply(packet.nonce, entries),
                ),
                addr,
            )
        elif isinstance(packet, AddrAnnounce):
            self.update(packet.sender, (packet.host, packet.port))
            self.announces_applied += 1
            if self._on_announce is not None:
                self._on_announce(packet.sender, (packet.host, packet.port))
        # AddrReply at a seed node: not ours to handle; ignore.


async def query_addresses(
    transport: AsyncioUdpTransport,
    seed_node: Any,
    seed_address: Address,
    targets: Tuple[Any, ...],
    nonce: int,
    timeout: float = 1.0,
    attempts: int = 3,
) -> Dict[Any, Address]:
    """Resolve ``targets`` through one seed node, with bounded retries.

    Temporarily installs an ``on_control`` hook on the querying node's
    transport to catch the reply; UDP loss is handled by re-sending the
    (idempotent) query up to ``attempts`` times.
    """
    loop = asyncio.get_event_loop()
    previous = transport.on_control

    for _ in range(attempts):
        future: asyncio.Future = loop.create_future()

        def catch(packet: Any, addr: Address, _future=future) -> None:
            if (
                isinstance(packet, AddrReply)
                and packet.nonce == nonce
                and not _future.done()
            ):
                _future.set_result(packet)

        transport.on_control = catch
        try:
            transport.sendto_address(
                encode_datagram(
                    transport.node_id,
                    seed_node,
                    AddrQuery(transport.node_id, nonce, tuple(targets)),
                ),
                seed_address,
            )
            reply = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            continue
        finally:
            transport.on_control = previous
        return {node: (host, port) for node, host, port in reply.entries}
    raise LiveRuntimeError(
        f"address discovery via seed {seed_node!r} timed out "
        f"after {attempts} attempts"
    )
