"""Signed dynamic-membership records (JOIN/LEAVE) for the live cluster.

The paper's MTMW is an administrator-signed topology; dynamic membership
extends the same trust root to runtime: the administrator (here, the
cluster coordinator) signs a :class:`MembershipRecord` for every node
addition or removal, and every shard independently verifies it before
folding the change into a successor MTMW.  Records carry a monotonic
sequence number so a replayed (stale) record — or one signed with the
wrong key — is rejected exactly the way :class:`~repro.topology.mtmw.
MtmwHolder` rejects stale/forged MTMWs.

Records are authenticated with HMAC-SHA256 under a key derived purely
from the run seed (:func:`membership_key`): unlike the SIMULATED PKI's
builtin-``hash`` tags, an HMAC is stable across OS processes, which is
the whole point here.  In a REAL-crypto deployment the record would
carry an RSA signature under the MTMW admin key instead; the record
format and replay discipline are identical.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.topology.mtmw import MtmwUpdateResult

#: Membership actions.
JOIN = "join"
LEAVE = "leave"


def membership_key(seed: int) -> bytes:
    """The admin membership-signing key (pure function of the run seed,
    so every shard process derives the verifier key independently)."""
    return hashlib.sha256(f"repro-mtmw-admin-membership:{seed}".encode()).digest()


@dataclass(frozen=True)
class MembershipRecord:
    """One signed membership change.

    ``links`` are the anchor edges a joining node attaches with (empty
    for a leave).  ``seqno`` is the MTMW sequence number the change
    produces: applying the record yields a successor MTMW at exactly
    this seqno, so record replay protection and MTMW replay protection
    advance in lockstep.
    """

    action: str
    node: Any
    seqno: int
    links: Tuple[Tuple[Any, float], ...] = ()
    signature: str = ""

    def __post_init__(self) -> None:
        if self.action not in (JOIN, LEAVE):
            raise ConfigurationError(f"unknown membership action {self.action!r}")
        if self.seqno < 2:
            raise ConfigurationError(
                "membership seqno must be >= 2 (seqno 1 is the boot MTMW)"
            )
        if self.action == JOIN and not self.links:
            raise ConfigurationError("a join record needs anchor links")

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def signed_payload(self) -> bytes:
        """Canonical bytes covered by the signature."""
        return json.dumps(
            {
                "action": self.action,
                "node": self.node,
                "seqno": self.seqno,
                "links": [[peer, weight] for peer, weight in self.links],
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()

    def signed(self, key: bytes) -> "MembershipRecord":
        """A copy carrying the admin HMAC over the canonical payload."""
        tag = _hmac.new(key, self.signed_payload(), hashlib.sha256).hexdigest()
        return MembershipRecord(
            self.action, self.node, self.seqno, self.links, tag
        )

    def verify(self, key: bytes) -> bool:
        """Whether the signature is the admin's HMAC over the payload."""
        if not self.signature:
            return False
        expected = _hmac.new(
            key, self.signed_payload(), hashlib.sha256
        ).hexdigest()
        return _hmac.compare_digest(expected, self.signature)

    # ------------------------------------------------------------------
    # Wire form (control-plane JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Control-plane JSON form (signature included verbatim)."""
        return {
            "action": self.action,
            "node": self.node,
            "seqno": self.seqno,
            "links": [[peer, weight] for peer, weight in self.links],
            "signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MembershipRecord":
        return cls(
            action=str(data["action"]),
            node=data["node"],
            seqno=int(data["seqno"]),
            links=tuple(
                (peer, float(weight)) for peer, weight in data.get("links", [])
            ),
            signature=str(data.get("signature", "")),
        )


class MembershipLedger:
    """A shard's replay-protected view of the membership record stream.

    Mirrors :class:`~repro.topology.mtmw.MtmwHolder`: a record is
    ACCEPTED only if its signature verifies *and* its seqno strictly
    advances the ledger; otherwise BAD_SIGNATURE or STALE.  Every shard
    runs one ledger, so a record replayed by a compromised peer (or a
    delayed duplicate from the control plane itself) is applied at most
    once cluster-wide.
    """

    def __init__(self, key: bytes, base_seqno: int = 1):
        self._key = key
        self.last_seqno = base_seqno
        self.accepted: list = []
        self.rejected_stale = 0
        self.rejected_forged = 0

    def consider(self, record: MembershipRecord) -> MtmwUpdateResult:
        """Validate one record against the ledger (does not apply it)."""
        if not record.verify(self._key):
            self.rejected_forged += 1
            return MtmwUpdateResult.BAD_SIGNATURE
        if record.seqno <= self.last_seqno:
            self.rejected_stale += 1
            return MtmwUpdateResult.STALE
        self.last_seqno = record.seqno
        self.accepted.append(record)
        return MtmwUpdateResult.ACCEPTED

    def summary(self) -> Dict[str, Any]:
        """Accepted/rejected record accounting for the shard report."""
        return {
            "last_seqno": self.last_seqno,
            "accepted": [
                {"action": r.action, "node": r.node, "seqno": r.seqno}
                for r in self.accepted
            ],
            "rejected_stale": self.rejected_stale,
            "rejected_forged": self.rejected_forged,
        }


def next_join_record(
    current_nodes,
    seqno: int,
    anchors: Tuple[Tuple[Any, float], ...],
    node: Optional[Any] = None,
) -> MembershipRecord:
    """The coordinator's unsigned join record: the new node id defaults
    to max(existing) + 1 (int-id topologies), attached via ``anchors``."""
    if node is None:
        node = max(int(n) for n in current_nodes) + 1
    return MembershipRecord(JOIN, node, seqno, anchors)
