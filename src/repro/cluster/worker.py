"""One cluster shard: a worker process running its slice of the overlay.

``worker_main`` is the ``multiprocessing`` (spawn) entry point.  Its
``payload`` is a dict of primitives only — node lists, edge triples, a
serialized chaos slice, scalars — so the spawn pickle never depends on
repro object versions.  The worker connects back to the coordinator's
TCP control plane, boots a :class:`ShardDeployment` (a
:class:`~repro.runtime.live.LiveDeployment` that binds sockets only for
its *local* nodes and wires cross-shard Proof-of-Receipt links against
the coordinator-distributed address map), and then serves control frames
— signed membership JOIN/LEAVE, peer re-announcements — until STOP.

Cross-process determinism contract: the coordinator sets
``PYTHONHASHSEED`` before spawning, so the SIMULATED PKI's builtin-hash
MACs agree between workers; link secrets and the membership/control HMAC
keys are sha256-derived from the run seed and agree by construction.
Every worker regenerates the identical topology, PKI, and boot MTMW from
``(edges, seed)`` alone — nothing protocol-level crosses the process
boundary except real UDP datagrams and signed control frames.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.control import control_key, read_frame, write_frame
from repro.cluster.discovery import SeedDirectory, query_addresses
from repro.cluster.membership import (
    MembershipLedger,
    MembershipRecord,
    membership_key,
)
from repro.crypto.pki import Pki
from repro.errors import LiveRuntimeError
from repro.faults.invariants import InvariantMonitor
from repro.faults.schedule import FaultSchedule
from repro.link.por import PorEndpoint
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod
from repro.overlay.node import OverlayNode
from repro.runtime.chaos import ChaosUdpTransport, DatagramFaultInjector, LiveChaosEngine
from repro.runtime.live import LiveConfig, LiveDeployment, NodeProcess, flow_plan
from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.supervision import NodeSupervisor, SupervisionConfig
from repro.runtime.transport import AsyncioUdpTransport
from repro.runtime.wire import AddrAnnounce, encode_datagram
from repro.sim.stats import StatsRegistry
from repro.topology.graph import NodeId, Topology
from repro.topology.mtmw import Mtmw, MtmwUpdateResult

#: Seconds between a LEAVE's traffic stop and the node's final kill, so
#: in-flight messages drain before the socket disappears.
LEAVE_DRAIN_GRACE = 0.3

#: Slack past the configured duration before a shard self-stops when the
#: coordinator's STOP frame never arrives (dead coordinator safety net).
STOP_DEADLINE_SLACK = 60.0


def _node(value: Any) -> Any:
    """JSON object keys arrive as strings; our node ids are ints."""
    try:
        return int(value)
    except (TypeError, ValueError):
        return value


def _worker_live_config(payload: Dict[str, Any]) -> LiveConfig:
    kpaths = int(payload.get("kpaths", 0))
    method = (
        DisseminationMethod.k_paths(kpaths)
        if kpaths
        else DisseminationMethod.flooding()
    )
    chaos = (
        FaultSchedule.from_dict(payload["chaos"]) if payload.get("chaos") else None
    )
    return LiveConfig(
        nodes=int(payload["total_nodes"]),
        duration=float(payload["duration"]),
        seed=int(payload["seed"]),
        method=method,
        rate_msgs_per_sec=float(payload["rate_msgs_per_sec"]),
        size_bytes=int(payload["size_bytes"]),
        host=str(payload["host"]),
        drain=float(payload["drain"]),
        chaos=chaos,
        supervision=SupervisionConfig(**payload.get("supervision", {})),
        monitor_invariants=bool(payload.get("monitor_invariants", True)),
    )


class ShardDeployment(LiveDeployment):
    """A LiveDeployment hosting one shard of a sharded cluster.

    ``processes`` holds only the shard's local nodes; ``topology``,
    ``pki``, and ``mtmw`` cover the *full* overlay (regenerated
    deterministically), so routing, chaos partitions, and membership
    updates see the same world every other shard sees.
    """

    def __init__(
        self,
        payload: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        super().__init__(_worker_live_config(payload))
        self.shard_id = int(payload["shard_id"])
        self.local_nodes: List[NodeId] = [_node(n) for n in payload["nodes"]]
        self.local_set = set(self.local_nodes)
        topo = Topology()
        for node in payload["all_nodes"]:
            topo.add_node(_node(node))
        for a, b, weight in payload["edges"]:
            topo.add_edge(_node(a), _node(b), float(weight))
        self.topology = topo
        self._epoch = float(payload["epoch"])
        self._key = control_key(int(payload["seed"]))
        self._mkey = membership_key(int(payload["seed"]))
        self.ledger = MembershipLedger(self._mkey)
        self._reader = reader
        self._writer = writer
        #: shard id -> that shard's bootstrap seed node.
        self.seed_nodes: Dict[int, NodeId] = {
            int(shard): _node(node)
            for shard, node in payload.get("seed_nodes", {}).items()
        }
        self.heartbeat_interval = float(payload.get("heartbeat_interval", 0.5))
        self._flow_stride = max(1, int(payload.get("flow_stride", 1)))
        self._session_rate = float(payload.get("session_rate", 0.0))
        #: node -> (host, port) for every node in the cluster (from the
        #: coordinator's address map; updated by announces/joins).
        self.addresses: Dict[NodeId, Tuple[str, int]] = {}
        self.joined: List[NodeId] = []
        self.departed: List[NodeId] = []
        self.directory: Optional[SeedDirectory] = None
        self._flow_meta: List[Dict[str, Any]] = []
        self._join_nonce = 0

    # ------------------------------------------------------------------
    # Boot (control-plane two-phase: HELLO -> ADDR_MAP -> READY -> START)
    # ------------------------------------------------------------------
    async def _boot(self) -> None:
        config = self.config
        loop = asyncio.get_event_loop()
        loop.set_exception_handler(self._on_loop_exception)
        self.scheduler = AsyncioScheduler(
            seed=config.seed, loop=loop, epoch=self._epoch
        )
        self.pki = Pki(mode=config.overlay.crypto.pki_mode, seed=config.seed)
        for node_id in self.topology.nodes:
            self.pki.register(node_id)
        self.mtmw = Mtmw.create(self.topology, self.pki)
        self.chaos_schedule = self._resolve_chaos()
        if self.chaos_schedule is not None:
            self.injector = DatagramFaultInjector(
                self.scheduler.rngs.stream("live-chaos")
            )

        # Phase 1: bind the *local* nodes only.
        for node_id in sorted(self.local_nodes):
            await self._boot_node(node_id, self.mtmw)

        # Control-plane handshake: tell the coordinator where our nodes
        # landed; learn where everyone else's landed.
        await self._send(
            {
                "kind": "hello",
                "shard": self.shard_id,
                "addresses": {
                    str(n): list(self.processes[n].address)
                    for n in self.local_nodes
                },
            }
        )
        frame = await read_frame(self._reader, self._key)
        if frame.get("kind") != "addr_map":
            raise LiveRuntimeError(
                f"expected addr_map, got {frame.get('kind')!r}"
            )
        self.addresses = {
            _node(node): (addr[0], int(addr[1]))
            for node, addr in frame["addresses"].items()
        }

        # Phase 2: one PoR half per (local endpoint, MTMW edge) — the
        # remote half lives in whichever process hosts the other end.
        for a, b in self.topology.edges():
            if a in self.local_set:
                self._wire_half(a, b)
            if b in self.local_set:
                self._wire_half(b, a)
        for process in self.processes.values():
            process.overlay.start()

        # The shard's first node doubles as its bootstrap seed node.
        self.directory = SeedDirectory(
            self.processes[self.local_nodes[0]].transport, self.addresses
        )

        if config.monitor_invariants:
            self.monitor = InvariantMonitor(
                self, check_interval=config.invariant_check_interval
            )
            self.monitor.arm()
        self.supervisor = NodeSupervisor(self, config.supervision)
        self.supervisor.arm()
        if self.chaos_schedule is not None:
            assert self.injector is not None
            self.chaos_engine = LiveChaosEngine(
                self, self.chaos_schedule, self.injector, self.supervisor
            )

        await self._send({"kind": "ready", "shard": self.shard_id})
        frame = await read_frame(self._reader, self._key)
        if frame.get("kind") != "start":
            raise LiveRuntimeError(f"expected start, got {frame.get('kind')!r}")

        if self.chaos_engine is not None:
            self.chaos_engine.arm()
        self._started_at = loop.time()
        self._start_traffic()

    async def _boot_node(self, node_id: NodeId, mtmw: Mtmw) -> None:
        """Bind one local node's socket and build its protocol stack."""
        config = self.config
        stats = StatsRegistry(self.scheduler)
        if not self.processes:
            self.pki.attach_metrics(stats.metrics)
        if self.injector is not None:
            transport: AsyncioUdpTransport = await ChaosUdpTransport.open(
                node_id, host=config.host, metrics=stats.metrics,
                injector=self.injector,
            )
        else:
            transport = await AsyncioUdpTransport.open(
                node_id, host=config.host, metrics=stats.metrics
            )
        transport.on_dispatch_error = (
            lambda exc, _node=node_id: self._on_dispatch_error(_node, exc)
        )
        overlay = OverlayNode(
            self.scheduler, node_id, mtmw, self.pki, config.overlay, stats
        )
        self.processes[node_id] = NodeProcess(
            node_id, self.scheduler, transport, overlay, stats
        )

    def _wire_half(self, local: NodeId, remote: NodeId) -> None:
        """This process's half of the PoR link ``local <-> remote``.

        Both halves derive the same link secret from the seed, so each
        side establishing out-of-band independently yields a working
        authenticated link — no cross-process handshake needed at boot.
        """
        process = self.processes[local]
        process.transport.register_peer(remote, self.addresses[remote])
        endpoint = PorEndpoint(
            self.scheduler,
            local,
            remote,
            process.transport.send_channel(remote, coalesce=True),
            process.transport.receive_channel(remote),
            self.pki,
            config=self.config.overlay.por,
        )
        endpoint.establish_out_of_band()
        endpoint.attach_mac_counters(process.stats.metrics)
        process.overlay.attach_link(remote, endpoint)

    def _start_traffic(self) -> None:
        """The global flow plan, thinned by ``flow_stride`` (every shard
        computes the same plan, so the stride selects the same flows
        everywhere), then filtered to locally sourced flows (the
        destination may be remote; delivery lands in its shard's stats)."""
        plan = flow_plan(sorted(self.topology.nodes))
        for index, (source, dest, semantics) in enumerate(plan):
            if index % self._flow_stride:
                continue
            if source in self.local_set:
                self._launch_flow(source, dest, semantics, post_join=False)
        if self._session_rate > 0:
            from repro.clients.session import SessionTier, SessionWorkloadConfig

            # The shard hosts the tier slice homed on its local nodes;
            # destinations span the full overlay (ranked with the same
            # seed-stable stream as every other shard, so all slices
            # agree on which destinations are hot).  Requests to remote
            # destinations are answered by that destination's own
            # shard's tier — responders only need the local dedup state.
            all_nodes = sorted(self.topology.nodes)
            ranked = list(all_nodes)
            self.sim.rngs.stream("slo:dest-rank").shuffle(ranked)
            share = self._session_rate * len(self.local_nodes) / len(all_nodes)
            self.session_tier = SessionTier(
                self,
                sorted(self.local_nodes),
                ranked,
                workload=SessionWorkloadConfig(arrival_rate=share),
                name=f"shard{self.shard_id}",
            )
            self.session_tier.start()

    def _launch_flow(
        self,
        source: NodeId,
        dest: NodeId,
        semantics: Semantics,
        post_join: bool,
    ) -> None:
        from repro.workloads.traffic import CbrTraffic

        config = self.config
        generator = CbrTraffic(
            self,
            source,
            dest,
            rate_bps=config.rate_msgs_per_sec * config.size_bytes * 8.0,
            size_bytes=config.size_bytes,
            semantics=semantics,
            method=config.method,
        )
        self.traffic.append(generator)
        self._flow_specs.append((source, dest, semantics))
        self._flow_meta.append({"post_join": post_join})
        generator.start()

    # ------------------------------------------------------------------
    # Run loop: serve control frames until STOP
    # ------------------------------------------------------------------
    async def serve_cluster(self) -> None:
        """Inject, apply membership/peer frames as they arrive, stop on
        the coordinator's STOP (or a generous deadline if it dies)."""
        config = self.config
        loop = asyncio.get_event_loop()
        self.scheduler.schedule(config.inject_seconds, self._stop_injection)
        heartbeats = loop.create_task(self._heartbeats())
        deadline = loop.time() + config.duration + STOP_DEADLINE_SLACK
        try:
            while True:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    self._record_error(
                        "control plane: no STOP before deadline; self-stopping"
                    )
                    return
                try:
                    frame = await asyncio.wait_for(
                        read_frame(self._reader, self._key), timeout
                    )
                except asyncio.TimeoutError:
                    self._record_error(
                        "control plane: no STOP before deadline; self-stopping"
                    )
                    return
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    self._record_error("control plane: connection lost")
                    return
                kind = frame.get("kind")
                if kind == "stop":
                    return
                if kind == "join":
                    await self._handle_join(frame)
                elif kind == "leave":
                    self._handle_leave(frame)
                elif kind == "peer_update":
                    self._handle_peer_update(frame)
                # Unknown kinds are ignored (forward compatibility).
        finally:
            heartbeats.cancel()

    def _stop_injection(self) -> None:
        for generator in self.traffic:
            generator.stop()
        if self.session_tier is not None:
            self.session_tier.stop()

    async def _heartbeats(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                await self._send(
                    {
                        "kind": "heartbeat",
                        "shard": self.shard_id,
                        "now": self.scheduler.now if self.scheduler else 0.0,
                    }
                )
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            return

    async def _send(self, body: Dict[str, Any]) -> None:
        await write_frame(self._writer, self._key, body)

    # ------------------------------------------------------------------
    # Dynamic membership
    # ------------------------------------------------------------------
    async def _handle_join(self, frame: Dict[str, Any]) -> None:
        record = MembershipRecord.from_dict(frame["record"])
        record = MembershipRecord(
            record.action,
            _node(record.node),
            record.seqno,
            tuple((_node(peer), weight) for peer, weight in record.links),
            record.signature,
        )
        hosting = int(frame.get("host_shard", -1)) == self.shard_id
        result = self.ledger.consider(record)
        if result is not MtmwUpdateResult.ACCEPTED:
            if hosting:
                await self._send(
                    {
                        "kind": "join_ack",
                        "shard": self.shard_id,
                        "node": record.node,
                        "ok": False,
                        "result": result.value,
                    }
                )
            return

        # Fold the new member into topology, PKI, and a successor MTMW —
        # identical on every shard, because all inputs are identical.
        new_topo = self.topology.copy()
        new_topo.add_node(record.node)
        for peer, weight in record.links:
            new_topo.add_edge(record.node, peer, weight)
        self.topology = new_topo
        self.pki.register(record.node)
        self.mtmw = self.mtmw.successor(new_topo, self.pki)

        address = frame.get("address")
        if address is not None:
            self.addresses[record.node] = (address[0], int(address[1]))

        # Local overlays adopt first, so are_neighbors checks pass when
        # anchor links attach below (adoption also floods the successor
        # MTMW over existing links — remote nodes converge both ways).
        for node_id, process in list(self.processes.items()):
            process.overlay.adopt_mtmw(self.mtmw)
        if self.directory is not None and record.node in self.addresses:
            self.directory.update(record.node, self.addresses[record.node])

        if hosting:
            await self._boot_joiner(record)
        elif record.node in self.addresses:
            # Wire the local halves of the joiner's anchor links.
            joiner_address = self.addresses[record.node]
            for peer, _weight in record.links:
                if peer in self.local_set:
                    process = self.processes[peer]
                    process.transport.register_peer(record.node, joiner_address)
                    self._wire_half(peer, record.node)

    async def _boot_joiner(self, record: MembershipRecord) -> None:
        """Boot the joining node in this shard and report its address."""
        node_id = record.node
        await self._boot_node(node_id, self.mtmw)
        process = self.processes[node_id]
        self.local_set.add(node_id)
        self.local_nodes.append(node_id)
        self.joined.append(node_id)
        address = process.address
        self.addresses[node_id] = address
        if self.directory is not None:
            self.directory.update(node_id, address)

        # Bootstrap discovery: resolve anchor addresses through the
        # shard's seed node over the UDP data plane (the address map is
        # the fallback if the lossy discovery exchange times out).
        seed_node = self.local_nodes[0]
        self._join_nonce += 1
        resolved: Dict[NodeId, Tuple[str, int]] = {}
        if seed_node != node_id and seed_node in self.addresses:
            try:
                resolved = await query_addresses(
                    process.transport,
                    seed_node,
                    self.addresses[seed_node],
                    tuple(peer for peer, _ in record.links),
                    nonce=record.seqno * 1000 + self._join_nonce,
                )
            except LiveRuntimeError:
                resolved = {}
        for peer, _weight in record.links:
            peer_address = resolved.get(peer, self.addresses.get(peer))
            if peer_address is None:
                self._record_error(
                    f"join: no address for anchor {peer!r}; link skipped"
                )
                continue
            process.transport.register_peer(peer, peer_address)
            endpoint = PorEndpoint(
                self.scheduler,
                node_id,
                peer,
                process.transport.send_channel(peer, coalesce=True),
                process.transport.receive_channel(peer),
                self.pki,
                config=self.config.overlay.por,
            )
            endpoint.establish_out_of_band()
            endpoint.attach_mac_counters(process.stats.metrics)
            process.overlay.attach_link(peer, endpoint)
            # Anchor peers hosted in this shard wire their halves now;
            # remote anchors wire theirs when the broadcast reaches them.
            if peer in self.local_set:
                self.processes[peer].transport.register_peer(node_id, address)
                self._wire_half(peer, node_id)
        process.overlay.start()
        if self.supervisor is not None:
            self.supervisor.adopt(node_id)
        if self.monitor is not None:
            self.monitor.watch(process.overlay)

        # The joiner immediately sources traffic: one priority and one
        # reliable flow aimed across the overlay (gated as post-join).
        others = [n for n in sorted(self.topology.nodes) if n != node_id]
        if others:
            self._launch_flow(
                node_id, others[len(others) // 2], Semantics.PRIORITY, True
            )
            self._launch_flow(
                node_id, others[len(others) // 3], Semantics.RELIABLE, True
            )
        await self._send(
            {
                "kind": "join_ack",
                "shard": self.shard_id,
                "node": node_id,
                "address": list(address),
                "ok": True,
            }
        )

    def _handle_leave(self, frame: Dict[str, Any]) -> None:
        record = MembershipRecord.from_dict(frame["record"])
        record = MembershipRecord(
            record.action,
            _node(record.node),
            record.seqno,
            (),
            record.signature,
        )
        if self.ledger.consider(record) is not MtmwUpdateResult.ACCEPTED:
            return
        node = record.node
        new_topo = Topology()
        for n in self.topology.nodes:
            if n != node:
                new_topo.add_node(n)
        for a, b in self.topology.edges():
            if node not in (a, b):
                new_topo.add_edge(a, b, self.topology.weight(a, b))
        self.topology = new_topo
        self.mtmw = self.mtmw.successor(new_topo, self.pki)
        # Flows touching the leaver stop everywhere: its own sources
        # drain out, and remote sources must not keep offering traffic
        # to a destination the successor MTMW no longer routes to.
        for generator, (source, dest, _sem) in zip(
            self.traffic, self._flow_specs
        ):
            if node in (source, dest):
                generator.stop()
        if node in self.local_set:
            # Drain discipline: traffic stopped above; let in-flight
            # messages land, then retire the node for good.
            self.departed.append(node)
            self.local_set.discard(node)
            self.scheduler.schedule(LEAVE_DRAIN_GRACE, self._retire, node)
        if self.directory is not None:
            self.directory.forget(node)
        self.addresses.pop(node, None)
        for node_id, process in self.processes.items():
            if node_id != node:
                process.overlay.adopt_mtmw(self.mtmw)

    def _retire(self, node: NodeId) -> None:
        if self.supervisor is not None:
            self.supervisor.retire(node)

    # ------------------------------------------------------------------
    # Cross-shard restart re-announcement
    # ------------------------------------------------------------------
    def announce_restart(self, node_id: NodeId, address: Any) -> None:
        address = (address[0], int(address[1]))
        self.addresses[node_id] = address
        if self.directory is not None:
            self.directory.update(node_id, address)
        # Reliable path: the coordinator relays a peer_update to every
        # other shard.
        asyncio.get_event_loop().create_task(
            self._send(
                {
                    "kind": "announce",
                    "shard": self.shard_id,
                    "node": node_id,
                    "address": list(address),
                }
            )
        )
        # Fast path: refresh the other shards' seed directories directly
        # over UDP (best-effort; a lost announce only delays discovery).
        process = self.processes.get(node_id)
        if process is None:
            return
        for shard, seed in self.seed_nodes.items():
            if shard == self.shard_id:
                continue
            seed_address = self.addresses.get(seed)
            if seed_address is not None:
                process.transport.sendto_address(
                    encode_datagram(
                        node_id,
                        seed,
                        AddrAnnounce(node_id, address[0], address[1]),
                    ),
                    seed_address,
                )

    def _handle_peer_update(self, frame: Dict[str, Any]) -> None:
        node = _node(frame["node"])
        address = (frame["address"][0], int(frame["address"][1]))
        self.addresses[node] = address
        if self.directory is not None:
            self.directory.update(node, address)
        for process in self.processes.values():
            try:
                process.transport.update_peer_address(node, address)
            except LiveRuntimeError:
                continue  # this node has no link to the restarted peer
            link = process.overlay.links.get(node)
            if link is not None:
                # Both ends must agree the link restarted (the restarting
                # shard reset its own half already).
                link.por.reset()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def shard_report(self) -> Dict[str, Any]:
        """This shard's JSON report (the coordinator aggregates these).

        Unlike :meth:`LiveDeployment.report`, delivery counts are *not*
        joined here — a flow's destination may live in another process —
        so flows carry only the send side; the coordinator joins them
        against every shard's per-node latency recorders.
        """
        flows = [
            {
                "source": source,
                "dest": dest,
                "semantics": semantics.value,
                "sent": generator.messages_sent,
                "post_join": meta["post_join"],
            }
            for generator, (source, dest, semantics), meta in zip(
                self.traffic, self._flow_specs, self._flow_meta
            )
        ]
        transport_totals = {
            "datagrams_received": 0,
            "bytes_received": 0,
            "decode_errors": 0,
            "misdirected": 0,
            "unknown_sender": 0,
            "encode_errors": 0,
            "dispatch_errors": 0,
            "send_errors": 0,
            "send_retries": 0,
            "send_drops": 0,
            "datagrams_drained": 0,
        }
        for process in self.processes.values():
            transport = process.transport
            for key in transport_totals:
                transport_totals[key] += getattr(transport, key)
        runtime_errors = list(self._runtime_errors)
        if self._errors_dropped:
            runtime_errors.append(
                f"... {self._errors_dropped} further runtime error(s) dropped"
            )
        chaos_summary = None
        if self.chaos_engine is not None:
            chaos_summary = self.chaos_engine.summary()
            chaos_summary["injector"] = self.injector.summary()
            chaos_summary["schedule_counts"] = self.chaos_schedule.counts()
        return {
            "shard": self.shard_id,
            "nodes": [n for n in sorted(self.local_nodes, key=str)],
            "joined": list(self.joined),
            "departed": list(self.departed),
            "wall_seconds": self.scheduler.now if self.scheduler else 0.0,
            "flows": flows,
            "per_node": {
                str(node_id): process.snapshot()
                for node_id, process in sorted(
                    self.processes.items(), key=lambda item: str(item[0])
                )
            },
            "transport": transport_totals,
            "runtime_errors": runtime_errors,
            "chaos": chaos_summary,
            "supervision": (
                self.supervisor.summary() if self.supervisor is not None else None
            ),
            "invariants": (
                self.monitor.summary() if self.monitor is not None else None
            ),
            "membership": self.ledger.summary(),
            "sessions": (
                self.session_tier.snapshot()
                if self.session_tier is not None
                else None
            ),
            "failed": self._failed,
        }


async def _worker(payload: Dict[str, Any]) -> None:
    key = control_key(int(payload["seed"]))
    reader, writer = await asyncio.open_connection(
        payload["control_host"], int(payload["control_port"])
    )
    deployment = ShardDeployment(payload, reader, writer)
    try:
        try:
            await deployment.start()
            await deployment.serve_cluster()
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            deployment._failed = True
            deployment._record_error(
                f"shard {deployment.shard_id}: {type(exc).__name__}: {exc}"
            )
        finally:
            await deployment.stop()
        try:
            await write_frame(
                writer,
                key,
                {
                    "kind": "report",
                    "shard": deployment.shard_id,
                    "report": deployment.shard_report(),
                },
            )
        except (ConnectionError, OSError):
            pass  # coordinator gone; exit code still tells the story
    finally:
        writer.close()


def worker_main(payload: Dict[str, Any]) -> None:
    """The ``multiprocessing`` spawn entry point for one shard."""
    asyncio.run(_worker(payload))
