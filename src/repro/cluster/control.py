"""The cluster control plane: authenticated, length-prefixed JSON frames.

Coordinator and shard workers talk over one TCP connection per shard.
Every frame is::

    u32 length | JSON bytes of {"mac": hex, "body": {...}}

where ``mac`` is HMAC-SHA256 of the canonical (sorted-keys, compact)
JSON encoding of ``body`` under the run's control key — derived
deterministically from the run seed, so every process computes the same
key without any exchange.  A frame with a bad MAC or malformed JSON
raises :class:`~repro.errors.LiveRuntimeError`; the control plane is a
trusted-coordinator channel, so authentication failure is fatal, not
droppable (unlike the UDP data plane, where bad input is routine).

Frame kinds (``body["kind"]``):

========== ============ ==========================================
kind       direction    payload
========== ============ ==========================================
hello      shard→coord  shard_id, addresses {node: [host, port]}
addr_map   coord→shard  addresses of *all* nodes
start      coord→shard  chaos schedule slice (or null)
heartbeat  shard→coord  shard_id, now, delivered count
join       coord→shard  signed membership record (+ address once known)
join_ack   shard→coord  joiner's bound address
leave      coord→shard  signed membership record
announce   shard→coord  node, new address after a supervised rebind
peer_update coord→shard node, new address (relayed announce)
stop       coord→shard  end of run; report requested
report     shard→coord  the shard's full report dict
========== ============ ==========================================
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac as _hmac
import json
import struct
from typing import Any, Dict

from repro.errors import LiveRuntimeError

#: Upper bound on one control frame (a 100-node shard report with full
#: per-node telemetry is ~1-2 MB; 32 MB leaves an order of magnitude).
MAX_FRAME = 32 * 1024 * 1024

_LEN = struct.Struct("!I")


def control_key(seed: int) -> bytes:
    """The run's shared control-plane HMAC key (pure function of seed)."""
    return hashlib.sha256(f"repro-cluster-control:{seed}".encode()).digest()


def _canonical(body: Dict[str, Any]) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def encode_frame(key: bytes, body: Dict[str, Any]) -> bytes:
    """One authenticated frame, ready for a stream write."""
    canonical = _canonical(body)
    mac = _hmac.new(key, canonical, hashlib.sha256).hexdigest()
    blob = json.dumps({"mac": mac, "body": body}, sort_keys=True).encode()
    if len(blob) > MAX_FRAME:
        raise LiveRuntimeError(f"control frame too large ({len(blob)} bytes)")
    return _LEN.pack(len(blob)) + blob


def decode_frame(key: bytes, blob: bytes) -> Dict[str, Any]:
    """Verify and unwrap one frame body; raises on forgery/malformation."""
    try:
        outer = json.loads(blob)
        mac = outer["mac"]
        body = outer["body"]
    except (ValueError, KeyError, TypeError) as exc:
        raise LiveRuntimeError(f"malformed control frame: {exc}") from None
    if not isinstance(body, dict) or not isinstance(mac, str):
        raise LiveRuntimeError("malformed control frame: bad shape")
    expected = _hmac.new(key, _canonical(body), hashlib.sha256).hexdigest()
    if not _hmac.compare_digest(expected, mac):
        raise LiveRuntimeError("control frame failed authentication")
    return body


async def write_frame(
    writer: asyncio.StreamWriter, key: bytes, body: Dict[str, Any]
) -> None:
    """Send one authenticated frame and drain the stream."""
    writer.write(encode_frame(key, body))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader, key: bytes) -> Dict[str, Any]:
    """Read, verify, and unwrap the next frame (raises at EOF)."""
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise LiveRuntimeError(f"control frame claims {length} bytes")
    blob = await reader.readexactly(length)
    return decode_frame(key, blob)
