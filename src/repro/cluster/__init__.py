"""Multi-process sharded live runtime (``repro.cluster``).

Shards a live overlay across real OS processes: a coordinator partitions
the topology into :class:`~repro.cluster.spec.ShardSpec` slices, spawns
one worker process per shard (each running its own asyncio loop of
:class:`~repro.runtime.live.NodeProcess` es over real UDP sockets), and
drives the run over an authenticated TCP control plane — address
exchange, chaos-schedule distribution, heartbeats, signed dynamic
membership (JOIN/LEAVE), restart re-announcements, and per-shard report
aggregation.  See DESIGN.md §14.
"""

from repro.cluster.deployment import ClusterDeployment, ClusterReport, run_cluster
from repro.cluster.membership import (
    MembershipLedger,
    MembershipRecord,
    membership_key,
)
from repro.cluster.spec import ClusterConfig, ShardSpec, partition_topology

__all__ = [
    "ClusterConfig",
    "ClusterDeployment",
    "ClusterReport",
    "MembershipLedger",
    "MembershipRecord",
    "ShardSpec",
    "membership_key",
    "partition_topology",
    "run_cluster",
]
