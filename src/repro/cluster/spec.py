"""Cluster run configuration and topology sharding.

A :class:`ClusterConfig` describes one multi-process run; the coordinator
partitions the (deterministically generated) topology into
:class:`ShardSpec` slices — one per worker process — with
:func:`partition_topology`.  Workers never see these objects: everything
a worker needs crosses the process boundary as a plain dict of
primitives (see :mod:`repro.cluster.worker`), so the spawn pickle stays
trivial and version-proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.live import CHAOS_PRESETS
from repro.runtime.supervision import SupervisionConfig
from repro.topology.graph import NodeId, Topology


@dataclass(frozen=True)
class ShardSpec:
    """One worker process's slice of the overlay: which nodes it hosts."""

    shard_id: int
    nodes: Tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigurationError("shard_id must be >= 0")
        if not self.nodes:
            raise ConfigurationError("a shard must host at least one node")

    @property
    def seed_node(self) -> NodeId:
        """The shard's bootstrap seed node (answers discovery queries)."""
        return self.nodes[0]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one sharded multi-process run.

    Mirrors :class:`~repro.runtime.live.LiveConfig` where the semantics
    are shared (duration/drain windows, chaos presets, delivery gating);
    adds the sharding, generator, and membership knobs.
    """

    nodes: int = 24
    shards: int = 4
    duration: float = 8.0
    seed: int = 0
    rate_msgs_per_sec: float = 10.0
    size_bytes: int = 200
    host: str = "127.0.0.1"
    drain: float = 2.0
    #: k-disjoint-paths dissemination (flooding is quadratic in fanout
    #: and impractical at 100+ nodes; pass 0 to force flooding anyway).
    kpaths: int = 2
    #: Large-topology generator knobs (circulant degree + chord density);
    #: used when ``nodes`` exceeds the chordal-ring lab sizes.
    degree: int = 4
    chord_fraction: float = 0.15
    chaos_preset: Optional[str] = None
    chaos_intensity: float = 1.0
    #: Source every Nth flow of the global flow plan (traffic thinning:
    #: a 100+-node overlay on a small host cannot sustain one CBR flow
    #: per node, and an overloaded event loop mimics packet loss).
    flow_stride: int = 1
    #: Signed mid-run membership events to drive (join first, then leave).
    joins: int = 1
    leaves: int = 1
    #: Tier-wide client-session request rate (requests/second across the
    #: whole cluster).  When positive, every shard runs a
    #: :class:`~repro.clients.session.SessionTier` slice homed on its
    #: local nodes (destinations span the full overlay, so requests and
    #: acks cross shard boundaries); 0 disables the session workload.
    session_rate: float = 0.0
    supervision: SupervisionConfig = field(default_factory=SupervisionConfig)
    monitor_invariants: bool = True
    #: Control-plane patience: worker boot/report deadlines and the
    #: heartbeat cadence shards report on.
    ready_timeout: float = 30.0
    report_timeout: float = 20.0
    heartbeat_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.nodes < 4:
            raise ConfigurationError("a cluster needs at least 4 nodes")
        if self.shards < 2:
            raise ConfigurationError("a cluster needs at least 2 shards")
        if self.shards > self.nodes:
            raise ConfigurationError("more shards than nodes")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.rate_msgs_per_sec <= 0:
            raise ConfigurationError("rate must be positive")
        if self.size_bytes < 1:
            raise ConfigurationError("size_bytes must be >= 1")
        if self.kpaths < 0:
            raise ConfigurationError("kpaths must be >= 0")
        if self.flow_stride < 1:
            raise ConfigurationError("flow_stride must be >= 1")
        if self.chaos_preset is not None and self.chaos_preset not in CHAOS_PRESETS:
            raise ConfigurationError(
                f"unknown chaos preset {self.chaos_preset!r} "
                f"(known: {', '.join(sorted(CHAOS_PRESETS))})"
            )
        if self.chaos_intensity <= 0:
            raise ConfigurationError("chaos_intensity must be positive")
        if self.joins < 0 or self.leaves < 0:
            raise ConfigurationError("joins/leaves must be >= 0")
        if self.session_rate < 0:
            raise ConfigurationError("session_rate must be >= 0")
        for name in ("ready_timeout", "report_timeout", "heartbeat_interval"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def inject_seconds(self) -> float:
        """Traffic-offer window before the drain (LiveConfig semantics)."""
        return max(self.duration - min(self.drain, 0.4 * self.duration), 0.1)


def partition_topology(topology: Topology, shards: int) -> List[ShardSpec]:
    """Contiguous slices of the sorted node list, one per shard.

    Contiguity matters for generated overlays: the circulant core of
    :func:`repro.topology.generators.large_overlay` links ring
    neighbors, so contiguous slices keep most edges shard-internal and
    only the slice boundaries (plus chords) cross processes.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    nodes = sorted(topology.nodes, key=str)
    if shards > len(nodes):
        raise ConfigurationError(
            f"cannot split {len(nodes)} nodes into {shards} shards"
        )
    base, extra = divmod(len(nodes), shards)
    specs: List[ShardSpec] = []
    at = 0
    for shard_id in range(shards):
        size = base + (1 if shard_id < extra else 0)
        specs.append(ShardSpec(shard_id, tuple(nodes[at:at + size])))
        at += size
    return specs
