"""Chaos fault injection and invariant monitoring.

Declarative, seeded, shrinkable fault schedules (:mod:`repro.faults.
schedule`), an engine that applies them to a live overlay network
(:mod:`repro.faults.chaos`), and continuously-running end-to-end safety
checks (:mod:`repro.faults.invariants`).
"""

from repro.faults.chaos import ChaosEngine
from repro.faults.invariants import InvariantMonitor, Violation
from repro.faults.schedule import FAULT_KINDS, ChaosSpec, Fault, FaultSchedule

__all__ = [
    "FAULT_KINDS",
    "ChaosEngine",
    "ChaosSpec",
    "Fault",
    "FaultSchedule",
    "InvariantMonitor",
    "Violation",
]
