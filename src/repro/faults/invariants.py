"""Continuously-running safety checks for chaos runs.

The :class:`InvariantMonitor` watches a live :class:`~repro.overlay.
network.OverlayNetwork` while a chaos schedule (or a Turret campaign, or
any other adversary) executes, and records a violation whenever one of the
paper's end-to-end guarantees is broken:

* **No duplicate delivery** — a message uid is delivered to an
  application at most once per destination incarnation (a crash loses the
  destination's soft state, so its dedup horizon legitimately resets).
* **Per-flow ordering** — Reliable Messaging delivers each flow's
  sequence numbers in strictly increasing order (resetting when either
  endpoint crashes, which restarts the flow).
* **Quarantine consistency** — a node never considers a link it has
  itself quarantined as usable for routing.
* **Priority-fairness floor** (opt-in) — a designated priority flow keeps
  at least a minimum goodput over a sliding window, with a grace period
  after either endpoint crashes.

Checks are event-driven where possible (delivery taps) and periodic where
not (routing-table consistency).  Violations are recorded, capped, and
never raise inside the simulation — a chaos soak should finish and then
report, not die mid-run.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.messaging.message import Message, Semantics
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode

#: Stop recording after this many violations (the run is already broken;
#: unbounded lists just drown the report).
MAX_VIOLATIONS = 100


class Violation:
    """One observed invariant breach."""

    __slots__ = ("time", "invariant", "detail")

    def __init__(self, time: float, invariant: str, detail: str):
        self.time = time
        self.invariant = invariant
        self.detail = detail

    def __repr__(self) -> str:
        return f"[{self.time:.3f}s] {self.invariant}: {self.detail}"


class _FairnessProbe:
    """Sliding-window goodput floor for one priority flow."""

    __slots__ = ("source", "dest", "min_bps", "window", "grace", "samples", "quiet_until")

    def __init__(self, source, dest, min_bps: float, window: float, grace: float):
        self.source = source
        self.dest = dest
        self.min_bps = min_bps
        self.window = window
        self.grace = grace
        self.samples: List[Tuple[float, int]] = []  # (time, bytes)
        self.quiet_until = 0.0  # warm-up / post-crash grace deadline

    def record(self, now: float, size: int) -> None:
        self.samples.append((now, size))

    def rate(self, now: float) -> float:
        cutoff = now - self.window
        self.samples = [(t, s) for t, s in self.samples if t >= cutoff]
        return sum(s for _, s in self.samples) * 8.0 / self.window


class InvariantMonitor:
    """Arms delivery taps and periodic checks on every node of a network."""

    def __init__(self, network: OverlayNetwork, check_interval: float = 1.0):
        self.network = network
        self.check_interval = check_interval
        self.violations: List[Violation] = []
        #: Violation counts attributed to the node(s) involved — the
        #: adaptive defense folds these into its compromise beliefs.
        self.violations_by_node: Dict[object, int] = {}
        #: An armed :class:`~repro.resilience.adaptive.AdaptiveDefense`,
        #: if one registered itself; its global downtime budget is then
        #: checked as an invariant every sweep.
        self.defense = None
        self.deliveries_checked = 0
        self.routing_checks = 0
        # Per-destination set of delivered uids (reset on dest crash).
        self._seen: Dict[object, Set[Tuple]] = {}
        # Per-destination, per-flow last delivered reliable seq.
        self._flow_seq: Dict[object, Dict[Tuple, int]] = {}
        self._fairness: List[_FairnessProbe] = []
        self._armed = False
        self._orig_crash = None
        self._orig_recover = None

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def arm(self) -> None:
        """Attach to every node and start the periodic checker.  Call once
        before running the simulation."""
        if self._armed:
            return
        self._armed = True
        for node in self.network.nodes.values():
            node.delivery_observers.append(self._on_delivery)
        # Learn of state loss by wrapping the network's crash/recover, so
        # any driver (ChaosEngine, tests, Turret) is covered.
        self._orig_crash = self.network.crash
        self._orig_recover = self.network.recover

        def crash(node_id):
            self._orig_crash(node_id)
            self._note_crash(node_id)

        def recover(node_id):
            self._orig_recover(node_id)
            self._note_recover(node_id)

        self.network.crash = crash  # type: ignore[method-assign]
        self.network.recover = recover  # type: ignore[method-assign]
        self.network.sim.schedule(self.check_interval, self._periodic)

    def watch(self, node) -> None:
        """Attach delivery checking to a node added after :meth:`arm`
        (dynamic membership: a mid-run JOIN booted it).  Idempotent."""
        if self._armed and self._on_delivery not in node.delivery_observers:
            node.delivery_observers.append(self._on_delivery)

    def attach_defense(self, defense) -> None:
        """Register an adaptive defense controller: every periodic sweep
        then asserts its simultaneous-downtime budget as an invariant
        (``defense-budget``)."""
        self.defense = defense

    def arm_fairness(
        self,
        source,
        dest,
        min_bps: float,
        window: float = 5.0,
        grace: float = 10.0,
    ) -> None:
        """Opt-in: require the priority flow ``source -> dest`` to keep at
        least ``min_bps`` of delivered goodput over a sliding ``window``,
        excused for ``grace`` seconds after either endpoint crashes (and
        for one initial warm-up window)."""
        probe = _FairnessProbe(source, dest, min_bps, window, grace)
        probe.quiet_until = self.network.sim.now + window + grace
        self._fairness.append(probe)

    # ------------------------------------------------------------------
    # Event-driven checks
    # ------------------------------------------------------------------
    def _on_delivery(self, message: Message, node: OverlayNode) -> None:
        self.deliveries_checked += 1
        now = self.network.sim.now
        dest = node.node_id
        seen = self._seen.setdefault(dest, set())
        if message.uid in seen:
            self._record(
                now, "no-duplicate-delivery",
                f"{message!r} delivered twice at {dest!r}",
                nodes=(message.source, dest),
            )
        seen.add(message.uid)
        if message.semantics is Semantics.RELIABLE:
            flows = self._flow_seq.setdefault(dest, {})
            last = flows.get(message.flow, 0)
            if message.seq <= last:
                self._record(
                    now, "per-flow-ordering",
                    f"flow {message.flow} delivered seq {message.seq} "
                    f"after seq {last} at {dest!r}",
                    nodes=(message.source, dest),
                )
            flows[message.flow] = max(last, message.seq)
        for probe in self._fairness:
            if (
                message.semantics is Semantics.PRIORITY
                and message.source == probe.source
                and dest == probe.dest
            ):
                probe.record(now, message.size_bytes)

    def _note_crash(self, node_id) -> None:
        # State loss: the destination's dedup horizon and reliable flow
        # positions legitimately reset, as do flows it sources.
        self._seen.pop(node_id, None)
        self._flow_seq.pop(node_id, None)
        for flows in self._flow_seq.values():
            for flow in [f for f in flows if node_id in f]:
                del flows[flow]
        now = self.network.sim.now
        for probe in self._fairness:
            if node_id in (probe.source, probe.dest):
                probe.quiet_until = max(
                    probe.quiet_until, now + probe.grace + probe.window
                )

    def _note_recover(self, node_id) -> None:
        now = self.network.sim.now
        for probe in self._fairness:
            if node_id in (probe.source, probe.dest):
                probe.quiet_until = max(
                    probe.quiet_until, now + probe.grace + probe.window
                )

    # ------------------------------------------------------------------
    # Periodic checks
    # ------------------------------------------------------------------
    def _periodic(self) -> None:
        self.routing_checks += 1
        now = self.network.sim.now
        for node in self.network.nodes.values():
            if node.crashed:
                continue
            for neighbor, link in node.links.items():
                if link.monitor_up:
                    continue
                if not node.mtmw.are_neighbors(node.node_id, neighbor):
                    continue
                if node.routing.is_link_usable(node.node_id, neighbor):
                    self._record(
                        now, "no-routing-via-quarantined",
                        f"{node.node_id!r} routes via quarantined link "
                        f"to {neighbor!r}",
                        nodes=(node.node_id,),
                    )
        if self.defense is not None:
            concurrent = self.defense.concurrent_down()
            limit = self.defense.budget.max_down
            if concurrent > limit:
                self._record(
                    now, "defense-budget",
                    f"defense holds {concurrent} nodes down "
                    f"(budget {limit})",
                )
        for probe in self._fairness:
            if now < probe.quiet_until:
                continue
            source_node = self.network.nodes.get(probe.source)
            dest_node = self.network.nodes.get(probe.dest)
            if source_node is None or dest_node is None:
                continue
            if source_node.crashed or dest_node.crashed:
                continue
            rate = probe.rate(now)
            if rate < probe.min_bps:
                self._record(
                    now, "priority-fairness-floor",
                    f"flow {probe.source!r}->{probe.dest!r} at "
                    f"{rate:.0f} bps < floor {probe.min_bps:.0f} bps",
                    nodes=(probe.source, probe.dest),
                )
        self.network.sim.schedule(self.check_interval, self._periodic)

    # ------------------------------------------------------------------
    def _record(
        self, now: float, invariant: str, detail: str, nodes: Tuple = ()
    ) -> None:
        for node_id in set(nodes):
            self.violations_by_node[node_id] = (
                self.violations_by_node.get(node_id, 0) + 1
            )
        if len(self.violations) < MAX_VIOLATIONS:
            self.violations.append(Violation(now, invariant, detail))

    def report(self) -> str:
        """Human-readable outcome summary."""
        lines = [
            f"invariant monitor: {self.deliveries_checked} deliveries, "
            f"{self.routing_checks} routing sweeps, "
            f"{len(self.violations)} violations",
        ]
        lines.extend(repr(v) for v in self.violations)
        return "\n".join(lines)

    def summary(self) -> dict:
        """Violation counts per invariant plus totals, for reporting."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return {
            "violations": len(self.violations),
            "by_invariant": counts,
            "by_node": {
                str(n): c
                for n, c in sorted(
                    self.violations_by_node.items(), key=lambda kv: str(kv[0])
                )
            },
            "deliveries_checked": self.deliveries_checked,
            "routing_checks": self.routing_checks,
        }
