"""Declarative, reproducible chaos fault schedules.

A :class:`FaultSchedule` is a plain, sorted tuple of :class:`Fault`
records — *what* goes wrong, *when*, for *how long*, against *which*
target — generated ahead of time from a :class:`ChaosSpec` and a seed.
Separating schedule generation from application buys three properties the
ad-hoc failure scripts scattered through the benchmarks never had:

* **Reproducibility** — every fault family draws from its own named RNG
  substream (via :class:`repro.sim.rng.RngRegistry`), so the same seed
  over the same topology produces a byte-identical schedule regardless of
  what else changed, and two runs of the same schedule produce identical
  simulations.
* **Shrinkability** — a failing chaos run can be minimized by re-running
  with :meth:`FaultSchedule.without` / :meth:`FaultSchedule.between`
  subsets until the smallest schedule that still reproduces the failure
  remains.
* **Composability** — schedules are just sorted fault tuples; merging two
  of them (:meth:`FaultSchedule.merge`) is well-defined.

The engine that applies a schedule to a live network lives in
:mod:`repro.faults.chaos`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry
from repro.topology.graph import Topology

#: Every fault kind a schedule may contain.
FAULT_KINDS = ("flap", "gray", "burst", "crash", "churn", "partition", "noise")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: a kind, a start time, a duration, a target.

    ``target`` is a tuple of node ids — ``(a, b)`` for link faults,
    ``(n,)`` for node faults, and one whole partition side for
    ``partition`` faults.  ``params`` holds kind-specific magnitudes as a
    sorted tuple of ``(name, value)`` pairs so the record hashes and
    compares canonically.
    """

    start: float
    kind: str
    target: Tuple
    duration: float
    params: Tuple[Tuple[str, float], ...] = ()

    @property
    def end(self) -> float:
        return self.start + self.duration

    def param(self, name: str, default: float = 0.0) -> float:
        """Look up one parameter by name (``default`` when absent)."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        """Canonical single-line rendering (used for byte-identity checks)."""
        target = ",".join(str(t) for t in self.target)
        params = " ".join(f"{k}={v:.6f}" for k, v in self.params)
        line = f"{self.start:012.6f} +{self.duration:09.6f} {self.kind:<9} [{target}]"
        return f"{line} {params}".rstrip()

    def to_dict(self) -> dict:
        """JSON form (cluster control plane ships schedules to shards)."""
        return {
            "start": self.start,
            "kind": self.kind,
            "target": list(self.target),
            "duration": self.duration,
            "params": [[k, v] for k, v in self.params],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        """Inverse of :meth:`to_dict`."""
        return cls(
            start=float(data["start"]),
            kind=str(data["kind"]),
            target=tuple(data["target"]),
            duration=float(data["duration"]),
            params=tuple((str(k), float(v)) for k, v in data.get("params", [])),
        )


@dataclass(frozen=True)
class ChaosSpec:
    """Intensity knobs for schedule generation.

    Every ``*_rate`` is a Poisson arrival rate in events per second over
    the whole network; the paired range tuples bound per-event magnitudes
    drawn uniformly.  A rate of zero disables that fault family.
    """

    duration: float
    # Link flaps: take a random link down, restore it after a downtime.
    flap_rate: float = 0.0
    flap_downtime: Tuple[float, float] = (0.5, 8.0)
    # Gray failures: silent extra loss/delay on one link, link stays "up".
    gray_rate: float = 0.0
    gray_duration: Tuple[float, float] = (5.0, 30.0)
    gray_extra_loss: Tuple[float, float] = (0.05, 0.6)
    gray_extra_delay: Tuple[float, float] = (0.0, 0.2)
    # Correlated loss bursts: heavy loss on *all* links of one node.
    burst_rate: float = 0.0
    burst_duration: Tuple[float, float] = (0.5, 3.0)
    burst_extra_loss: Tuple[float, float] = (0.5, 0.95)
    # Crash/restart with state loss.
    crash_rate: float = 0.0
    crash_downtime: Tuple[float, float] = (2.0, 15.0)
    # Churn: rapid crash/restart cycles (short downtime).
    churn_rate: float = 0.0
    churn_downtime: Tuple[float, float] = (0.2, 1.5)
    # Network partitions: cut a random bipartition, heal it later.
    partition_rate: float = 0.0
    partition_duration: Tuple[float, float] = (2.0, 10.0)
    # Wire noise: composed datagram-level impairment on one link — loss,
    # duplication, reordering, byte corruption, and extra delay.  The live
    # runtime applies all five to real datagrams; the simulator applies
    # the loss/corruption/delay projection (its channels are FIFO
    # by-reference pipes, so duplication/reordering are modeled above it).
    noise_rate: float = 0.0
    noise_duration: Tuple[float, float] = (2.0, 15.0)
    noise_loss: Tuple[float, float] = (0.02, 0.3)
    noise_dup: Tuple[float, float] = (0.02, 0.25)
    noise_reorder: Tuple[float, float] = (0.05, 0.4)
    noise_corrupt: Tuple[float, float] = (0.0, 0.15)
    noise_delay: Tuple[float, float] = (0.0, 0.05)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        for name in (
            "flap_rate", "gray_rate", "burst_rate",
            "crash_rate", "churn_rate", "partition_rate", "noise_rate",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        for name in (
            "flap_downtime", "gray_duration", "gray_extra_loss",
            "gray_extra_delay", "burst_duration", "burst_extra_loss",
            "crash_downtime", "churn_downtime", "partition_duration",
            "noise_duration", "noise_loss", "noise_dup", "noise_reorder",
            "noise_corrupt", "noise_delay",
        ):
            lo, hi = getattr(self, name)
            if not 0 <= lo <= hi:
                raise ConfigurationError(f"{name} must satisfy 0 <= lo <= hi")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def link_level(cls, duration: float, intensity: float = 1.0) -> "ChaosSpec":
        """Link-layer chaos only (no node state loss): flaps, gray
        failures, and loss bursts.  Safe to combine with invariant
        checkers that assume nodes keep their soft state (e.g. the Turret
        exactly-once checks)."""
        return cls(
            duration=duration,
            flap_rate=0.02 * intensity,
            gray_rate=0.015 * intensity,
            burst_rate=0.01 * intensity,
        )

    @classmethod
    def full(cls, duration: float, intensity: float = 1.0) -> "ChaosSpec":
        """Everything at once: link chaos plus crashes, churn, and
        partitions — the hostile-underlay soak configuration."""
        return cls(
            duration=duration,
            flap_rate=0.02 * intensity,
            gray_rate=0.015 * intensity,
            burst_rate=0.01 * intensity,
            crash_rate=0.008 * intensity,
            churn_rate=0.005 * intensity,
            partition_rate=0.002 * intensity,
        )

    @classmethod
    def live_soak(cls, duration: float, intensity: float = 1.0) -> "ChaosSpec":
        """Wall-clock chaos for the live runtime's soak gate: frequent
        wire noise (loss + duplication + reordering + corruption + delay
        on real datagrams), plus short crashes and partitions, scaled for
        runs measured in seconds rather than minutes."""
        return cls(
            duration=duration,
            noise_rate=0.5 * intensity,
            noise_duration=(1.0, 3.0),
            noise_loss=(0.05, 0.2),
            noise_dup=(0.05, 0.2),
            noise_reorder=(0.1, 0.3),
            noise_corrupt=(0.0, 0.1),
            noise_delay=(0.0, 0.03),
            crash_rate=0.06 * intensity,
            crash_downtime=(0.5, 1.5),
            partition_rate=0.04 * intensity,
            partition_duration=(0.3, 1.0),
        )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, topology: Topology, seed: int = 0) -> "FaultSchedule":
        """Draw a schedule over ``topology`` from seeded substreams.

        Each fault family uses its own named stream, so enabling one
        family never perturbs the draws of another: the crash schedule at
        seed 7 is the same whether or not flaps are also enabled.
        """
        rngs = RngRegistry(seed)
        nodes = sorted(topology.nodes, key=str)
        edges = sorted(topology.edges(), key=lambda e: (str(e[0]), str(e[1])))
        faults: List[Fault] = []

        def arrivals(kind: str, rate: float) -> Iterator[Tuple[float, object]]:
            if rate <= 0 or (kind in ("flap", "gray", "noise") and not edges):
                return
            rng = rngs.stream(f"chaos:{kind}")
            t = rng.expovariate(rate)
            while t < self.duration:
                yield t, rng
                t += rng.expovariate(rate)

        def uniform(rng, bounds: Tuple[float, float]) -> float:
            lo, hi = bounds
            return lo if hi <= lo else rng.uniform(lo, hi)

        for t, rng in arrivals("flap", self.flap_rate):
            a, b = rng.choice(edges)
            faults.append(Fault(t, "flap", (a, b), uniform(rng, self.flap_downtime)))
        for t, rng in arrivals("gray", self.gray_rate):
            a, b = rng.choice(edges)
            faults.append(Fault(
                t, "gray", (a, b), uniform(rng, self.gray_duration),
                params=(
                    ("extra_delay", uniform(rng, self.gray_extra_delay)),
                    ("extra_loss", uniform(rng, self.gray_extra_loss)),
                ),
            ))
        for t, rng in arrivals("burst", self.burst_rate):
            node = rng.choice(nodes)
            faults.append(Fault(
                t, "burst", (node,), uniform(rng, self.burst_duration),
                params=(("extra_loss", uniform(rng, self.burst_extra_loss)),),
            ))
        for t, rng in arrivals("crash", self.crash_rate):
            node = rng.choice(nodes)
            faults.append(Fault(t, "crash", (node,), uniform(rng, self.crash_downtime)))
        for t, rng in arrivals("churn", self.churn_rate):
            node = rng.choice(nodes)
            faults.append(Fault(t, "churn", (node,), uniform(rng, self.churn_downtime)))
        for t, rng in arrivals("partition", self.partition_rate):
            side_size = rng.randrange(1, max(2, len(nodes) // 2 + 1))
            side = tuple(sorted(rng.sample(nodes, side_size), key=str))
            faults.append(Fault(
                t, "partition", side, uniform(rng, self.partition_duration)
            ))
        for t, rng in arrivals("noise", self.noise_rate):
            a, b = rng.choice(edges)
            faults.append(Fault(
                t, "noise", (a, b), uniform(rng, self.noise_duration),
                params=(
                    ("corrupt", uniform(rng, self.noise_corrupt)),
                    ("dup", uniform(rng, self.noise_dup)),
                    ("extra_delay", uniform(rng, self.noise_delay)),
                    ("extra_loss", uniform(rng, self.noise_loss)),
                    ("reorder", uniform(rng, self.noise_reorder)),
                ),
            ))

        return FaultSchedule(seed=seed, duration=self.duration, faults=tuple(
            sorted(faults, key=lambda f: (f.start, f.kind, tuple(map(str, f.target))))
        ))


@dataclass(frozen=True)
class FaultSchedule:
    """A sorted, immutable sequence of faults plus its provenance."""

    seed: int
    duration: float
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def describe(self) -> str:
        """Canonical multi-line rendering; byte-identical for equal
        (spec, topology, seed) triples."""
        header = f"# chaos schedule seed={self.seed} duration={self.duration:.6f}s " \
                 f"faults={len(self.faults)}"
        return "\n".join([header, *(f.describe() for f in self.faults)])

    # ------------------------------------------------------------------
    # Shrinking / composition
    # ------------------------------------------------------------------
    def without(self, index: int) -> "FaultSchedule":
        """A copy with the ``index``-th fault removed (for shrinking)."""
        kept = self.faults[:index] + self.faults[index + 1:]
        return FaultSchedule(self.seed, self.duration, kept)

    def between(self, t0: float, t1: float) -> "FaultSchedule":
        """Only the faults starting inside ``[t0, t1)`` (for shrinking)."""
        kept = tuple(f for f in self.faults if t0 <= f.start < t1)
        return FaultSchedule(self.seed, self.duration, kept)

    def only(self, *kinds: str) -> "FaultSchedule":
        """Only the faults of the given kinds (for shrinking)."""
        kept = tuple(f for f in self.faults if f.kind in kinds)
        return FaultSchedule(self.seed, self.duration, kept)

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """Union of two schedules, re-sorted; keeps this schedule's seed."""
        merged = tuple(sorted(
            self.faults + other.faults,
            key=lambda f: (f.start, f.kind, tuple(map(str, f.target))),
        ))
        return FaultSchedule(
            self.seed, max(self.duration, other.duration), merged
        )

    def restricted_to(self, nodes) -> "FaultSchedule":
        """The slice of this schedule a cluster shard must apply.

        ``nodes`` is the set of node ids the shard hosts.  Link faults
        (``flap``/``gray``/``noise``) are kept when *either* endpoint is
        local — each shard impairs its own send sides of the link, and
        the two shards owning a cross-shard link each apply their half.
        Node faults (``burst``/``crash``/``churn``) are kept only for
        local nodes.  ``partition`` faults are kept everywhere: a
        partition is defined by its bipartition over the *full*
        topology, and each shard's injector downs only the cut-edge send
        sides it owns.
        """
        local = set(nodes)
        kept = []
        for fault in self.faults:
            if fault.kind in ("flap", "gray", "noise"):
                if fault.target[0] in local or fault.target[1] in local:
                    kept.append(fault)
            elif fault.kind == "partition":
                kept.append(fault)
            elif fault.target[0] in local:
                kept.append(fault)
        return FaultSchedule(self.seed, self.duration, tuple(kept))

    def to_dict(self) -> dict:
        """JSON form (cluster control plane ships schedules to shards)."""
        return {
            "seed": self.seed,
            "duration": self.duration,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data["seed"]),
            duration=float(data["duration"]),
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", [])),
        )

    def counts(self) -> dict:
        """Number of scheduled faults per kind (zero-filled)."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for fault in self.faults:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return out
