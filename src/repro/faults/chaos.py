"""Apply a :class:`~repro.faults.schedule.FaultSchedule` to a live network.

The :class:`ChaosEngine` is a pure *driver*: it owns no randomness (all
draws happened at schedule-generation time) and simply arms simulator
events that begin and end each fault.  Because concurrent faults can
overlap on the same link or node — a flap inside a partition, a gray
failure during a loss burst — the engine reference-counts link downs and
composes impairments, so healing one fault never un-does another that is
still active.

Interplay with crash/recovery: :meth:`OverlayNetwork.recover` restores all
of a node's channels, which would silently heal any link fault still in
progress on an adjacent edge; the engine re-fails those edges after every
recovery.  Channel impairments live on the :class:`~repro.sim.channel.
Channel` object itself and survive take-down/restore, so gray failures
need no such repair.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import ConfigurationError
from repro.faults.schedule import FAULT_KINDS, Fault, FaultSchedule
from repro.overlay.network import OverlayNetwork

#: Composition cap: stacked loss impairments never exceed this probability,
#: keeping a "gray" link distinguishable from a dead one.
MAX_COMPOSED_LOSS = 0.95


def _edge(a, b) -> Tuple:
    """Canonical undirected edge key."""
    return tuple(sorted((a, b), key=str))


class ChaosEngine:
    """Arms a fault schedule against an :class:`OverlayNetwork`.

    Usage::

        schedule = ChaosSpec.full(duration=600).generate(topology, seed=7)
        engine = ChaosEngine(network, schedule)
        engine.arm()
        network.run(schedule.duration)
        print(engine.summary())

    ``applied`` records every action actually taken as ``(time, text)``
    pairs — the runtime counterpart of ``schedule.describe()`` — and is
    deterministic for a given (network seed, schedule) pair.
    """

    def __init__(self, network: OverlayNetwork, schedule: FaultSchedule):
        self.network = network
        self.schedule = schedule
        self._armed = False
        # Refcounts so overlapping faults compose instead of clobbering.
        self._link_refs: Dict[Tuple, int] = {}
        self._node_refs: Dict[object, int] = {}
        # Active impairments per edge: {edge: {fault-key:
        # (loss, dup, reorder, corrupt, delay)}}.
        self._impairments: Dict[Tuple, Dict[int, Tuple[float, ...]]] = {}
        # Observability.
        self.applied: List[Tuple[float, str]] = []
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.skipped = 0
        # Every node that lost state or connectivity wholesale (crash,
        # churn, partition side): the set of "non-correct" nodes a
        # delivery gate should exclude flows to/from.
        self.faulted_nodes: Set = set()

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule begin/end events for every fault.  Call once, before
        running the simulation."""
        if self._armed:
            raise ConfigurationError("ChaosEngine.arm() called twice")
        self._armed = True
        sim = self.network.sim
        topology = self.network.topology
        for index, fault in enumerate(self.schedule):
            if fault.kind in ("flap", "gray", "noise"):
                a, b = fault.target
                if not topology.has_edge(a, b):
                    self.skipped += 1
                    continue
            elif fault.kind == "partition":
                if not any(topology.has_node(n) for n in fault.target):
                    self.skipped += 1
                    continue
            else:
                if not topology.has_node(fault.target[0]):
                    self.skipped += 1
                    continue
            sim.schedule_at(sim.now + fault.start, self._begin, fault, index)
            sim.schedule_at(sim.now + fault.end, self._finish, fault, index)

    # ------------------------------------------------------------------
    # Fault lifecycle
    # ------------------------------------------------------------------
    def _begin(self, fault: Fault, index: int) -> None:
        self.counts[fault.kind] += 1
        self.network.stats.counter(f"chaos.fault.{fault.kind}").add()
        if fault.kind == "flap":
            self._fail_edge(_edge(*fault.target))
        elif fault.kind == "gray":
            self._impair(
                _edge(*fault.target), index,
                loss=fault.param("extra_loss"),
                delay=fault.param("extra_delay"),
            )
        elif fault.kind == "noise":
            self._impair(
                _edge(*fault.target), index,
                loss=fault.param("extra_loss"),
                dup=fault.param("dup"),
                reorder=fault.param("reorder"),
                corrupt=fault.param("corrupt"),
                delay=fault.param("extra_delay"),
            )
        elif fault.kind == "burst":
            node = fault.target[0]
            for neighbor in self.network.topology.neighbors(node):
                self._impair(
                    _edge(node, neighbor), index,
                    loss=fault.param("extra_loss"),
                )
        elif fault.kind in ("crash", "churn"):
            self.faulted_nodes.add(fault.target[0])
            self._crash_node(fault.target[0])
        elif fault.kind == "partition":
            self.faulted_nodes.update(
                n for n in fault.target if self.network.topology.has_node(n)
            )
            for edge in self._crossing_edges(fault):
                self._fail_edge(edge)
        self._log(fault, "begin")

    def _finish(self, fault: Fault, index: int) -> None:
        if fault.kind == "flap":
            self._restore_edge(_edge(*fault.target))
        elif fault.kind in ("gray", "noise"):
            self._clear_impairment(_edge(*fault.target), index)
        elif fault.kind == "burst":
            node = fault.target[0]
            for neighbor in self.network.topology.neighbors(node):
                self._clear_impairment(_edge(node, neighbor), index)
        elif fault.kind in ("crash", "churn"):
            self._recover_node(fault.target[0])
        elif fault.kind == "partition":
            for edge in self._crossing_edges(fault):
                self._restore_edge(edge)
        self._log(fault, "end")

    def _crossing_edges(self, fault: Fault) -> List[Tuple]:
        side: Set = set(fault.target)
        return [
            _edge(a, b)
            for a, b in self.network.topology.edges()
            if (a in side) != (b in side)
        ]

    # ------------------------------------------------------------------
    # Link downs (refcounted)
    # ------------------------------------------------------------------
    def _fail_edge(self, edge: Tuple) -> None:
        refs = self._link_refs.get(edge, 0)
        self._link_refs[edge] = refs + 1
        if refs == 0:
            self._take_edge_down(edge)

    def _restore_edge(self, edge: Tuple) -> None:
        refs = self._link_refs.get(edge, 0)
        if refs <= 1:
            self._link_refs.pop(edge, None)
            # Don't restore channels around a node the engine still holds
            # crashed — recovery will bring them back.
            if not any(self._node_refs.get(n, 0) for n in edge):
                self._bring_edge_up(edge)
        else:
            self._link_refs[edge] = refs - 1

    def _take_edge_down(self, edge: Tuple) -> None:
        """Substrate hook: make the edge drop everything (both ways)."""
        self.network.fail_link(*edge)

    def _bring_edge_up(self, edge: Tuple) -> None:
        """Substrate hook: undo :meth:`_take_edge_down`."""
        self.network.restore_link(*edge)

    # ------------------------------------------------------------------
    # Impairments (composed)
    # ------------------------------------------------------------------
    def _impair(
        self,
        edge: Tuple,
        key: int,
        loss: float = 0.0,
        dup: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
    ) -> None:
        self._impairments.setdefault(edge, {})[key] = (
            loss, dup, reorder, corrupt, delay
        )
        self._apply_impairment(edge)

    def _clear_impairment(self, edge: Tuple, key: int) -> None:
        active = self._impairments.get(edge)
        if active is None:
            return
        active.pop(key, None)
        if not active:
            del self._impairments[edge]
        self._apply_impairment(edge)

    def _apply_impairment(self, edge: Tuple) -> None:
        active = self._impairments.get(edge, {})
        survive = [1.0, 1.0, 1.0, 1.0]  # loss, dup, reorder, corrupt
        delay = 0.0
        for params in active.values():
            for i in range(4):
                survive[i] *= 1.0 - params[i]
            delay += params[4]
        loss, dup, reorder, corrupt = (1.0 - s for s in survive)
        self._install_impairment(
            edge, min(loss, MAX_COMPOSED_LOSS), dup, reorder, corrupt, delay
        )

    def _install_impairment(
        self,
        edge: Tuple,
        loss: float,
        dup: float,
        reorder: float,
        corrupt: float,
        delay: float,
    ) -> None:
        """Substrate hook: apply the composed impairment to the edge.

        The simulator's channels are FIFO by-reference pipes: a corrupted
        datagram fails decode/MAC at the receiver, so corruption projects
        onto loss; duplication and reordering have no sim-channel
        representation (the PoR link above absorbs both) and are applied
        only by the live runtime's datagram injector.
        """
        effective = 1.0 - (1.0 - loss) * (1.0 - corrupt)
        self.network.impair_link(
            *edge,
            extra_loss=min(effective, MAX_COMPOSED_LOSS),
            extra_delay=delay,
        )

    # ------------------------------------------------------------------
    # Crash / restart (refcounted, with link-fault repair)
    # ------------------------------------------------------------------
    def _crash_node(self, node) -> None:
        refs = self._node_refs.get(node, 0)
        self._node_refs[node] = refs + 1
        if refs == 0 and not self.network.node(node).crashed:
            self.network.crash(node)

    def _recover_node(self, node) -> None:
        refs = self._node_refs.get(node, 0)
        if refs > 1:
            self._node_refs[node] = refs - 1
            return
        self._node_refs.pop(node, None)
        self.network.recover(node)
        # recover() restored every adjacent channel; re-fail the edges that
        # still have an active link fault (flap or partition).
        for neighbor in self.network.topology.neighbors(node):
            edge = _edge(node, neighbor)
            if self._link_refs.get(edge, 0) > 0:
                self._take_edge_down(edge)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _log(self, fault: Fault, phase: str) -> None:
        target = ",".join(str(t) for t in fault.target)
        self.applied.append(
            (self.network.sim.now, f"{phase} {fault.kind} [{target}]")
        )
        # Mirrored into the trace (sim-time events, deterministic) so a
        # `repro stats --trace` dump interleaves faults with protocol
        # activity without a separate chaos log.
        self.network.stats.metrics.trace.event(
            self.network.sim.now, f"chaos.{phase}", f"{fault.kind} [{target}]"
        )

    def summary(self) -> dict:
        """Deterministic run summary: per-kind counts, actions, skips."""
        return {
            "faults_applied": dict(self.counts),
            "actions": len(self.applied),
            "skipped": self.skipped,
            "scheduled": len(self.schedule),
            "faulted_nodes": sorted(str(n) for n in self.faulted_nodes),
        }

    def describe_applied(self) -> str:
        """Canonical rendering of the actions taken (for byte-identity
        determinism checks across same-seed runs)."""
        return "\n".join(f"{t:012.6f} {text}" for t, text in self.applied)
