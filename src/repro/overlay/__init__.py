"""The intrusion-tolerant overlay node and network builder.

* :mod:`repro.overlay.config` — all tunables in one dataclass;
* :mod:`repro.overlay.node` — the overlay node: PoR links, routing,
  both messaging engines, link monitoring, crash/recovery;
* :mod:`repro.overlay.network` — builds a full overlay (simulator, PKI,
  MTMW, channels, nodes) from a topology and exposes the client API.
"""

from repro.overlay.access import AccessPoint, ClientEnvelope, ExternalClient
from repro.overlay.config import CryptoMode, DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode

__all__ = [
    "CryptoMode",
    "DisseminationMethod",
    "OverlayConfig",
    "OverlayNetwork",
    "OverlayNode",
    "AccessPoint",
    "ExternalClient",
    "ClientEnvelope",
]
