"""The intrusion-tolerant overlay node.

One :class:`OverlayNode` glues every layer together (Figure layering in
DESIGN.md): Proof-of-Receipt links to each MTMW neighbor, the validated
link-state routing view, the two messaging engines, the dissemination
methods, per-node CPU accounting, link monitoring via hellos, and the
Byzantine behaviour hook.

The send path is *pull-based*: each outgoing link's :class:`LinkSender`
pumps messages out of the fair schedulers whenever the PoR link can
accept another packet, so the queueing discipline (round-robin across
sources/flows, eviction, priority order) is applied at the moment of
transmission exactly as in Section V-C.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Optional, Tuple

from repro.byzantine.behaviors import Behavior, HonestBehavior
from repro.crypto.pki import Pki
from repro.errors import ConfigurationError, ProtocolError, TopologyError
from repro.link.por import PorEndpoint
from repro.messaging.admission import AdmissionController, AdmissionOutcome
from repro.messaging.message import (
    AdmissionNack,
    E2eAck,
    Hello,
    Message,
    NeighborAck,
    Semantics,
    StateRequest,
)
from repro.messaging.metadata import MetadataStore
from repro.messaging.priority import PriorityEngine, PriorityLinkQueue
from repro.messaging.reliable import ReliableEngine, ReliableLinkState
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.routing.link_state import UPDATE_WIRE_SIZE, LinkStateUpdate
from repro.routing.state import FAILED_WEIGHT, RoutingState
from repro.routing.validation import UpdateResult
from repro.sim.cpu import Cpu
from repro.sim.engine import PeriodicTimer
from repro.sim.stats import StatsRegistry
from repro.telemetry.profiling import payload_kind

if TYPE_CHECKING:
    # The node runs over the substrate seam: a simulated or wall-clock
    # scheduler both satisfy SchedulerLike (see repro.runtime.interfaces).
    from repro.runtime.interfaces import CancellableHandle, SchedulerLike
from repro.topology.graph import NodeId
from repro.topology.mtmw import Mtmw, MtmwHolder, MtmwUpdateResult

#: Wire bytes of a redistributed MTMW: header + per-node and per-edge
#: entries + the administrator signature.
MTMW_BASE_SIZE = 32
MTMW_NODE_ENTRY = 8
MTMW_EDGE_ENTRY = 16


def mtmw_wire_size(mtmw: Mtmw, signature_size: int) -> int:
    """Wire bytes of a redistributed MTMW for size accounting."""
    topo = mtmw.topology
    return (
        MTMW_BASE_SIZE
        + MTMW_NODE_ENTRY * len(topo.nodes)
        + MTMW_EDGE_ENTRY * topo.edge_count
        + signature_size
    )


def _noop() -> None:
    return None


class LinkSender:
    """Everything a node keeps per outgoing overlay link.

    Scheduling order on the wire: control traffic (ACKs, routing updates,
    state requests) first — it is tiny and rate-limited — then data,
    alternating fairly between the Priority and Reliable engines when
    both have backlog.
    """

    def __init__(self, node: "OverlayNode", neighbor: NodeId, por: PorEndpoint):
        self.node = node
        self.neighbor = neighbor
        self.por = por
        self.control: Deque[Tuple[Any, int]] = deque()
        self.priority_queue = PriorityLinkQueue(node.config.priority_queue_capacity)
        self.reliable = ReliableLinkState(node.config.reliable_buffer)
        self._serve_reliable_next = False
        self._pump_event: Optional[CancellableHandle] = None
        # Link monitoring / quarantine state.  ``monitor_up`` False means
        # the link is quarantined: reported failed to routing, regular
        # hellos replaced by backoff probes until probation completes.
        self.monitor_up = True
        self.last_heard: float = node.sim.now
        self.quarantined_at: Optional[float] = None
        self.probation_since: Optional[float] = None
        self.probe_interval: float = node.config.probe_backoff_initial
        self._probe_event: Optional[CancellableHandle] = None
        # Adaptive-defense vigilance: the feedback controller shrinks the
        # hello timeout toward a suspect neighbor (scale < 1) and
        # stretches its reinstatement probation (scale > 1).
        self.timeout_scale: float = 1.0
        self.probation_scale: float = 1.0
        # Observability.
        self.data_transmissions = 0
        self.control_transmissions = 0
        self.probes_sent = 0
        self.quarantine_count = 0
        self.reinstatements = 0
        self.probation_failures = 0
        self.invalid_rx = 0
        # Counter handles resolved once; pump() pays integer adds only.
        self._data_tx_counter = node.stats.counter("data_transmissions")

        por.on_deliver = self._on_deliver
        por.on_ready = self.pump
        por.on_hello = self._on_hello

    # ------------------------------------------------------------------
    def _on_deliver(self, payload: Any, size: int) -> None:
        self.node.on_link_deliver(self.neighbor, payload, size)

    def _on_hello(self, hello: Any) -> None:
        if isinstance(hello, Hello) and hello.sender == self.neighbor:
            self.last_heard = self.node.sim.now
            if not self.monitor_up:
                # Heard a quarantined neighbor: probe eagerly again and
                # start (or continue) the probation clock.
                self.probe_interval = self.node.config.probe_backoff_initial
                if self.probation_since is None:
                    self.probation_since = self.last_heard
                    # The pending probe may still sit at the backed-off
                    # interval; re-arm it so the peer hears us promptly.
                    self.node._schedule_probe(self)

    @property
    def quarantined(self) -> bool:
        """Whether this link is currently quarantined by the local monitor."""
        return not self.monitor_up

    def cancel_probe(self) -> None:
        """Cancel any scheduled liveness probe (used on teardown)."""
        if self._probe_event is not None:
            self._probe_event.cancel()
            self._probe_event = None

    def enqueue_control(self, payload: Any, size: int, raw: bool = False) -> None:
        """Queue a control payload.  ``raw=True`` bypasses the Byzantine
        outgoing filter — used by behaviours re-injecting traffic they
        already intercepted, so they don't re-filter their own output."""
        self.control.append((payload, size, raw))

    def send_hello(self, hello: Hello) -> None:
        """Send a liveness beacon on the PoR side-channel (accounted)."""
        tx_messages, tx_bytes = self.node.stats.tx_counters("hello")
        tx_messages.add()
        tx_bytes.add(Hello.WIRE_SIZE)
        self.por.send_hello(hello, Hello.WIRE_SIZE)

    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Transmit while the PoR link accepts; reschedule on pacing."""
        node = self.node
        if node.crashed:
            return
        if self.neighbor not in node._neighbor_set:
            return  # the administrator removed this link from the MTMW
        while self.por.can_accept():  # can_accept implies established
            item = self._next_item()
            if item is None:
                return
            payload, size, raw = item
            if raw or node._behavior_passthrough:
                filtered = payload
            else:
                filtered = node.behavior.filter_outgoing(payload, self.neighbor, node)
            if filtered is None:
                continue
            if isinstance(filtered, Message):
                self.data_transmissions += 1
                self._data_tx_counter.add()
            else:
                self.control_transmissions += 1
            tx_messages, tx_bytes = node.stats.tx_counters(payload_kind(filtered))
            tx_messages.add()
            tx_bytes.add(size)
            if node.cpu.enabled and node.cpu.costs.tx_packet > 0.0:
                node.cpu.execute(node.cpu.costs.tx_packet, _noop)
            self.por.send(filtered, size)
        if self._pump_event is None:
            # time_until_ready is the cheap test; only scan for backlog
            # (which walks the reliable engine's flows) when a retry could
            # actually be scheduled.
            delay = self.por.time_until_ready()
            if delay is not None and self._has_backlog():
                self._pump_event = node.sim.schedule(max(delay, 1e-5), self._pump_retry)

    def _pump_retry(self) -> None:
        self._pump_event = None
        self.pump()

    def _has_backlog(self) -> bool:
        return bool(
            self.control
            or len(self.priority_queue)
            or self.node.reliable.has_work_for_link(self)
        )

    def _next_item(self) -> Optional[Tuple[Any, int, bool]]:
        node = self.node
        if self.control:
            return self.control.popleft()
        first_reliable = self._serve_reliable_next
        signature_size = node.signature_size
        for attempt in range(2):
            serve_reliable = first_reliable ^ (attempt == 1)
            if serve_reliable:
                message = node.reliable.next_for_link(self)
                if message is not None:
                    self._serve_reliable_next = False
                    return message, message.wire_size(signature_size), False
            else:
                message = self.priority_queue.next_message(node.sim.now)
                if message is not None:
                    self._serve_reliable_next = True
                    return message, message.wire_size(signature_size), False
        return None


class OverlayNode:
    """One overlay node: links, routing, messaging, monitoring."""

    def __init__(
        self,
        sim: SchedulerLike,
        node_id: NodeId,
        mtmw: Mtmw,
        pki: Pki,
        config: OverlayConfig,
        stats: StatsRegistry,
    ):
        self.sim = sim
        self.node_id = node_id
        self._mtmw_holder = MtmwHolder(pki, mtmw)
        self.pki = pki
        #: ``pki.signature_wire_size`` resolved once (the PKI mode never
        #: changes at runtime); used for per-packet size accounting.
        self.signature_size = pki.signature_wire_size
        self.config = config
        self.stats = stats
        self.cpu = Cpu(sim, config.cpu_costs, name=f"cpu:{node_id}")
        self.routing = RoutingState(
            mtmw,
            pki,
            update_rate_per_second=config.routing_update_rate,
            update_burst=config.routing_update_burst,
        )
        self.links: Dict[NodeId, LinkSender] = {}
        # Authorized-neighbor set, denormalized from the MTMW: checked on
        # every single link delivery, so it must be one hash probe, not a
        # topology traversal.  Refreshed whenever a new MTMW is adopted.
        self._neighbor_set = self._authorized_neighbors(mtmw)
        self.metadata = MetadataStore(config.max_message_lifetime)
        self.priority = PriorityEngine(self)
        self.reliable = ReliableEngine(self)
        self.behavior: Behavior = HonestBehavior()
        self.crashed = False
        self.on_deliver: Optional[Callable[[Message], None]] = None
        #: Instrumentation taps (e.g. the chaos InvariantMonitor): called
        #: as ``observer(message, node)`` on every local delivery, before
        #: the application's ``on_deliver``.
        self.delivery_observers: list = []
        #: Session-layer taps: called as ``observer(nack, node)`` for
        #: every :class:`AdmissionNack` whose ``home`` is this node
        #: (whether generated locally or received off the wire).
        self.nack_observers: list = []
        self._nack_seq = 0
        #: Parked offers whose deferred release found the destination
        #: departed (or this node crashed) — dropped at release time;
        #: the client's attempt timeout owns recovery.
        self.released_unroutable = 0
        self._probe_rng = sim.rngs.stream(f"probe:{node_id}")

        self.non_neighbor_rejected = 0
        self._priority_seq = 0
        self._ls_seqno = 0
        self._hello_stamp = 0
        self._e2e_timer = PeriodicTimer(sim, config.e2e_ack_timeout, self._e2e_tick)
        self._hello_timer = PeriodicTimer(sim, config.hello_interval, self._hello_tick)
        self.invalid_messages_rejected = 0
        # Client-tier admission stage (None unless configured): meters
        # per-client-source offers before they reach send_priority.
        self.admission: Optional[AdmissionController] = None
        self._admission_timer: Optional[PeriodicTimer] = None
        if config.admission is not None:
            self.admission = AdmissionController(
                config.admission,
                sim,
                load_fn=self._admission_load,
                stats=stats,
                name=f"admission:{node_id}",
            )
            self._admission_timer = PeriodicTimer(
                sim, config.admission.tick_interval, self.admission.tick
            )

    @property
    def mtmw(self) -> Mtmw:
        """The node's current (newest validly signed) MTMW."""
        return self._mtmw_holder.current

    @property
    def behavior(self) -> Behavior:
        """The node's forwarding behavior (honest by default).

        Setting it keeps a pass-through flag in sync so honest nodes —
        the overwhelmingly common case — skip the per-packet Byzantine
        filter calls entirely."""
        return self._behavior

    @behavior.setter
    def behavior(self, behavior: Behavior) -> None:
        self._behavior = behavior
        # Exact type check: subclasses may override the filters.
        self._behavior_passthrough = type(behavior) is HonestBehavior

    def _authorized_neighbors(self, mtmw: Mtmw) -> frozenset:
        """This node's MTMW neighbor set (one hash probe on receive)."""
        topology = mtmw.topology
        if not topology.has_node(self.node_id):
            return frozenset()
        return frozenset(topology.neighbors(self.node_id))

    # ------------------------------------------------------------------
    # MTMW redistribution (Section V-A)
    # ------------------------------------------------------------------
    def adopt_mtmw(
        self, candidate: Mtmw, from_neighbor: Optional[NodeId] = None
    ) -> MtmwUpdateResult:
        """Offer a redistributed MTMW; adopt and flood it if fresh.

        "In the event that a change is needed, the offline system
        administrator can update, sign, and re-distribute the MTMW.  Each
        MTMW is assigned a unique monotonically increasing sequence
        number to defeat replay attacks."

        Adoption rebuilds the routing view against the new minimum
        weights; links no longer in the MTMW stop being used in either
        direction.  Flow and dedup state is preserved (topology changes
        are administrative, not crashes).
        """
        result = self._mtmw_holder.consider(candidate)
        if result is not MtmwUpdateResult.ACCEPTED:
            return result
        self._neighbor_set = self._authorized_neighbors(self.mtmw)
        self.routing = RoutingState(
            self.mtmw,
            self.pki,
            update_rate_per_second=self.config.routing_update_rate,
            update_burst=self.config.routing_update_burst,
        )
        self.reliable.refresh_membership()
        # The rebuilt routing view forgot our own failure reports; links
        # still under quarantine must stay excluded from routing.
        for neighbor, link in self.links.items():
            if not link.monitor_up and self.mtmw.are_neighbors(self.node_id, neighbor):
                self._issue_link_update(neighbor, FAILED_WEIGHT)
        size = mtmw_wire_size(candidate, self.pki.signature_wire_size)
        for neighbor, link in self.links.items():
            if neighbor != from_neighbor:
                link.enqueue_control(candidate, size)
            # Pump every link, not just the flooded ones: adoption may
            # have re-authorized a previously removed neighbor whose
            # queue still holds messages with no other wake-up pending.
            link.pump()
        return result

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_link(self, neighbor: NodeId, por: PorEndpoint) -> LinkSender:
        """Wire a PoR endpoint to an MTMW neighbor as an outgoing link."""
        if not self.mtmw.are_neighbors(self.node_id, neighbor):
            raise ConfigurationError(
                f"{self.node_id!r} and {neighbor!r} are not MTMW neighbors"
            )
        link = LinkSender(self, neighbor, por)
        self.links[neighbor] = link
        return link

    def start(self) -> None:
        """Arm periodic timers (phase-staggered per node id)."""
        # A stable digest, not hash(): the built-in string hash is
        # randomized per process, which made runs differ across
        # invocations of the same seed.
        digest = hashlib.sha256(str(self.node_id).encode()).digest()
        phase = (int.from_bytes(digest[:8], "big") % 1000) / 1000.0
        if self.config.e2e_acks_enabled:
            self._e2e_timer.start(phase=phase * self.config.e2e_ack_timeout)
        self._hello_timer.start(phase=phase * self.config.hello_interval)
        if self._admission_timer is not None:
            self._admission_timer.start(
                phase=phase * self.config.admission.tick_interval
            )

    # ------------------------------------------------------------------
    # Application send API
    # ------------------------------------------------------------------
    def send_priority(
        self,
        dest: NodeId,
        size_bytes: int = 1000,
        priority: Optional[int] = None,
        method: Optional[DisseminationMethod] = None,
        payload: Any = None,
        expire_after: Optional[float] = None,
        explicit_paths: Optional[Tuple[Tuple[NodeId, ...], ...]] = None,
    ) -> Message:
        """Inject one Priority Messaging message as this node (the source).

        ``explicit_paths`` overrides the routing-computed paths (pure
        source routing): used to emulate external routing policies and by
        attack tests.
        """
        if self.crashed:
            raise ProtocolError(f"node {self.node_id!r} is crashed")
        method = method or DisseminationMethod.flooding()
        self._priority_seq += 1
        expiration = self.sim.now + (
            expire_after if expire_after is not None else self.config.default_expire_after
        )
        if explicit_paths is not None:
            flooding, paths = False, explicit_paths
        else:
            flooding = method.is_flooding
            paths = None if flooding else self._compute_paths(dest, method.k)
        message = Message(
            source=self.node_id,
            dest=dest,
            seq=self._priority_seq,
            semantics=Semantics.PRIORITY,
            priority=priority if priority is not None else self.config.default_priority,
            expiration=expiration,
            size_bytes=size_bytes,
            flooding=flooding,
            paths=paths,
            sent_at=self.sim.now,
            payload=payload,
        ).sign(self.pki)
        self.stats.counter("messages_injected").add()
        self.priority.messages_originated += 1
        self.cpu.sign(self.priority.handle, message, None)
        return message

    def offer_priority(
        self,
        dest: NodeId,
        size_bytes: int = 1000,
        priority: Optional[int] = None,
        method: Optional[DisseminationMethod] = None,
        payload: Any = None,
        expire_after: Optional[float] = None,
        client: Any = None,
        nack_home: Optional[NodeId] = None,
        nack_key: str = "",
    ) -> AdmissionOutcome:
        """Client-tier injection: run one offer through the admission
        stage before :meth:`send_priority`.

        ``client`` identifies the offering client source for per-source
        metering (defaults to this node's id — one edge site, one
        source).  Without a configured admission stage every offer is
        admitted unconditionally, which keeps the client tier runnable
        against an unprotected overlay for A/B comparison.

        ``nack_home`` opts the offer into typed NACKs: if the offer is
        PARKED, its terminal resolution (released / expired / evicted /
        cleared) is reported as an :class:`AdmissionNack` tagged with
        ``nack_key`` and delivered to ``nack_home``'s ``nack_observers``
        — locally when the home *is* this ingress, over the wire when a
        failed-over session offered here from elsewhere.
        """
        if self.crashed:
            raise ProtocolError(f"node {self.node_id!r} is crashed")
        if self.admission is None:
            self.send_priority(
                dest,
                size_bytes=size_bytes,
                priority=priority,
                method=method,
                payload=payload,
                expire_after=expire_after,
            )
            return AdmissionOutcome.ADMITTED
        source = client if client is not None else self.node_id
        effective = (
            priority if priority is not None else self.config.default_priority
        )
        on_final = None
        if nack_home is not None:
            client_tag = str(source)

            def on_final(outcome: str) -> None:
                self._emit_nack(nack_home, client_tag, nack_key, outcome)

        in_offer = True

        def release_send() -> None:
            # Runs either synchronously (ADMITTED, still inside the
            # offer call — let errors propagate so the caller keeps its
            # fast unroutable path) or deferred from an admission tick
            # (a PARKED offer being released).  By deferred-release time
            # the world may have changed — the destination departed via
            # a signed LEAVE, or this node crashed — and a timer
            # callback must never let that escape into the event loop.
            try:
                self.send_priority(
                    dest,
                    size_bytes=size_bytes,
                    priority=priority,
                    method=method,
                    payload=payload,
                    expire_after=expire_after,
                )
            except (ProtocolError, TopologyError):
                if in_offer:
                    raise
                self.released_unroutable += 1

        try:
            return self.admission.offer(
                source,
                effective,
                release_send,
                size_bytes=size_bytes,
                dest=dest,
                on_final=on_final,
            )
        finally:
            in_offer = False

    def _emit_nack(
        self, home: NodeId, client: str, key: str, outcome: str
    ) -> None:
        """Report an admission verdict to ``home``'s session layer:
        dispatched straight to the local observers when the home is this
        node, flooded as a typed control frame otherwise."""
        self._nack_seq += 1
        nack = AdmissionNack(
            ingress=self.node_id,
            home=home,
            client=client,
            key=key,
            outcome=outcome,
            seq=self._nack_seq,
        )
        if home == self.node_id:
            for observer in self.nack_observers:
                observer(nack, self)
            return
        self.metadata.check_and_record(
            nack.uid, self.sim.now + self.config.max_message_lifetime, self.sim.now
        )
        for link in self.links.values():
            link.enqueue_control(nack, AdmissionNack.WIRE_SIZE)
            link.pump()

    def _handle_admission_nack(self, nack: AdmissionNack, neighbor: NodeId) -> None:
        """Flood-forward an admission NACK; consume it at its home."""
        if not self.metadata.check_and_record(
            nack.uid, self.sim.now + self.config.max_message_lifetime, self.sim.now
        ):
            return
        if nack.home == self.node_id:
            for observer in self.nack_observers:
                observer(nack, self)
            return
        for other, link in self.links.items():
            if other != neighbor:
                link.enqueue_control(nack, AdmissionNack.WIRE_SIZE)
                link.pump()

    def _admission_load(self) -> float:
        """The admission load signal: worst outgoing priority-queue
        occupancy as a fraction of its capacity.  The bottleneck link is
        what overload control must protect, so the max (not the mean)
        drives the watermarks."""
        capacity = self.config.priority_queue_capacity
        worst = 0
        for link in self.links.values():
            backlog = len(link.priority_queue)
            if backlog > worst:
                worst = backlog
        return worst / capacity

    def send_reliable(
        self,
        dest: NodeId,
        size_bytes: int = 1000,
        method: Optional[DisseminationMethod] = None,
        payload: Any = None,
    ) -> bool:
        """Inject one Reliable Messaging message; False under back-pressure."""
        if self.crashed:
            raise ProtocolError(f"node {self.node_id!r} is crashed")
        if not self.reliable.can_send(dest):
            return False
        method = method or DisseminationMethod.flooding()
        message = Message(
            source=self.node_id,
            dest=dest,
            seq=self.reliable.next_seq(dest),
            semantics=Semantics.RELIABLE,
            size_bytes=size_bytes,
            flooding=method.is_flooding,
            paths=None if method.is_flooding else self._compute_paths(dest, method.k),
            sent_at=self.sim.now,
            payload=payload,
        ).sign(self.pki)
        accepted = self.reliable.try_send(message)
        if accepted:
            self.stats.counter("messages_injected").add()
            if self.cpu.enabled:
                self.cpu.execute(self.cpu.costs.rsa_sign, lambda: None)
        return accepted

    def reliable_can_send(self, dest: NodeId) -> bool:
        """Whether a reliable send to ``dest`` would currently be accepted."""
        return not self.crashed and self.reliable.can_send(dest)

    def _compute_paths(self, dest: NodeId, k: int) -> Tuple[Tuple[NodeId, ...], ...]:
        # The routing state hands out one shared tuple per (view, flow, k):
        # every message of a flow carries the identical object, which keeps
        # the route computation and downstream successor scans memoized.
        paths = self.routing.k_paths_tuple(self.node_id, dest, k)
        if not paths:
            raise ProtocolError(f"no path from {self.node_id!r} to {dest!r}")
        return paths

    # ------------------------------------------------------------------
    # Receive dispatch
    # ------------------------------------------------------------------
    def on_link_deliver(self, neighbor: NodeId, payload: Any, size: int) -> None:
        """Entry point for every payload delivered by a PoR link."""
        if self.crashed:
            return
        if not self._behavior_passthrough:
            payload = self._behavior.filter_incoming(payload, neighbor, self)
            if payload is None:
                return
        if neighbor not in self._neighbor_set:
            # "Overlay nodes only accept messages from their direct
            # neighbors in the MTMW."  A redistributed MTMW itself is
            # still accepted (it is admin-signed and replay-protected,
            # and the sender may hold a fresher topology than we do).
            if not isinstance(payload, Mtmw):
                self.non_neighbor_rejected += 1
                return
        if not self.cpu.enabled:
            self._dispatch(payload, neighbor)
            return
        # Duplicate copies take the cheap path: recognized by the dedup
        # state *before* any expensive work (and before signature
        # verification — only verified messages populate the dedup state,
        # so this cannot be used to suppress genuine traffic).
        if isinstance(payload, Message) and self._is_known_duplicate(payload):
            self.cpu.execute(
                self.cpu.costs.duplicate_packet, self._dispatch_duplicate, payload, neighbor
            )
            return
        # Bounded input queues: when the CPU is overloaded, best-effort
        # (priority) data is dropped rather than queued forever; reliable
        # data and control traffic are flow-controlled and rate-limited,
        # so their volume is already bounded.
        if (
            isinstance(payload, Message)
            and payload.semantics is Semantics.PRIORITY
            and self.cpu.backlog() > self.config.cpu_drop_backlog
        ):
            self.cpu.overload_drops += 1
            self.stats.counter("cpu_overload_drops").add()
            return
        self.cpu.execute(
            self.cpu.costs.process_packet + self.cpu.costs.hmac,
            self._dispatch,
            payload,
            neighbor,
        )

    def _is_known_duplicate(self, message: Message) -> bool:
        if message.semantics is Semantics.PRIORITY:
            return self.metadata.seen(message.uid, self.sim.now)
        state = self.reliable.flows.get(message.flow)
        return state is not None and message.seq <= state.stored_h

    def _dispatch_duplicate(self, message: Message, neighbor: NodeId) -> None:
        if self.crashed:
            return
        if message.semantics is Semantics.PRIORITY:
            self.priority.note_duplicate(message, neighbor)
        else:
            self.reliable.note_duplicate(message, neighbor)

    def _dispatch(self, payload: Any, neighbor: NodeId) -> None:
        if self.crashed:
            return
        if isinstance(payload, Message):
            # Data is the hot path: with the CPU model disabled, run the
            # verify-and-handle sequence inline instead of paying two
            # extra frames (_charge_verify -> _handle_data) per packet.
            if self.cpu.enabled:
                self.cpu.verify(self._handle_data, payload, neighbor)
            elif not payload.verify(self.pki):
                self._note_invalid(neighbor)
            elif payload.semantics is Semantics.PRIORITY:
                self.priority.handle(payload, neighbor)
            else:
                self.reliable.handle(payload, neighbor)
        elif isinstance(payload, NeighborAck):
            self.reliable.handle_neighbor_ack(payload, neighbor)
        elif isinstance(payload, E2eAck):
            self._charge_verify(self._handle_e2e_ack, payload, neighbor)
        elif isinstance(payload, LinkStateUpdate):
            self._charge_verify(self._handle_link_state, payload, neighbor)
        elif isinstance(payload, Mtmw):
            self._charge_verify(self.adopt_mtmw, payload, neighbor)
        elif isinstance(payload, StateRequest):
            self._handle_state_request(payload, neighbor)
        elif isinstance(payload, AdmissionNack):
            self._handle_admission_nack(payload, neighbor)

    def _charge_verify(self, handler: Callable[..., None], *args: Any) -> None:
        if self.cpu.enabled:
            self.cpu.verify(handler, *args)
        else:
            handler(*args)

    def _note_invalid(self, neighbor: NodeId) -> None:
        """Count an invalid signature, attributed to the delivering link
        (the adaptive defense folds per-neighbor counts into beliefs)."""
        self.invalid_messages_rejected += 1
        self.stats.counter("invalid_signatures").add()
        link = self.links.get(neighbor)
        if link is not None:
            link.invalid_rx += 1

    def _handle_data(self, message: Message, neighbor: NodeId) -> None:
        if self.crashed:
            return
        if not message.verify(self.pki):
            self._note_invalid(neighbor)
            return
        if message.semantics is Semantics.PRIORITY:
            self.priority.handle(message, neighbor)
        else:
            self.reliable.handle(message, neighbor)

    def _handle_e2e_ack(self, ack: E2eAck, neighbor: NodeId) -> None:
        if self.crashed:
            return
        if not ack.verify(self.pki):
            self.invalid_messages_rejected += 1
            return
        self.reliable.handle_e2e_ack(ack, neighbor)

    def _handle_link_state(self, update: LinkStateUpdate, neighbor: NodeId) -> None:
        if self.crashed:
            return
        result = self.routing.apply_update(update, now=self.sim.now)
        self.stats.counter(f"routing.update.{result.value}").add()
        if result is UpdateResult.ACCEPTED:
            for other, link in self.links.items():
                if other != neighbor:
                    link.enqueue_control(update, UPDATE_WIRE_SIZE)
                    link.pump()

    def _handle_state_request(self, request: StateRequest, neighbor: NodeId) -> None:
        link = self.links.get(neighbor)
        if link is None or request.sender != neighbor:
            return
        # Rewind all sending cursors: the neighbor lost its soft state.
        link.reliable = ReliableLinkState(self.config.reliable_buffer)
        for dest_ack in self.reliable.latest_acks.values():
            link.enqueue_control(dest_ack, dest_ack.wire_size)
        self.reliable.reactivate_link(link)
        link.pump()

    # ------------------------------------------------------------------
    # Local delivery
    # ------------------------------------------------------------------
    def deliver_local(self, message: Message) -> None:
        """Deliver a message addressed to this node: record stats, call the app."""
        latency = self.sim.now - message.sent_at
        flow_name = f"{message.source}->{message.dest}"
        self.stats.goodput(f"flow:{flow_name}").record(message.size_bytes)
        self.stats.goodput("delivered").record(message.size_bytes)
        self.stats.latency(f"latency:{flow_name}").record(self.sim.now, latency)
        self.stats.counter("messages_delivered").add()
        self.stats.series(f"priority-count:{flow_name}:{message.priority}").record(
            self.sim.now, 1.0
        )
        for observer in self.delivery_observers:
            observer(message, self)
        if self.on_deliver is not None:
            self.on_deliver(message)

    # ------------------------------------------------------------------
    # Timers: E2E ACK generation and link monitoring
    # ------------------------------------------------------------------
    def _e2e_tick(self) -> None:
        if not self.crashed:
            self.reliable.generate_e2e_ack()

    def _hello_tick(self) -> None:
        if self.crashed:
            return
        self._hello_stamp += 1
        hello = Hello(self.node_id, self._hello_stamp)
        for neighbor, link in self.links.items():
            # Quarantined links are served by their backoff probe loop
            # instead of the regular beacon — a dead neighbor shouldn't
            # cost full hello bandwidth forever.
            if link.monitor_up and self.mtmw.are_neighbors(self.node_id, neighbor):
                link.send_hello(hello)
        self._check_link_liveness()
        self.reliable.check_stalls()

    def _check_link_liveness(self) -> None:
        now = self.sim.now
        for neighbor, link in self.links.items():
            if not self.mtmw.are_neighbors(self.node_id, neighbor):
                continue  # administratively removed from the topology
            alive = (
                now - link.last_heard
                <= self.config.hello_timeout * link.timeout_scale
            )
            if link.monitor_up:
                if not alive:
                    self._quarantine_link(neighbor, link)
            elif not alive:
                # Went silent again during probation; restart the clock.
                if link.probation_since is not None:
                    link.probation_failures += 1
                    self.stats.counter("link_probation_failures").add()
                link.probation_since = None
            elif (
                link.probation_since is not None
                and now - link.probation_since
                >= self.config.quarantine_probation * link.probation_scale
            ):
                self._reinstate_link(neighbor, link)

    def _quarantine_link(self, neighbor: NodeId, link: LinkSender) -> None:
        """Mark a silent link failed and switch to backoff probing."""
        link.monitor_up = False
        link.quarantined_at = self.sim.now
        link.probation_since = None
        link.probe_interval = self.config.probe_backoff_initial
        link.quarantine_count += 1
        self.stats.counter("link_quarantines").add()
        self._issue_link_update(neighbor, FAILED_WEIGHT)
        self._schedule_probe(link)

    def _reinstate_link(self, neighbor: NodeId, link: LinkSender) -> None:
        """Probation passed: restore the link's weight and resume service."""
        if link.quarantined_at is not None:
            dwell = self.sim.now - link.quarantined_at
            self.stats.series("link-quarantine-seconds").record(self.sim.now, dwell)
            # Per-neighbor dwell series + aggregate gauge: `repro stats`
            # reports quarantine downtime budgets from these.
            self.stats.series(f"quarantine-dwell:{neighbor}").record(
                self.sim.now, dwell
            )
            self.stats.metrics.gauge("quarantine.dwell_seconds_total").add(dwell)
        link.monitor_up = True
        link.quarantined_at = None
        link.probation_since = None
        link.probe_interval = self.config.probe_backoff_initial
        link.cancel_probe()
        link.reinstatements += 1
        self.stats.counter("link_reinstatements").add()
        self._issue_link_update(
            neighbor, self.mtmw.min_weight(self.node_id, neighbor)
        )
        # Beacon immediately: the peer's probation clock should not have
        # to wait out our next hello tick.
        self._hello_stamp += 1
        link.send_hello(Hello(self.node_id, self._hello_stamp))
        link.pump()

    def _schedule_probe(self, link: LinkSender) -> None:
        link.cancel_probe()
        jitter = 1.0 + self.config.probe_jitter * (2.0 * self._probe_rng.random() - 1.0)
        link._probe_event = self.sim.schedule(
            link.probe_interval * jitter, self._probe_link, link.neighbor
        )

    def _probe_link(self, neighbor: NodeId) -> None:
        link = self.links.get(neighbor)
        if link is None:
            return
        link._probe_event = None
        if self.crashed or link.monitor_up:
            return
        if not self.mtmw.are_neighbors(self.node_id, neighbor):
            return  # administratively removed; stop probing
        self._hello_stamp += 1
        link.send_hello(Hello(self.node_id, self._hello_stamp))
        link.probes_sent += 1
        link.probe_interval = min(
            link.probe_interval * self.config.probe_backoff_factor,
            self.config.probe_backoff_max,
        )
        self._schedule_probe(link)

    def quarantined_neighbors(self) -> list:
        """Neighbors whose link this node currently holds in quarantine."""
        return [
            neighbor for neighbor, link in self.links.items() if not link.monitor_up
        ]

    def set_link_vigilance(
        self,
        neighbor: NodeId,
        timeout_scale: float = 1.0,
        probation_scale: float = 1.0,
    ) -> None:
        """Adaptive-defense hook: scale liveness thresholds toward one
        neighbor.  ``timeout_scale < 1`` quarantines a silent link
        faster; ``probation_scale > 1`` makes it earn reinstatement for
        longer.  ``(1.0, 1.0)`` restores the configured thresholds."""
        link = self.links.get(neighbor)
        if link is None:
            return
        link.timeout_scale = timeout_scale
        link.probation_scale = probation_scale

    def _issue_link_update(self, neighbor: NodeId, weight: float) -> None:
        self._ls_seqno += 1
        self.stats.counter("routing.updates_issued").add()
        update = self.routing.make_update(self.node_id, neighbor, weight, self._ls_seqno)
        self.routing.apply_update(update, now=self.sim.now)
        for link in self.links.values():
            link.enqueue_control(update, UPDATE_WIRE_SIZE)
            link.pump()

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all soft state and stop participating."""
        self.crashed = True
        self.metadata = MetadataStore(self.config.max_message_lifetime)
        self.reliable.reset()
        if self.admission is not None:
            self.admission.clear()
        for link in self.links.values():
            link.control.clear()
            link.priority_queue = PriorityLinkQueue(self.config.priority_queue_capacity)
            link.reliable = ReliableLinkState(self.config.reliable_buffer)
            link.cancel_probe()

    def recover(self) -> None:
        """Restart: reset link sessions and ask neighbors for state."""
        self.crashed = False
        for link in self.links.values():
            link.por.reset()
            link.last_heard = self.sim.now
            if not link.monitor_up:
                # Resume the probe loop for links quarantined before the
                # crash; probation will reinstate them once healthy.
                link.probe_interval = self.config.probe_backoff_initial
                self._schedule_probe(link)
            request = StateRequest(self.node_id)
            link.enqueue_control(request, StateRequest.WIRE_SIZE)
            link.pump()

    def __repr__(self) -> str:  # pragma: no cover
        return f"OverlayNode({self.node_id!r}, links={sorted(map(str, self.links))})"
