"""Build and operate a complete intrusion-tolerant overlay network.

:class:`OverlayNetwork` assembles the full stack from a topology: the
simulator, the PKI, the administrator-signed MTMW, a pair of channels and
a Proof-of-Receipt link per overlay edge, and one :class:`OverlayNode`
per site.  It also exposes the experiment-facing controls used throughout
the evaluation: crashing/recovering nodes (Figure 9), compromising nodes
with Byzantine behaviours (Section VI-B), and failing individual links
(underlay attacks, Figure 2).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.byzantine.behaviors import Behavior
from repro.crypto.pki import Pki
from repro.errors import TopologyError
from repro.link.por import connect_por_pair
from repro.messaging.message import Message
from repro.overlay.config import OverlayConfig
from repro.overlay.node import OverlayNode
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.engine import Simulator
from repro.sim.stats import GoodputMeter, LatencyRecorder, StatsRegistry
from repro.topology.graph import NodeId, Topology
from repro.topology.mtmw import Mtmw


class Client:
    """A thin application-facing handle bound to one overlay node."""

    def __init__(self, network: "OverlayNetwork", node: OverlayNode):
        self._network = network
        self._node = node

    @property
    def node_id(self) -> NodeId:
        return self._node.node_id

    def send_priority(self, dest: NodeId, **kwargs: Any) -> Message:
        """Inject a Priority Messaging message from this client's node."""
        return self._node.send_priority(dest, **kwargs)

    def send_reliable(self, dest: NodeId, **kwargs: Any) -> bool:
        """Inject a Reliable Messaging message; False under back-pressure."""
        return self._node.send_reliable(dest, **kwargs)

    def can_send_reliable(self, dest: NodeId) -> bool:
        """Whether the reliable flow to ``dest`` currently has buffer room."""
        return self._node.reliable_can_send(dest)

    def goodput_to(self, dest: NodeId) -> GoodputMeter:
        """Goodput meter of the flow from this client to ``dest``
        (recorded at the destination)."""
        return self._network.flow_goodput(self.node_id, dest)

    def latency_to(self, dest: NodeId) -> LatencyRecorder:
        """Latency recorder of the flow from this client to ``dest``."""
        return self._network.flow_latency(self.node_id, dest)


class OverlayNetwork:
    """A fully wired overlay deployment inside one simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        mtmw: Mtmw,
        pki: Pki,
        config: OverlayConfig,
        stats: StatsRegistry,
        nodes: Dict[NodeId, OverlayNode],
        channels: Dict[Tuple[NodeId, NodeId], Channel],
    ):
        self.sim = sim
        self.topology = topology
        self.mtmw = mtmw
        self.pki = pki
        self.config = config
        self.stats = stats
        self.nodes = nodes
        self.channels = channels

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        topology: Topology,
        config: Optional[OverlayConfig] = None,
        seed: int = 0,
    ) -> "OverlayNetwork":
        """Assemble a network over ``topology``.

        Channel latency is the topology edge weight (seconds); bandwidth
        and loss come from the config.  PoR link keys are installed out
        of band (the on-wire handshake is exercised by the link tests).
        """
        config = config or OverlayConfig()
        sim = Simulator(seed=seed)
        stats = StatsRegistry(sim)
        pki = Pki(mode=config.crypto.pki_mode, seed=seed)
        # Crypto ops (sign/verify/MAC) count into the same registry as
        # protocol counters, so one snapshot describes the whole run.
        pki.attach_metrics(stats.metrics)
        for node_id in topology.nodes:
            pki.register(node_id)
        mtmw = Mtmw.create(topology, pki)
        nodes = {
            node_id: OverlayNode(sim, node_id, mtmw, pki, config, stats)
            for node_id in topology.nodes
        }
        channels: Dict[Tuple[NodeId, NodeId], Channel] = {}
        for a, b in topology.edges():
            latency = topology.weight(a, b)
            channel_config = ChannelConfig(
                latency=latency,
                bandwidth_bps=config.link_bandwidth_bps,
                loss_rate=config.channel_loss_rate,
            )
            ab = Channel(sim, channel_config, name=f"{a}->{b}")
            ba = Channel(sim, channel_config, name=f"{b}->{a}")
            channels[(a, b)] = ab
            channels[(b, a)] = ba
            end_a, end_b = connect_por_pair(
                sim, a, b, ab, ba, pki, config=config.por
            )
            end_a.attach_mac_counters(stats.metrics)
            end_b.attach_mac_counters(stats.metrics)
            nodes[a].attach_link(b, end_a)
            nodes[b].attach_link(a, end_b)
        network = cls(sim, topology, mtmw, pki, config, stats, nodes, channels)
        for node in nodes.values():
            node.start()
        return network

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> OverlayNode:
        """Look up an overlay node; raises TopologyError if unknown."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def client(self, node_id: NodeId) -> Client:
        """An application-facing handle bound to ``node_id``."""
        return Client(self, self.node(node_id))

    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds``."""
        self.sim.run(until=self.sim.now + seconds)

    def flow_goodput(self, source: NodeId, dest: NodeId) -> GoodputMeter:
        """Goodput meter for the (source, dest) flow, recorded at the dest."""
        return self.stats.goodput(f"flow:{source}->{dest}")

    def flow_latency(self, source: NodeId, dest: NodeId) -> LatencyRecorder:
        """Latency recorder for the (source, dest) flow."""
        return self.stats.latency(f"latency:{source}->{dest}")

    def delivered_count(self, source: NodeId, dest: NodeId) -> int:
        """Unique messages delivered so far on the (source, dest) flow."""
        return self.flow_latency(source, dest).count

    # ------------------------------------------------------------------
    # Fault and attack injection
    # ------------------------------------------------------------------
    def compromise(self, node_id: NodeId, behavior: Behavior) -> OverlayNode:
        """Install a Byzantine behaviour on ``node_id`` and return the node
        (attack drivers also use the node's own APIs directly)."""
        node = self.node(node_id)
        node.behavior = behavior
        return node

    def crash(self, node_id: NodeId) -> None:
        """Crash a node: it loses soft state and all its links go dark."""
        node = self.node(node_id)
        node.crash()
        for neighbor in node.links:
            self.channels[(node_id, neighbor)].take_down()
            self.channels[(neighbor, node_id)].take_down()

    def recover(self, node_id: NodeId) -> None:
        """Restart a crashed node and re-establish its link sessions."""
        node = self.node(node_id)
        for neighbor in node.links:
            self.channels[(node_id, neighbor)].restore()
            self.channels[(neighbor, node_id)].restore()
            # Both sides open fresh PoR sessions (new epochs).
            self.nodes[neighbor].links[node_id].por.reset()
        node.recover()

    def distribute_mtmw(self, new_topology: Topology, via: NodeId) -> Mtmw:
        """Administrator action: sign a successor MTMW and inject it.

        The new MTMW floods from ``via`` to every node (Section V-A).
        New overlay links must already have physical channels (the
        builder wires channels for the maximal physical topology); this
        method therefore supports weight changes and link/node removals,
        plus re-adding previously removed links.
        """
        for a, b in new_topology.edges():
            if (a, b) not in self.channels and (b, a) not in self.channels:
                raise TopologyError(
                    f"new MTMW edge ({a!r}, {b!r}) has no physical channels; "
                    "rebuild the network to add links"
                )
        successor = self.mtmw.successor(new_topology, self.pki)
        self.mtmw = successor
        self.node(via).adopt_mtmw(successor)
        return successor

    def fail_link(self, a: NodeId, b: NodeId) -> None:
        """Fail the overlay link (a, b) in both directions (underlay attack)."""
        self._link_channels(a, b)[0].take_down()
        self._link_channels(a, b)[1].take_down()

    def restore_link(self, a: NodeId, b: NodeId) -> None:
        """Restore a previously failed overlay link in both directions."""
        for channel in self._link_channels(a, b):
            channel.restore()

    def impair_link(
        self, a: NodeId, b: NodeId, extra_loss: float = 0.0, extra_delay: float = 0.0
    ) -> None:
        """Install a gray failure on the (a, b) link in both directions:
        the link stays nominally up but silently drops ``extra_loss`` of
        its packets and adds ``extra_delay`` propagation.  Passing zeros
        heals the link (see :meth:`clear_link_impairment`)."""
        for channel in self._link_channels(a, b):
            channel.set_impairment(extra_loss=extra_loss, extra_delay=extra_delay)

    def clear_link_impairment(self, a: NodeId, b: NodeId) -> None:
        """Heal any gray failure on the (a, b) link."""
        for channel in self._link_channels(a, b):
            channel.clear_impairment()

    def quarantined_links(self) -> Dict[NodeId, list]:
        """Which neighbors each (non-crashed) node currently quarantines.
        Nodes with no quarantined links are omitted."""
        out: Dict[NodeId, list] = {}
        for node_id, node in self.nodes.items():
            if node.crashed:
                continue
            quarantined = node.quarantined_neighbors()
            if quarantined:
                out[node_id] = quarantined
        return out

    def _link_channels(self, a: NodeId, b: NodeId) -> Tuple[Channel, Channel]:
        try:
            return self.channels[(a, b)], self.channels[(b, a)]
        except KeyError:
            raise TopologyError(f"no overlay link between {a!r} and {b!r}") from None
