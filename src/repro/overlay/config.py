"""Configuration for the intrusion-tolerant overlay."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.pki import PkiMode
from repro.errors import ConfigurationError
from repro.link.por import PorConfig
from repro.messaging.admission import AdmissionConfig
from repro.sim.cpu import CpuCosts


class CryptoMode(enum.Enum):
    """How overlay messages are authenticated.

    ``NONE`` disables signatures and MAC checks entirely — only used for
    row (a) of Table II.  ``SIMULATED`` keeps all verification logic (and
    can charge CPU time via :class:`repro.sim.cpu.CpuCosts`) without real
    bignum math.  ``REAL`` runs the from-scratch RSA/DH/HMAC stack.
    """

    NONE = "none"
    SIMULATED = "simulated"
    REAL = "real"

    @property
    def pki_mode(self) -> PkiMode:
        return {
            CryptoMode.NONE: PkiMode.NONE,
            CryptoMode.SIMULATED: PkiMode.SIMULATED,
            CryptoMode.REAL: PkiMode.REAL,
        }[self]


@dataclass(frozen=True)
class DisseminationMethod:
    """Per-message dissemination selector.

    Use the factories: ``DisseminationMethod.flooding()`` or
    ``DisseminationMethod.k_paths(k)``.
    """

    kind: str  # "flooding" | "kpaths"
    k: int = 0

    @classmethod
    def flooding(cls) -> "DisseminationMethod":
        return cls(kind="flooding")

    @classmethod
    def k_paths(cls, k: int) -> "DisseminationMethod":
        if k < 1:
            raise ConfigurationError(f"k must be >= 1 (got {k})")
        return cls(kind="kpaths", k=k)

    @property
    def is_flooding(self) -> bool:
        return self.kind == "flooding"


@dataclass(frozen=True)
class DefenseConfig:
    """The defense-side thresholds, unified in one typed block.

    Everything that decides *when the overlay defends itself* lives
    here: link-quarantine probing and probation, the proactive-recovery
    rotation, and the knobs of the adaptive two-level feedback
    controller (:mod:`repro.resilience.adaptive`).  Before this block
    existed the quarantine constants were flat ``OverlayConfig`` fields
    and the recovery cadence was passed ad hoc to
    :class:`~repro.resilience.recovery.ProactiveRecovery`; unifying them
    keeps sim and live substrates reading the same validated numbers.
    """

    # Liveness probing and link quarantine (self-healing).  A link whose
    # neighbor goes silent past ``hello_timeout`` is *quarantined*: it is
    # reported failed to the link-state layer and regular hellos stop;
    # instead the node probes it with exponential backoff + jitter.  Once
    # the neighbor is heard again the link enters *probation* and is only
    # reinstated after staying healthy for ``quarantine_probation``
    # seconds, so a flapping link cannot churn everyone's routing tables.
    probe_backoff_initial: float = 1.0
    probe_backoff_factor: float = 2.0
    probe_backoff_max: float = 4.0
    probe_jitter: float = 0.2
    quarantine_probation: float = 2.0

    # Proactive recovery rotation (Section V-D): every node is taken
    # down and restored from a clean state once per ``recovery_period``,
    # staying down for ``recovery_downtime`` per reinstall.
    recovery_period: float = 120.0
    recovery_downtime: float = 1.0

    # Adaptive feedback controller (ROADMAP item 4; Hammar & Stadler
    # style two-level control).  Per-node compromise beliefs decay with
    # ``belief_half_life`` and flip a node suspect/clear through the
    # ``belief_high``/``belief_low`` hysteresis band, but never twice
    # within ``action_cooldown`` seconds.
    belief_high: float = 0.6
    belief_low: float = 0.2
    belief_half_life: float = 20.0
    action_cooldown: float = 10.0
    control_interval: float = 0.5
    #: A healthy node's rotation slot may be deferred until its effective
    #: period reaches ``defer_factor_max`` times the base period.
    defer_factor_max: float = 3.0
    #: Belief above which a suspect is recovered immediately instead of
    #: waiting for its advanced rotation slot.
    escalate_threshold: float = 0.85
    #: Quarantine tightening against a suspect: the neighbors' hello
    #: timeout toward it is scaled down by this factor ...
    tighten_timeout_scale: float = 0.5
    #: ... and its probation is stretched by this factor.
    tighten_probation_scale: float = 2.0
    #: Global budget: simultaneous defense-initiated node downtimes.
    max_concurrent_down: int = 1
    #: Global budget: nodes under tightened quarantine at once.
    max_tightened_nodes: int = 3

    def __post_init__(self) -> None:
        if self.probe_backoff_initial <= 0:
            raise ConfigurationError("probe_backoff_initial must be positive")
        if self.probe_backoff_factor < 1.0:
            raise ConfigurationError("probe_backoff_factor must be >= 1")
        if self.probe_backoff_max < self.probe_backoff_initial:
            raise ConfigurationError(
                "probe_backoff_max must be >= probe_backoff_initial"
            )
        if not 0.0 <= self.probe_jitter < 1.0:
            raise ConfigurationError("probe_jitter must be in [0, 1)")
        if self.quarantine_probation < 0:
            raise ConfigurationError("quarantine_probation must be >= 0")
        if self.recovery_period <= 0:
            raise ConfigurationError("recovery_period must be positive")
        if not 0 < self.recovery_downtime < self.recovery_period:
            raise ConfigurationError(
                "recovery_downtime must be positive and below recovery_period"
            )
        if not 0.0 <= self.belief_low < self.belief_high <= 1.0:
            raise ConfigurationError(
                "need 0 <= belief_low < belief_high <= 1"
            )
        if self.belief_half_life <= 0:
            raise ConfigurationError("belief_half_life must be positive")
        if self.action_cooldown < 0:
            raise ConfigurationError("action_cooldown must be >= 0")
        if self.control_interval <= 0:
            raise ConfigurationError("control_interval must be positive")
        if self.defer_factor_max < 1.0:
            raise ConfigurationError("defer_factor_max must be >= 1")
        if not self.belief_high <= self.escalate_threshold <= 1.0:
            raise ConfigurationError(
                "escalate_threshold must be in [belief_high, 1]"
            )
        if not 0.0 < self.tighten_timeout_scale <= 1.0:
            raise ConfigurationError(
                "tighten_timeout_scale must be in (0, 1]"
            )
        if self.tighten_probation_scale < 1.0:
            raise ConfigurationError("tighten_probation_scale must be >= 1")
        if self.max_concurrent_down < 1:
            raise ConfigurationError("max_concurrent_down must be >= 1")
        if self.max_tightened_nodes < 0:
            raise ConfigurationError("max_tightened_nodes must be >= 0")


@dataclass(frozen=True)
class OverlayConfig:
    """All tunables of an overlay deployment.

    The defaults are the scaled laboratory settings used by the unit and
    integration tests; the benchmark harness overrides capacity, buffer
    sizes, and timeouts per experiment (see ``EXPERIMENTS.md``).
    """

    # Transport.
    link_bandwidth_bps: Optional[float] = 1e6
    channel_loss_rate: float = 0.0
    por: PorConfig = field(default_factory=PorConfig)

    # Cryptography / CPU model.
    crypto: CryptoMode = CryptoMode.SIMULATED
    cpu_costs: CpuCosts = field(default_factory=CpuCosts.free)
    #: When the CPU's queued work exceeds this many seconds, incoming
    #: best-effort (priority) data is dropped instead of queued.
    cpu_drop_backlog: float = 0.05

    # Client-tier admission control (the DoS-resistant stage in front of
    # Priority Messaging).  ``None`` disables it: ``offer_priority``
    # degenerates to ``send_priority`` and no controller state exists.
    admission: Optional[AdmissionConfig] = None

    # Priority Messaging.
    priority_queue_capacity: int = 200
    default_priority: int = 5
    default_expire_after: float = 30.0
    max_message_lifetime: float = 120.0

    # Reliable Messaging.
    reliable_buffer: int = 64
    e2e_ack_timeout: float = 0.5
    e2e_acks_enabled: bool = True
    neighbor_ack_delay: float = 0.005
    reliable_stall_timeout: float = 2.0
    reliable_link_window: int = 16
    #: Repair links serve a seq only after it has aged this long locally
    #: and the neighbor still lacks it (see ReliableEngine._activate).
    reliable_forward_hold: float = 0.25

    # Routing / link monitoring.
    hello_interval: float = 1.0
    hello_timeout: float = 3.5
    routing_update_rate: float = 10.0
    routing_update_burst: int = 20

    # Defense thresholds: link quarantine, proactive recovery, and the
    # adaptive controller — one typed, range-validated block (the flat
    # ``probe_*`` / ``quarantine_probation`` names below delegate to it
    # for compatibility).
    defense: DefenseConfig = field(default_factory=DefenseConfig)

    # Naïve-flooding baseline (Table IV / Figure 4a): disable the
    # constrained-flooding optimizations so messages traverse every edge
    # in both directions.
    naive_flooding: bool = False

    def __post_init__(self) -> None:
        if self.link_bandwidth_bps is not None and self.link_bandwidth_bps <= 0:
            raise ConfigurationError("link_bandwidth_bps must be positive")
        if not 0.0 <= self.channel_loss_rate < 1.0:
            raise ConfigurationError("channel_loss_rate must be in [0, 1)")
        if self.priority_queue_capacity < 1:
            raise ConfigurationError("priority_queue_capacity must be >= 1")
        if self.reliable_buffer < 1:
            raise ConfigurationError("reliable_buffer must be >= 1")
        if self.e2e_ack_timeout <= 0:
            raise ConfigurationError("e2e_ack_timeout must be positive")
        if self.reliable_link_window < 1:
            raise ConfigurationError("reliable_link_window must be >= 1")
        if self.neighbor_ack_delay < 0:
            raise ConfigurationError("neighbor_ack_delay must be >= 0")
        if self.hello_timeout <= self.hello_interval:
            raise ConfigurationError("hello_timeout must exceed hello_interval")

    # Compatibility: the quarantine thresholds used to be flat fields;
    # existing call sites (and reports) read them through these.
    @property
    def probe_backoff_initial(self) -> float:
        return self.defense.probe_backoff_initial

    @property
    def probe_backoff_factor(self) -> float:
        return self.defense.probe_backoff_factor

    @property
    def probe_backoff_max(self) -> float:
        return self.defense.probe_backoff_max

    @property
    def probe_jitter(self) -> float:
        return self.defense.probe_jitter

    @property
    def quarantine_probation(self) -> float:
        return self.defense.quarantine_probation
