"""External client access to the overlay (Figure 1, Section IV-A).

"While the overlay topology is relatively stable, clients can connect
from anywhere at any time."  Clients are not overlay members: they hold
no overlay keys, take no part in routing, and are exactly the white
boxes of Figure 1 — applications attached to a nearby overlay node over
an access link.

An :class:`AccessPoint` manages the clients attached to one overlay
node.  A client submits application messages over its (simulated) access
channel; the overlay node injects them as *its own* signed traffic (so
all the intrusion-tolerance guarantees and the per-source fairness of
the overlay apply at the granularity of overlay nodes, as in the paper),
wrapping the payload in a :class:`ClientEnvelope` addressed to a client
attached at the destination node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.messaging.message import Message, Semantics
from repro.overlay.network import OverlayNetwork
from repro.sim.channel import Channel, ChannelConfig
from repro.topology.graph import NodeId


@dataclass(frozen=True)
class ClientEnvelope:
    """Application payload addressed client-to-client."""

    from_client: str
    to_client: Optional[str]  # None: deliver to the node's local app
    data: Any


@dataclass(frozen=True)
class _ClientSubmit:
    """What a client sends up its access link."""

    dest_node: NodeId
    to_client: Optional[str]
    semantics: Semantics
    size_bytes: int
    priority: Optional[int]
    data: Any


class ExternalClient:
    """One client attached to an overlay node via an access link."""

    def __init__(self, access_point: "AccessPoint", client_id: str,
                 uplink: Channel, downlink: Channel):
        self._access = access_point
        self.client_id = client_id
        self._uplink = uplink
        self._downlink = downlink
        downlink.on_receive = self._on_receive
        self.received: List[Tuple[float, ClientEnvelope]] = []
        self.on_receive: Optional[Callable[[ClientEnvelope], None]] = None
        self.messages_sent = 0

    # ------------------------------------------------------------------
    def send(
        self,
        dest_node: NodeId,
        data: Any = None,
        to_client: Optional[str] = None,
        size_bytes: int = 1000,
        semantics: Semantics = Semantics.PRIORITY,
        priority: Optional[int] = None,
    ) -> None:
        """Submit one application message toward ``dest_node`` (and
        optionally a specific client attached there)."""
        submit = _ClientSubmit(
            dest_node=dest_node,
            to_client=to_client,
            semantics=semantics,
            size_bytes=size_bytes,
            priority=priority,
            data=data,
        )
        self.messages_sent += 1
        self._uplink.send(submit, size_bytes + 32)

    def detach(self) -> None:
        """Disconnect this client from its access point."""
        self._access.detach(self.client_id)

    # ------------------------------------------------------------------
    def _on_receive(self, envelope: ClientEnvelope) -> None:
        self.received.append((self._access.network.sim.now, envelope))
        if self.on_receive is not None:
            self.on_receive(envelope)


class AccessPoint:
    """The client-facing side of one overlay node."""

    #: Default access-link properties: a client is usually near its node.
    DEFAULT_LATENCY = 0.002

    def __init__(self, network: OverlayNetwork, node_id: NodeId):
        self.network = network
        self.node_id = node_id
        self.node = network.node(node_id)
        self.clients: Dict[str, ExternalClient] = {}
        self.undeliverable = 0
        previous = self.node.on_deliver
        self.node.on_deliver = self._on_overlay_deliver
        self._chained_on_deliver = previous

    # ------------------------------------------------------------------
    def attach(
        self,
        client_id: str,
        latency: float = DEFAULT_LATENCY,
        bandwidth_bps: Optional[float] = None,
    ) -> ExternalClient:
        """Connect a new client over a fresh access link."""
        if client_id in self.clients:
            raise ConfigurationError(f"client {client_id!r} already attached")
        sim = self.network.sim
        config = ChannelConfig(latency=latency, bandwidth_bps=bandwidth_bps)
        uplink = Channel(sim, config, name=f"access:{client_id}->{self.node_id}")
        downlink = Channel(sim, config, name=f"access:{self.node_id}->{client_id}")
        uplink.on_receive = lambda submit: self._on_client_submit(client_id, submit)
        client = ExternalClient(self, client_id, uplink, downlink)
        self.clients[client_id] = client
        return client

    def detach(self, client_id: str) -> None:
        """Remove a client; later traffic to it counts as undeliverable."""
        self.clients.pop(client_id, None)

    # ------------------------------------------------------------------
    def _on_client_submit(self, client_id: str, submit: _ClientSubmit) -> None:
        if self.node.crashed or client_id not in self.clients:
            return
        envelope = ClientEnvelope(
            from_client=client_id, to_client=submit.to_client, data=submit.data
        )
        if submit.semantics is Semantics.PRIORITY:
            self.node.send_priority(
                submit.dest_node,
                size_bytes=submit.size_bytes,
                priority=submit.priority,
                payload=envelope,
            )
        else:
            accepted = self.node.send_reliable(
                submit.dest_node, size_bytes=submit.size_bytes, payload=envelope
            )
            if not accepted:
                # Back-pressure: retry shortly, preserving order (the
                # next submit cannot overtake us because the retry holds
                # the access handler's FIFO slot via re-submission).
                self.network.sim.schedule(
                    0.05, self._on_client_submit, client_id, submit
                )

    def _on_overlay_deliver(self, message: Message) -> None:
        if self._chained_on_deliver is not None:
            self._chained_on_deliver(message)
        envelope = message.payload
        if not isinstance(envelope, ClientEnvelope):
            return
        if envelope.to_client is None:
            return
        client = self.clients.get(envelope.to_client)
        if client is None:
            self.undeliverable += 1
            return
        client._downlink.send(envelope, message.size_bytes + 16)
