"""A small bounded LRU cache shared by the hot-path memoizations.

Used by the route/disjoint-path cache (:mod:`repro.routing.link_state`),
the path-successor cache (:mod:`repro.dissemination.kpaths`), and the
signature/MAC verification memos (:mod:`repro.crypto.simulated`,
:mod:`repro.link.por`).  It lives in its own dependency-free module so
every layer can import it without cycles (routing imports crypto, which
could not itself import from routing).

Determinism note: the cache is a plain dict in insertion order; hits and
evictions depend only on the sequence of ``get``/``put`` calls, never on
wall-clock time or object ids, so cached code paths stay byte-identical
across seeded runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generic, Hashable, Optional, TypeVar

V = TypeVar("V")

_MISSING = object()


class LruCache(Generic[V]):
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    the oldest entry once ``maxsize`` is exceeded.  ``hits`` / ``misses``
    / ``evictions`` counters are exposed for tests and telemetry.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize: int):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive (got {maxsize})")
        self.maxsize = maxsize
        # OrderedDict rather than a plain dict: eviction needs the oldest
        # entry in O(1).  A plain dict's ``next(iter(data))`` degrades
        # linearly with deleted-slot debris once the cache churns at
        # capacity (measured at several microseconds per eviction on a
        # saturated verification memo); ``popitem(last=False)`` does not.
        self._data: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``default``."""
        data = self._data
        value = data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: Hashable, value: V) -> None:
        """Insert ``key`` as the most recent entry, evicting if full."""
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data
