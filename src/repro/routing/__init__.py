"""Intrusion-tolerant link-state routing.

Nodes monitor their own links, raise and lower weights as problems arise
and resolve, and flood signed routing updates.  Every node validates
updates against the administrator-signed MTMW before applying them
(:mod:`repro.routing.validation`), which defeats black-hole and wormhole
attacks, and keeps a routing view from which sources compute shortest
paths and K node-disjoint paths (:mod:`repro.routing.state`).
"""

from repro.routing.link_state import LinkStateUpdate
from repro.routing.state import FAILED_WEIGHT, RoutingState
from repro.routing.validation import UpdateResult, validate_update

__all__ = [
    "LinkStateUpdate",
    "RoutingState",
    "FAILED_WEIGHT",
    "UpdateResult",
    "validate_update",
]
