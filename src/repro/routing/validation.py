"""MTMW enforcement for routing updates.

The Maximal Topology with Minimal Weights turns routing updates into
checkable claims: an update is valid only if (1) its signature verifies,
(2) the link exists in the MTMW, (3) the issuer is an endpoint of that
link, and (4) the claimed weight is not below the administrator-assigned
minimum.  Violations of (3) or (4) are *provable misbehaviour* — the
update is signed by the issuer — so the issuer is marked compromised.

This is what prevents routing attacks: a black hole (advertising
artificially low weights to attract traffic) would require violating (4);
a wormhole (advertising a non-existent shortcut between distant nodes)
would require violating (2) or (3); and a Sybil node is rejected by (1)
since it has no key in the PKI.
"""

from __future__ import annotations

import enum

from repro.crypto.pki import Pki
from repro.routing.link_state import LinkStateUpdate
from repro.topology.mtmw import Mtmw


class UpdateResult(enum.Enum):
    """Outcome of validating one routing update."""

    ACCEPTED = "accepted"
    STALE = "stale"                        # overtaken by a newer seqno
    RATE_LIMITED = "rate_limited"
    BAD_SIGNATURE = "bad_signature"
    UNKNOWN_LINK = "unknown_link"          # provable: not in the MTMW
    NOT_ENDPOINT = "not_endpoint"          # provable: issuer not on the link
    BELOW_MIN_WEIGHT = "below_min_weight"  # provable: black-hole attempt

    @property
    def proves_compromise(self) -> bool:
        """True when a validly signed update with this outcome can only be
        produced by a compromised node."""
        return self in (
            UpdateResult.UNKNOWN_LINK,
            UpdateResult.NOT_ENDPOINT,
            UpdateResult.BELOW_MIN_WEIGHT,
        )


def validate_update(update: LinkStateUpdate, mtmw: Mtmw, pki: Pki) -> UpdateResult:
    """Apply the MTMW validation rules to ``update``.

    Returns the first violated rule; signature validity is checked first
    because only a genuine signature makes the other violations provable.
    Staleness and rate limiting are checked by the caller (they need the
    per-issuer state that lives in :class:`repro.routing.state.RoutingState`).
    """
    if not update.verify(pki):
        return UpdateResult.BAD_SIGNATURE
    if not mtmw.is_edge(update.edge_a, update.edge_b):
        return UpdateResult.UNKNOWN_LINK
    if update.issuer not in (update.edge_a, update.edge_b):
        return UpdateResult.NOT_ENDPOINT
    if update.weight < mtmw.min_weight(update.edge_a, update.edge_b) - 1e-12:
        return UpdateResult.BELOW_MIN_WEIGHT
    return UpdateResult.ACCEPTED
