"""Signed link-state routing updates.

Section V-A: "Overlay nodes monitor the links with their neighbors, raise
and lower link weights when problems arise and resolve respectively, and
disseminate signed routing updates.  A node is not allowed to change the
weights of non-neighboring links or decrease the weight of any link below
its minimal allowed weight.  If a node attempts such an action, it is
detected, that node is considered compromised, and that update is
ignored."

Updates carry a per-issuer monotonically increasing sequence number and
are applied on an overtaken-by-events basis (only the newest update from
each issuer about each link matters), and correct nodes rate-limit the
updates they accept from each issuer to bound the impact of spurious
updates from compromised nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.crypto.pki import Pki
from repro.topology.graph import NodeId

#: Wire size of a link-state update (endpoint ids, weight, seqno, sig).
UPDATE_WIRE_SIZE = 64


@dataclass(frozen=True)
class LinkStateUpdate:
    """A signed claim by ``issuer`` that its link (a, b) has ``weight``.

    ``seqno`` orders updates from the same issuer (overtaken-by-events);
    the signature covers every semantic field.
    """

    issuer: NodeId
    edge_a: NodeId
    edge_b: NodeId
    weight: float
    seqno: int
    signature: Any = None

    def signed_fields(self) -> Tuple[Any, ...]:
        """Canonical tuple of fields covered by the issuer signature."""
        return (
            "link-state",
            str(self.issuer),
            str(self.edge_a),
            str(self.edge_b),
            self.weight,
            self.seqno,
        )

    @classmethod
    def create(
        cls,
        pki: Pki,
        issuer: NodeId,
        edge_a: NodeId,
        edge_b: NodeId,
        weight: float,
        seqno: int,
    ) -> "LinkStateUpdate":
        unsigned = cls(issuer, edge_a, edge_b, weight, seqno)
        signature = pki.identity(issuer).sign(unsigned.signed_fields())
        return cls(issuer, edge_a, edge_b, weight, seqno, signature)

    def verify(self, pki: Pki) -> bool:
        """Check the issuer signature against the PKI."""
        return pki.verify(self.issuer, self.signed_fields(), self.signature)


class UpdateRateLimiter:
    """Token bucket limiting accepted routing updates per issuer.

    "We use rate-limiting and overtaken-by-event techniques to limit the
    impact of spurious routing updates from compromised nodes."
    """

    def __init__(self, rate_per_second: float, burst: int):
        self.rate = rate_per_second
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0
        #: Lifetime decision counts, surfaced by telemetry snapshots to
        #: show how hard each issuer pushes against its budget.
        self.allowed = 0
        self.denied = 0

    def allow(self, now: float) -> bool:
        """Consume a token at time ``now``; False when rate-limited."""
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.allowed += 1
            return True
        self.denied += 1
        return False
