"""Signed link-state routing updates.

Section V-A: "Overlay nodes monitor the links with their neighbors, raise
and lower link weights when problems arise and resolve respectively, and
disseminate signed routing updates.  A node is not allowed to change the
weights of non-neighboring links or decrease the weight of any link below
its minimal allowed weight.  If a node attempts such an action, it is
detected, that node is considered compromised, and that update is
ignored."

Updates carry a per-issuer monotonically increasing sequence number and
are applied on an overtaken-by-events basis (only the newest update from
each issuer about each link matters), and correct nodes rate-limit the
updates they accept from each issuer to bound the impact of spurious
updates from compromised nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple

from repro.caching import LruCache
from repro.crypto.pki import Pki
from repro.topology.graph import NodeId

#: Wire size of a link-state update (endpoint ids, weight, seqno, sig).
UPDATE_WIRE_SIZE = 64

#: Bound on each node's computed-route cache (distinct (kind, source,
#: dest, k) queries per link-state version actually in play is tiny —
#: one per active flow — so this never evicts in practice).
ROUTE_CACHE_SIZE = 512

_MISS = object()


class RouteCache:
    """LRU over computed routes, invalidated by link-state sequencing.

    Every accepted link-state update advances the owning
    :class:`~repro.routing.state.RoutingState`'s ``version`` (its
    sequence-number-gated view of the topology).  Cache keys embed the
    version at computation time, so a route computed on a superseded view
    can never be returned: after an update the lookup key simply no
    longer matches, and the stale entry ages out of the LRU.

    Cached values are shared objects — callers must not mutate returned
    paths (the overlay treats routes as immutable; messages carry them
    inside signed tuples).
    """

    __slots__ = ("_cache",)

    def __init__(self, maxsize: int = ROUTE_CACHE_SIZE):
        self._cache: LruCache[Any] = LruCache(maxsize)

    @property
    def stats(self) -> Tuple[int, int, int]:
        """(hits, misses, evictions) — for tests and telemetry."""
        return (self._cache.hits, self._cache.misses, self._cache.evictions)

    def lookup(
        self, version: int, kind: str, source: NodeId, dest: NodeId, k: int
    ) -> Any:
        """Cached route for the query at ``version``, or the miss sentinel."""
        return self._cache.get((version, kind, source, dest, k), _MISS)

    def store(
        self, version: int, kind: str, source: NodeId, dest: NodeId, k: int, value: Any
    ) -> None:
        """Record ``value`` for this (version, kind, source, dest, k) query."""
        self._cache.put((version, kind, source, dest, k), value)

    @staticmethod
    def is_miss(value: Any) -> bool:
        """True when ``value`` is the sentinel returned by a cache miss."""
        return value is _MISS


@dataclass(frozen=True, slots=True)
class LinkStateUpdate:
    """A signed claim by ``issuer`` that its link (a, b) has ``weight``.

    ``seqno`` orders updates from the same issuer (overtaken-by-events);
    the signature covers every semantic field.
    """

    issuer: NodeId
    edge_a: NodeId
    edge_b: NodeId
    weight: float
    seqno: int
    signature: Any = None
    # Canonical-tuple cache; an update is re-verified at every node it
    # floods through.  Reset by ``dataclasses.replace`` (tampered copies
    # start cold); excluded from eq/hash/repr.
    _signed_fields_cache: Optional[Tuple[Any, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def signed_fields(self) -> Tuple[Any, ...]:
        """Canonical tuple of fields covered by the issuer signature."""
        cached = self._signed_fields_cache
        if cached is not None:
            return cached
        fields = (
            "link-state",
            str(self.issuer),
            str(self.edge_a),
            str(self.edge_b),
            self.weight,
            self.seqno,
        )
        object.__setattr__(self, "_signed_fields_cache", fields)
        return fields

    @classmethod
    def create(
        cls,
        pki: Pki,
        issuer: NodeId,
        edge_a: NodeId,
        edge_b: NodeId,
        weight: float,
        seqno: int,
    ) -> "LinkStateUpdate":
        unsigned = cls(issuer, edge_a, edge_b, weight, seqno)
        signature = pki.identity(issuer).sign(unsigned.signed_fields())
        return cls(issuer, edge_a, edge_b, weight, seqno, signature)

    def verify(self, pki: Pki) -> bool:
        """Check the issuer signature against the PKI."""
        return pki.verify(self.issuer, self.signed_fields(), self.signature)


class UpdateRateLimiter:
    """Token bucket limiting accepted routing updates per issuer.

    "We use rate-limiting and overtaken-by-event techniques to limit the
    impact of spurious routing updates from compromised nodes."
    """

    def __init__(self, rate_per_second: float, burst: int):
        self.rate = rate_per_second
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0
        #: Lifetime decision counts, surfaced by telemetry snapshots to
        #: show how hard each issuer pushes against its budget.
        self.allowed = 0
        self.denied = 0

    def allow(self, now: float) -> bool:
        """Consume a token at time ``now``; False when rate-limited."""
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.allowed += 1
            return True
        self.denied += 1
        return False
