"""A node's routing view: validated weights, shortest paths, K-paths.

Each node holds the MTMW plus the newest validated weight report from
each link endpoint.  The *effective* weight of a link is the maximum of
the two endpoints' reports (never below the MTMW minimum): either correct
endpoint can mark its link degraded or failed, and a compromised endpoint
cannot talk a link back down while its honest peer disagrees.

Links whose effective weight reaches :data:`FAILED_WEIGHT` are treated as
down and excluded from the routing graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.crypto.pki import Pki
from repro.errors import TopologyError
from repro.routing.link_state import LinkStateUpdate, RouteCache, UpdateRateLimiter
from repro.routing.validation import UpdateResult, validate_update
from repro.topology.disjoint import best_effort_disjoint_paths, k_node_disjoint_paths
from repro.topology.graph import NodeId, Topology, edge_key
from repro.topology.mtmw import Mtmw

#: Weight at (or above) which a link is considered failed / unusable.
FAILED_WEIGHT = 1e6


class RoutingState:
    """Validated link-state database + route computation for one node."""

    def __init__(
        self,
        mtmw: Mtmw,
        pki: Pki,
        update_rate_per_second: float = 10.0,
        update_burst: int = 20,
    ):
        self.mtmw = mtmw
        self.pki = pki
        # Per-endpoint weight reports: edge -> {endpoint: weight}.
        self._reports: Dict[FrozenSet[NodeId], Dict[NodeId, float]] = {}
        # Overtaken-by-events: newest seqno seen per (issuer, edge).
        self._seqnos: Dict[Tuple[NodeId, FrozenSet[NodeId]], int] = {}
        self._limiters: Dict[NodeId, UpdateRateLimiter] = {}
        self._rate = update_rate_per_second
        self._burst = update_burst
        self.detected_compromised: Set[NodeId] = set()
        self._graph_cache: Optional[Topology] = None
        #: Monotonic link-state view version: advanced exactly when an
        #: accepted (sequence-number-gated) update changes the view.  Route
        #: cache keys embed it, so every seqno bump invalidates them.
        self.version = 0
        self._route_cache = RouteCache()
        self.results: Dict[UpdateResult, int] = {r: 0 for r in UpdateResult}

    # ------------------------------------------------------------------
    # Applying updates
    # ------------------------------------------------------------------
    def apply_update(self, update: LinkStateUpdate, now: float = 0.0) -> UpdateResult:
        """Validate and apply one routing update; returns the outcome."""
        limiter = self._limiters.get(update.issuer)
        if limiter is None:
            limiter = UpdateRateLimiter(self._rate, self._burst)
            self._limiters[update.issuer] = limiter
        if not limiter.allow(now):
            self.results[UpdateResult.RATE_LIMITED] += 1
            return UpdateResult.RATE_LIMITED

        result = validate_update(update, self.mtmw, self.pki)
        if result is not UpdateResult.ACCEPTED:
            if result.proves_compromise:
                self.detected_compromised.add(update.issuer)
            self.results[result] += 1
            return result

        key = edge_key(update.edge_a, update.edge_b)
        seq_key = (update.issuer, key)
        last = self._seqnos.get(seq_key, -1)
        if update.seqno <= last:
            self.results[UpdateResult.STALE] += 1
            return UpdateResult.STALE
        self._seqnos[seq_key] = update.seqno
        self._reports.setdefault(key, {})[update.issuer] = update.weight
        self._graph_cache = None
        self.version += 1
        self.results[UpdateResult.ACCEPTED] += 1
        return UpdateResult.ACCEPTED

    # ------------------------------------------------------------------
    # Effective weights and the routing graph
    # ------------------------------------------------------------------
    def effective_weight(self, a: NodeId, b: NodeId) -> float:
        """Max of endpoint reports, floored at the MTMW minimum."""
        minimum = self.mtmw.min_weight(a, b)
        reports = self._reports.get(edge_key(a, b))
        if not reports:
            return minimum
        return max(minimum, max(reports.values()))

    def is_link_usable(self, a: NodeId, b: NodeId) -> bool:
        """Whether the link's effective weight is below the failure level."""
        return self.effective_weight(a, b) < FAILED_WEIGHT

    def graph(self) -> Topology:
        """The current routing graph (failed links excluded).  Cached."""
        if self._graph_cache is None:
            graph = Topology()
            for node in self.mtmw.members:
                graph.add_node(node)
            for a, b in self.mtmw.topology.edges():
                weight = self.effective_weight(a, b)
                if weight < FAILED_WEIGHT:
                    graph.add_edge(a, b, weight)
            self._graph_cache = graph
        return self._graph_cache

    # ------------------------------------------------------------------
    # Route computation
    # ------------------------------------------------------------------
    # Every computed route is cached in an LRU keyed by (view version,
    # query); accepted link-state updates advance the version, so cached
    # routes always equal a fresh recomputation on the current view.
    # Returned paths are shared objects and must not be mutated.
    def shortest_path(self, source: NodeId, dest: NodeId) -> Optional[List[NodeId]]:
        """Minimum-weight path on the current view, or None if disconnected."""
        cache = self._route_cache
        cached = cache.lookup(self.version, "sp", source, dest, 1)
        if not RouteCache.is_miss(cached):
            return cached
        path = self.graph().shortest_path(source, dest)
        cache.store(self.version, "sp", source, dest, 1, path)
        return path

    def k_paths(self, source: NodeId, dest: NodeId, k: int) -> List[List[NodeId]]:
        """K minimum-weight node-disjoint paths on the current view."""
        cache = self._route_cache
        cached = cache.lookup(self.version, "kp", source, dest, k)
        if not RouteCache.is_miss(cached):
            return cached
        paths = k_node_disjoint_paths(self.graph(), source, dest, k)
        cache.store(self.version, "kp", source, dest, k, paths)
        return paths

    def k_paths_best_effort(self, source: NodeId, dest: NodeId, k: int) -> List[List[NodeId]]:
        """Up to K node-disjoint paths, as many as currently exist."""
        cache = self._route_cache
        cached = cache.lookup(self.version, "be", source, dest, k)
        if not RouteCache.is_miss(cached):
            return cached
        paths = best_effort_disjoint_paths(self.graph(), source, dest, k)
        cache.store(self.version, "be", source, dest, k, paths)
        return paths

    def k_paths_tuple(
        self, source: NodeId, dest: NodeId, k: int
    ) -> Tuple[Tuple[NodeId, ...], ...]:
        """Best-effort K paths as a cached tuple-of-tuples.

        Messages carry their paths as immutable tuples; sharing one tuple
        object per (version, flow, k) keeps every message of a flow
        carrying the identical object, which in turn makes downstream
        per-path memoization (``dissemination.kpaths``) hit on the cheap
        equality of an already-seen key.
        """
        cache = self._route_cache
        cached = cache.lookup(self.version, "tup", source, dest, k)
        if not RouteCache.is_miss(cached):
            return cached
        paths = tuple(tuple(p) for p in self.k_paths_best_effort(source, dest, k))
        cache.store(self.version, "tup", source, dest, k, paths)
        return paths

    @property
    def route_cache_stats(self) -> Tuple[int, int, int]:
        """(hits, misses, evictions) of the route cache."""
        return self._route_cache.stats

    # ------------------------------------------------------------------
    # Local link monitoring support
    # ------------------------------------------------------------------
    def make_update(
        self, issuer: NodeId, neighbor: NodeId, weight: float, seqno: int
    ) -> LinkStateUpdate:
        """Create a signed update about the issuer's own link.

        Correct nodes clamp the weight at the MTMW minimum rather than
        ever issuing a provably invalid update.
        """
        if not self.mtmw.is_edge(issuer, neighbor):
            raise TopologyError(f"{issuer!r} and {neighbor!r} are not MTMW neighbors")
        floor = self.mtmw.min_weight(issuer, neighbor)
        return LinkStateUpdate.create(
            self.pki, issuer, issuer, neighbor, max(weight, floor), seqno
        )
