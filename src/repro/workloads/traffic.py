"""Traffic generators.

All generators are simulation-driven (timers in simulated time) and
deterministic given the network's seed.  Rates are offered loads; the
overlay's schedulers decide what is actually carried.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, ProtocolError, TopologyError
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod
from repro.overlay.network import OverlayNetwork
from repro.topology.graph import NodeId


class CbrTraffic:
    """Constant-bit-rate traffic on one flow.

    For PRIORITY semantics each tick injects messages unconditionally
    (the network drops what it must); for RELIABLE, back-pressure pauses
    the generator and the backlog is retried on later ticks.
    """

    def __init__(
        self,
        network: OverlayNetwork,
        source: NodeId,
        dest: NodeId,
        rate_bps: float,
        size_bytes: int = 1186,
        priority: Optional[int] = None,
        semantics: Semantics = Semantics.PRIORITY,
        method: Optional[DisseminationMethod] = None,
        priority_cycle: Optional[list] = None,
        tick_interval: float = 0.02,
        max_messages: Optional[int] = None,
    ):
        if rate_bps <= 0:
            raise ConfigurationError("rate_bps must be positive")
        if max_messages is not None and max_messages < 1:
            raise ConfigurationError("max_messages must be >= 1 when set")
        self.network = network
        self.source = source
        self.dest = dest
        self.rate_bps = rate_bps
        self.size_bytes = size_bytes
        self.priority = priority
        self.semantics = semantics
        self.method = method or DisseminationMethod.flooding()
        #: When given, priorities are assigned round-robin from this list
        #: ("evenly distributes its messages across ten priority levels").
        self.priority_cycle = priority_cycle
        self.tick_interval = tick_interval
        #: When set, the generator stops itself after injecting exactly
        #: this many messages — used by the sim-vs-live conformance test,
        #: where both substrates must offer the identical message set.
        self.max_messages = max_messages
        self.running = False
        self.messages_sent = 0
        self.backpressured = 0
        self._credit = 0.0
        self._last = 0.0

    def start(self) -> None:
        """Begin offering load now."""
        self.running = True
        self._last = self.network.sim.now
        self._tick()

    def stop(self) -> None:
        """Stop offering load."""
        self.running = False

    def schedule(self, start_at: float, stop_at: Optional[float] = None) -> None:
        """Arm start (and optionally stop) at absolute simulated times."""
        self.network.sim.schedule_at(start_at, self.start)
        if stop_at is not None:
            self.network.sim.schedule_at(stop_at, self.stop)

    def _next_priority(self) -> Optional[int]:
        if self.priority_cycle:
            return self.priority_cycle[self.messages_sent % len(self.priority_cycle)]
        return self.priority

    def _tick(self) -> None:
        if not self.running:
            return
        sim = self.network.sim
        node = self.network.node(self.source)
        self._credit += (sim.now - self._last) * self.rate_bps / 8.0
        self._last = sim.now
        if self.semantics is Semantics.PRIORITY:
            # Offered load is not buffered: undelivered credit beyond a
            # small burst is the application's loss, like a UDP sender.
            self._credit = min(self._credit, self.size_bytes * 8.0)
        while self._credit >= self.size_bytes and not node.crashed:
            if self.max_messages is not None and self.messages_sent >= self.max_messages:
                self.running = False
                return
            try:
                if self.semantics is Semantics.PRIORITY:
                    node.send_priority(
                        self.dest,
                        size_bytes=self.size_bytes,
                        priority=self._next_priority(),
                        method=self.method,
                    )
                else:
                    if not node.send_reliable(
                        self.dest, size_bytes=self.size_bytes, method=self.method
                    ):
                        self.backpressured += 1
                        break
            except (ProtocolError, TopologyError):
                # Transiently unroutable: link monitoring flapped every
                # path away, or the destination is missing from this
                # node's MTMW view — under membership churn a node can
                # adopt the successor MTMW off the overlay wire before
                # its host processes the LEAVE and stops this flow.
                # Retry on the next tick (the stop lands moments later).
                self.backpressured += 1
                break
            self.messages_sent += 1
            self._credit -= self.size_bytes
        sim.schedule(self.tick_interval, self._tick)


class PoissonTraffic:
    """Messages with exponential inter-arrival times (bursty monitoring)."""

    def __init__(
        self,
        network: OverlayNetwork,
        source: NodeId,
        dest: NodeId,
        rate_msgs_per_sec: float,
        size_bytes: int = 1000,
        priority: Optional[int] = None,
        semantics: Semantics = Semantics.PRIORITY,
        method: Optional[DisseminationMethod] = None,
    ):
        if rate_msgs_per_sec <= 0:
            raise ConfigurationError("rate must be positive")
        self.network = network
        self.source = source
        self.dest = dest
        self.rate = rate_msgs_per_sec
        self.size_bytes = size_bytes
        self.priority = priority
        self.semantics = semantics
        self.method = method or DisseminationMethod.flooding()
        self.running = False
        self.messages_sent = 0
        # A per-instance namespaced stream: the first generator on a flow
        # keeps the historical ``poisson:src->dst`` stream (seeded runs
        # stay byte-identical), while further instances on the same flow
        # draw from independent ``#n`` substreams instead of interleaving.
        self._rng = network.sim.rngs.instance_stream(f"poisson:{source}->{dest}")

    def start(self) -> None:
        """Begin generating Poisson arrivals."""
        self.running = True
        self._arm()

    def stop(self) -> None:
        """Stop generating arrivals."""
        self.running = False

    def _arm(self) -> None:
        self.network.sim.schedule(self._rng.expovariate(self.rate), self._fire)

    def _fire(self) -> None:
        if not self.running:
            return
        node = self.network.node(self.source)
        if not node.crashed:
            if self.semantics is Semantics.PRIORITY:
                node.send_priority(
                    self.dest, size_bytes=self.size_bytes,
                    priority=self.priority, method=self.method,
                )
                self.messages_sent += 1
            else:
                if node.send_reliable(
                    self.dest, size_bytes=self.size_bytes, method=self.method
                ):
                    self.messages_sent += 1
        self._arm()


class ReliableBacklogTraffic:
    """Send exactly ``count`` reliable messages as fast as back-pressure
    allows (a file-transfer-like workload)."""

    def __init__(
        self,
        network: OverlayNetwork,
        source: NodeId,
        dest: NodeId,
        count: int,
        size_bytes: int = 1186,
        method: Optional[DisseminationMethod] = None,
        retry_interval: float = 0.02,
    ):
        self.network = network
        self.source = source
        self.dest = dest
        self.count = count
        self.size_bytes = size_bytes
        self.method = method or DisseminationMethod.flooding()
        self.retry_interval = retry_interval
        self.sent = 0

    def start(self) -> None:
        """Begin draining the backlog as back-pressure allows."""
        self._tick()

    def _tick(self) -> None:
        node = self.network.node(self.source)
        while self.sent < self.count and not node.crashed and node.send_reliable(
            self.dest, size_bytes=self.size_bytes, method=self.method
        ):
            self.sent += 1
        if self.sent < self.count:
            self.network.sim.schedule(self.retry_interval, self._tick)

    @property
    def done(self) -> bool:
        return self.sent >= self.count
