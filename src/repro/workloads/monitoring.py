"""The cloud-monitoring workload (Section VI-C).

"The monitoring messages provide a real-time view of the cloud, updating
every 1-3 seconds depending on the type of information.  This view
contains detailed information regarding the status of data centers, the
network characteristics (e.g. latency, bandwidth, loss rate) of links
between data centers, the status of cloud access points (i.e. clients),
and the service characteristics that each client-generated task
receives."

:class:`MonitoringWorkload` generates that traffic shape: every overlay
node periodically reports several message classes toward one or more
monitoring sinks, using Priority Messaging ("as it provides the necessary
semantics for monitoring"), with the dissemination method selectable so a
run can alternate K-Paths and Constrained Flooding like the shadow
deployment did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ProtocolError
from repro.overlay.config import DisseminationMethod
from repro.overlay.network import OverlayNetwork
from repro.topology.graph import NodeId


@dataclass(frozen=True)
class MonitoringMessageClass:
    """One class of monitoring information."""

    name: str
    period: float          # seconds between updates
    size_bytes: int
    priority: int


#: The four message classes described in Section VI-C.  Sizes follow the
#: observed pattern "most messages below 3500 bytes".
DEFAULT_CLASSES: Sequence[MonitoringMessageClass] = (
    MonitoringMessageClass("datacenter-status", period=1.0, size_bytes=600, priority=9),
    MonitoringMessageClass("link-characteristics", period=1.0, size_bytes=1400, priority=7),
    MonitoringMessageClass("client-status", period=2.0, size_bytes=2600, priority=5),
    MonitoringMessageClass("task-service", period=3.0, size_bytes=3400, priority=3),
)


class MonitoringWorkload:
    """Every node reports every message class to the monitoring sinks."""

    def __init__(
        self,
        network: OverlayNetwork,
        sinks: Sequence[NodeId],
        classes: Sequence[MonitoringMessageClass] = DEFAULT_CLASSES,
        method: Optional[DisseminationMethod] = None,
        jitter: float = 0.2,
        explicit_routes: Optional[dict] = None,
    ):
        self.network = network
        self.sinks = list(sinks)
        self.classes = list(classes)
        self.method = method or DisseminationMethod.k_paths(2)
        self.jitter = jitter
        #: (reporter, sink) -> explicit node path.  Used to emulate a
        #: production monitoring system "with other routing
        #: considerations" (e.g. min-hop instead of min-latency routes).
        self.explicit_routes = explicit_routes or {}
        self.running = False
        self.messages_sent = 0
        #: Reports skipped because the reporter had no usable path to a
        #: sink (e.g. it was partitioned off during a chaos run).  The
        #: reporter stays scheduled and resumes once routing heals.
        self.reports_shed = 0
        self._rng = network.sim.rngs.stream("monitoring-workload")

    def start(self) -> None:
        """Begin periodic reporting from every non-sink node."""
        self.running = True
        for node_id in self.network.nodes:
            if node_id in self.sinks:
                continue
            for message_class in self.classes:
                phase = self._rng.random() * message_class.period
                self.network.sim.schedule(
                    phase, self._report, node_id, message_class
                )

    def stop(self) -> None:
        """Stop generating reports."""
        self.running = False

    def set_method(self, method: DisseminationMethod) -> None:
        """Switch dissemination on the fly ("we alternated between using
        K-Paths (with K=2) and Constrained Flooding")."""
        self.method = method

    def _report(self, node_id: NodeId, message_class: MonitoringMessageClass) -> None:
        if not self.running:
            return
        node = self.network.node(node_id)
        if not node.crashed:
            for sink in self.sinks:
                route = self.explicit_routes.get((node_id, sink))
                try:
                    node.send_priority(
                        sink,
                        size_bytes=message_class.size_bytes,
                        priority=message_class.priority,
                        method=self.method,
                        expire_after=3 * message_class.period,
                        payload=message_class.name,
                        explicit_paths=(tuple(route),) if route else None,
                    )
                except ProtocolError:
                    self.reports_shed += 1
                else:
                    self.messages_sent += 1
        delay = message_class.period * (
            1.0 + self.jitter * (self._rng.random() - 0.5)
        )
        self.network.sim.schedule(delay, self._report, node_id, message_class)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def view_staleness(self, sink: NodeId, at_time: float) -> List[float]:
        """Per-reporting-node staleness of the sink's real-time view.

        For each non-sink node, the age (at ``at_time``) of the newest
        ``datacenter-status`` delivery the sink has received from it.
        The production monitoring system's staleness is bounded by the
        reporting period; the shadow network matches it when delivery is
        timely.
        """
        out: List[float] = []
        for node_id in self.network.nodes:
            if node_id in self.sinks:
                continue
            recorder = self.network.flow_latency(node_id, sink)
            newest = None
            for delivery_time, _ in reversed(recorder.samples):
                if delivery_time <= at_time:
                    newest = delivery_time
                    break
            out.append(at_time - newest if newest is not None else float("inf"))
        return out
