"""Workload generators and the experiment harness.

* :mod:`repro.workloads.traffic` — constant-bit-rate, Poisson, and
  saturating traffic generators over both messaging semantics;
* :mod:`repro.workloads.monitoring` — the cloud-monitoring workload of
  Section VI-C (periodic status updates every 1-3 seconds at several
  priority levels);
* :mod:`repro.workloads.experiment` — the scaled-deployment experiment
  harness the benchmarks use to regenerate the paper's tables/figures.
"""

from repro.workloads.experiment import Deployment, SCALE
from repro.workloads.monitoring import MonitoringWorkload
from repro.workloads.traffic import CbrTraffic, PoissonTraffic, ReliableBacklogTraffic

__all__ = [
    "CbrTraffic",
    "PoissonTraffic",
    "ReliableBacklogTraffic",
    "MonitoringWorkload",
    "Deployment",
    "SCALE",
]
