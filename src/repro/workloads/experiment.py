"""The scaled-deployment experiment harness.

The paper's deployment runs 10 Mbps overlay links for minutes of wall
time; simulating that verbatim in Python would cost tens of millions of
events per figure.  Every benchmark therefore runs a *scaled* deployment:
link capacity is divided by :data:`SCALE` (10 by default, i.e. 1 Mbps
links) and offered loads are scaled identically, so every ratio the paper
reports — goodput relative to capacity, fair shares, cost in hops —
is preserved while event counts drop by the same factor.  Results are
reported both in scaled Mbps and normalized to link capacity.

:class:`Deployment` bundles the global-cloud network with the helpers
every experiment needs (flows, meters, attack drivers).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.byzantine.attacks import SaturationFlow
from repro.faults.chaos import ChaosEngine
from repro.faults.invariants import InvariantMonitor
from repro.faults.schedule import ChaosSpec, FaultSchedule
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.resilience.adaptive import AdaptiveDefense, SimRecoveryActuator
from repro.topology import global_cloud
from repro.topology.graph import NodeId, Topology
from repro.workloads.traffic import CbrTraffic

#: Capacity scale-down factor versus the paper's 10 Mbps links.
SCALE = 10.0

#: Scaled per-link capacity in bit/s.
SCALED_LINK_BPS = global_cloud.LINK_CAPACITY_BPS / SCALE

#: Payload size chosen so a message occupies 1250 wire bytes
#: (64 header + 256 signature-equivalent + 48 PoR framing govern the rest);
#: "most messages below 3500 bytes".
DEFAULT_PAYLOAD = 882

#: Wire bytes per data message with the default payload.
WIRE_BYTES = DEFAULT_PAYLOAD + 64 + 256 + 48


@dataclasses.dataclass
class FlowResult:
    """Measured result for one flow."""

    source: NodeId
    dest: NodeId
    goodput_mbps: float
    goodput_fraction_of_capacity: float
    mean_latency: float
    delivered: int


class Deployment:
    """A scaled instance of the paper's 12-data-center deployment."""

    def __init__(
        self,
        config: Optional[OverlayConfig] = None,
        seed: int = 0,
        topology: Optional[Topology] = None,
    ):
        self.topology = topology or global_cloud.topology()
        self.config = config or OverlayConfig(link_bandwidth_bps=SCALED_LINK_BPS)
        self.seed = seed
        self.network = OverlayNetwork.build(self.topology, self.config, seed=seed)
        self.link_capacity_bps = self.config.link_bandwidth_bps or SCALED_LINK_BPS
        self.traffic: List[CbrTraffic] = []
        self.attacks: List[SaturationFlow] = []
        self.chaos: Optional[ChaosEngine] = None
        self.monitor: Optional[InvariantMonitor] = None
        self.defense: Optional[AdaptiveDefense] = None

    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.network.sim

    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds``."""
        self.network.run(seconds)

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def add_flow(
        self,
        source: NodeId,
        dest: NodeId,
        rate_fraction: float = 1.0,
        semantics: Semantics = Semantics.PRIORITY,
        method: Optional[DisseminationMethod] = None,
        priority: Optional[int] = None,
        priority_cycle: Optional[list] = None,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
    ) -> CbrTraffic:
        """A flow offering ``rate_fraction`` × link capacity."""
        flow = CbrTraffic(
            self.network,
            source,
            dest,
            rate_bps=rate_fraction * self.link_capacity_bps,
            size_bytes=DEFAULT_PAYLOAD,
            priority=priority,
            priority_cycle=priority_cycle,
            semantics=semantics,
            method=method,
        )
        flow.schedule(start_at, stop_at)
        self.traffic.append(flow)
        return flow

    def add_attack_flow(
        self,
        source: NodeId,
        dest: NodeId,
        rate_fraction: float = 1.0,
        semantics: Semantics = Semantics.PRIORITY,
        method: Optional[DisseminationMethod] = None,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
    ) -> SaturationFlow:
        """A compromised source saturating the network (priority 10)."""
        attack = SaturationFlow(
            self.network,
            source,
            dest,
            rate_bps=rate_fraction * self.link_capacity_bps,
            size_bytes=DEFAULT_PAYLOAD,
            semantics=semantics,
            method=method or DisseminationMethod.flooding(),
        )
        attack.schedule(start_at, stop_at)
        self.attacks.append(attack)
        return attack

    # ------------------------------------------------------------------
    # Chaos
    # ------------------------------------------------------------------
    def add_chaos(
        self,
        spec: ChaosSpec,
        seed: Optional[int] = None,
        monitor: bool = True,
    ) -> FaultSchedule:
        """Arm a chaos schedule (and, by default, the invariant monitor)
        against this deployment.  The schedule seed defaults to the
        deployment seed, so a deployment is chaos-reproducible from a
        single number.  Returns the generated schedule."""
        schedule = spec.generate(
            self.topology, seed=self.seed if seed is None else seed
        )
        self.chaos = ChaosEngine(self.network, schedule)
        self.chaos.arm()
        if monitor:
            self.monitor = InvariantMonitor(self.network)
            self.monitor.arm()
        return schedule

    # ------------------------------------------------------------------
    # Defense
    # ------------------------------------------------------------------
    def add_defense(
        self,
        adaptive: bool = True,
        config=None,
        period: Optional[float] = None,
        downtime: Optional[float] = None,
    ) -> AdaptiveDefense:
        """Arm the feedback-controlled defense (or, with
        ``adaptive=False``, its fixed-rotation baseline with identical
        downtime accounting).  Call after :meth:`add_chaos` so the
        controller folds the armed monitor's violations into its
        beliefs."""
        self.defense = AdaptiveDefense(
            self.network,
            SimRecoveryActuator(self.network),
            config=config,
            adaptive=adaptive,
            monitor=self.monitor,
            period=period,
            downtime=downtime,
        )
        self.defense.start()
        return self.defense

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def flow_result(
        self, source: NodeId, dest: NodeId, window: Tuple[float, float]
    ) -> FlowResult:
        """Goodput/latency summary for one flow over a time window."""
        meter = self.network.flow_goodput(source, dest)
        recorder = self.network.flow_latency(source, dest)
        mbps = meter.average_mbps(*window)
        return FlowResult(
            source=source,
            dest=dest,
            goodput_mbps=mbps,
            goodput_fraction_of_capacity=mbps * 1e6 / self.link_capacity_bps,
            mean_latency=recorder.mean(),
            delivered=recorder.count,
        )

    def goodput_series(self, source: NodeId, dest: NodeId) -> List[Tuple[float, float]]:
        """Per-interval goodput series of one flow (Mbps)."""
        return self.network.flow_goodput(source, dest).series()

    def aggregate_goodput_mbps(
        self, flows: Sequence[Tuple[NodeId, NodeId]], window: Tuple[float, float]
    ) -> float:
        """Summed goodput of several flows over a window."""
        return sum(
            self.network.flow_goodput(s, d).average_mbps(*window) for s, d in flows
        )

    def dissemination_cost(self) -> float:
        """Measured average hops per *delivered* message.

        Total data transmissions divided by unique deliveries — the
        paper's accounting: "the Priority Flooding cost includes messages
        that traverse part of the network but do not arrive at the
        destination due to contention" (those partial traversals are
        charged against the messages that do arrive).  For Reliable
        Messaging every accepted message is eventually delivered, so this
        equals cost-per-sent-message in steady state.
        """
        delivered = self.network.stats.counter("messages_delivered").value
        transmitted = self.network.stats.counter("data_transmissions").value
        if delivered == 0:
            return 0.0
        return transmitted / delivered

    def fair_share_mbps(self, active_sources: int) -> float:
        """The guaranteed fair share of one source (Theorem, Section V-C1),
        expressed in application goodput: the per-source share of the
        bottleneck link, discounted by the payload/wire ratio (headers,
        signature, and PoR framing also occupy the link)."""
        efficiency = DEFAULT_PAYLOAD / WIRE_BYTES
        return self.link_capacity_bps * efficiency / active_sources / 1e6
