"""The five hot-path microbenchmarks behind ``python -m repro perfbench``.

Each benchmark exercises one path the figure benchmarks spend their time
in, at a fixed seed and with all per-operation resources (messages,
networks, routing state) prepared before timing starts:

``message_forwarding``
    An intermediate node's full receive-and-forward pipeline for K-paths
    source-routed priority messages: signature verification, duplicate
    suppression, path-successor lookup, and the per-link queue offer —
    across *two* consecutive hops per operation, so per-message caches
    (signed fields, uid, verify verdict) are exercised the way real
    multi-hop dissemination exercises them.  The PoR windows are kept
    full so the benchmark measures the forwarding decision path, not the
    link serialization model.
``flooding_fanout``
    Constrained-flooding target selection over an 8-neighbor map with
    telemetry counters attached.
``kpaths_computation``
    K node-disjoint path computation on the 12-node global-cloud routing
    view, cycling the five evaluation flows, with a link-state update
    accepted every 256 operations (steady-state routing: queries vastly
    outnumber invalidations).
``por_roundtrip``
    One full Proof-of-Receipt round trip (data + nonce-proof cumulative
    ACK) over zero-latency simulated channels, including the engine's
    timer churn (RTO arm/cancel per packet).
``pq_eviction``
    Priority-queue offers at capacity across 8 competing sources, forcing
    the heaviest-source eviction scan on every operation.
``wire_batch_codec``
    Round trip of one 8-frame batch datagram through the zero-copy wire
    codec (encode into the shared buffer pool, decode via memoryview
    slicing) — the per-wakeup unit of the batched live transport.
``mac_batch_verify``
    HMAC-SHA256 verification of an 8-packet batch through the amortized
    :class:`~repro.crypto.mac.BatchMacContext` (one key schedule per
    link, one context copy per packet).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.perf.harness import Benchmark, BenchResult, build_report, calibrate, run_benchmark


class MessageForwardingBench(Benchmark):
    """Two-hop forwarding of K-paths priority messages at an interior node."""

    name = "message_forwarding"
    quick_ops = 2_000
    full_ops = 20_000

    def setup(self, seed: int, total_ops: int) -> None:
        from repro.link.por import PorConfig
        from repro.messaging.message import Message, Semantics
        from repro.overlay.config import OverlayConfig
        from repro.overlay.network import OverlayNetwork
        from repro.topology import global_cloud

        config = OverlayConfig(
            link_bandwidth_bps=None,
            por=PorConfig(window=1),
            priority_queue_capacity=2 * total_ops + 16,
        )
        net = OverlayNetwork.build(global_cloud.topology(), config, seed=seed)
        source, dest, paths = self._pick_route(net)
        # Keep every PoR window full so pump() exits immediately: the
        # benchmark times the forwarding decision, not channel pacing.
        first, second = paths[0][1], paths[0][2]
        self._hop_nodes = (net.node(first), net.node(second))
        self._from_neighbors = (paths[0][0], first)
        for node in self._hop_nodes:
            for link in node.links.values():
                link.por.send("warm", 8)
        signature_size = net.pki.signature_wire_size
        self._messages = [
            Message(
                source=source,
                dest=dest,
                seq=i + 1,
                semantics=Semantics.PRIORITY,
                priority=5,
                expiration=1e9,
                size_bytes=512,
                flooding=False,
                paths=paths,
                sent_at=0.0,
            ).sign(net.pki)
            for i in range(total_ops)
        ]
        self._size = self._messages[0].wire_size(signature_size)
        self._net = net  # keep the simulator (and its queues) alive

    @staticmethod
    def _pick_route(net: Any) -> Tuple[Any, Any, Tuple[Tuple[Any, ...], ...]]:
        """First flow (sorted order) whose primary path has 2+ interior hops."""
        nodes = sorted(net.nodes)
        for source in nodes:
            routing = net.node(source).routing
            for dest in nodes:
                if dest == source:
                    continue
                paths = routing.k_paths_best_effort(source, dest, 2)
                if paths and len(paths[0]) >= 4:
                    return source, dest, tuple(tuple(p) for p in paths)
        raise RuntimeError("no multi-hop route in the benchmark topology")

    def op(self, i: int) -> None:
        message = self._messages[i]
        size = self._size
        (first, second) = self._hop_nodes
        (from_first, from_second) = self._from_neighbors
        first.on_link_deliver(from_first, message, size)
        second.on_link_deliver(from_second, message, size)


class FloodingFanoutBench(Benchmark):
    """Constrained-flooding fanout selection with telemetry attached."""

    name = "flooding_fanout"
    quick_ops = 5_000
    full_ops = 50_000

    def setup(self, seed: int, total_ops: int) -> None:
        from repro.dissemination.flooding import flood_targets
        from repro.telemetry.metrics import MetricsRegistry

        self._flood_targets = flood_targets
        self._metrics = MetricsRegistry()
        self._neighbors = {f"n{k}": None for k in range(8)}
        self._arrivals = [f"n{k % 8}" for k in range(total_ops)]

    def op(self, i: int) -> None:
        self._flood_targets(
            self._neighbors, self._arrivals[i], naive=False, metrics=self._metrics
        )


class KPathsBench(Benchmark):
    """K-disjoint path queries on the global-cloud routing view."""

    name = "kpaths_computation"
    quick_ops = 1_000
    full_ops = 8_000

    #: One accepted link-state update (cache invalidation) per this many
    #: path queries — routing updates are rare next to data messages.
    INVALIDATE_EVERY = 256

    def setup(self, seed: int, total_ops: int) -> None:
        from repro.crypto.pki import Pki, PkiMode
        from repro.routing.link_state import LinkStateUpdate
        from repro.routing.state import RoutingState
        from repro.topology import global_cloud
        from repro.topology.mtmw import Mtmw

        topo = global_cloud.topology()
        pki = Pki(mode=PkiMode.SIMULATED, seed=seed)
        for node_id in topo.nodes:
            pki.register(node_id)
        mtmw = Mtmw.create(topo, pki)
        self._routing = RoutingState(mtmw, pki)
        self._pairs = list(global_cloud.EVALUATION_FLOWS)
        edges = sorted(topo.edges())
        self._updates: List[Any] = []
        seqno = 0
        for n in range(total_ops // self.INVALIDATE_EVERY + 2):
            a, b = edges[n % len(edges)]
            seqno += 1
            floor = mtmw.min_weight(a, b)
            weight = floor * (3.0 if n % 2 == 0 else 1.0)
            self._updates.append(LinkStateUpdate.create(pki, a, a, b, weight, seqno))
        self._applied = 0

    def op(self, i: int) -> None:
        source, dest = self._pairs[i % len(self._pairs)]
        self._routing.k_paths_best_effort(source, dest, 2)

    def tick(self, i: int) -> None:
        if (i + 1) % self.INVALIDATE_EVERY == 0:
            update = self._updates[self._applied]
            self._applied += 1
            # Each update arrives well-spaced so the per-issuer rate
            # limiter never interferes with the cache-invalidation path.
            self._routing.apply_update(update, now=float(self._applied))


class PorRoundtripBench(Benchmark):
    """One data + cumulative-ACK round trip on a Proof-of-Receipt link."""

    name = "por_roundtrip"
    quick_ops = 2_000
    full_ops = 15_000

    def setup(self, seed: int, total_ops: int) -> None:
        from repro.crypto.pki import Pki, PkiMode
        from repro.link.por import connect_por_pair
        from repro.sim.channel import Channel, ChannelConfig
        from repro.sim.engine import Simulator

        sim = Simulator(seed=seed)
        pki = Pki(mode=PkiMode.SIMULATED, seed=seed)
        pki.register("a")
        pki.register("b")
        channel_config = ChannelConfig(latency=0.0, bandwidth_bps=None)
        ab = Channel(sim, channel_config, name="a->b")
        ba = Channel(sim, channel_config, name="b->a")
        end_a, end_b = connect_por_pair(sim, "a", "b", ab, ba, pki)
        end_b.on_deliver = lambda payload, size: None
        self._sim = sim
        self._end_a = end_a

    def op(self, i: int) -> None:
        sim = self._sim
        self._end_a.send(i, 100)
        sim.run(until=sim.now + 1e-6)


class PqEvictionBench(Benchmark):
    """Priority-queue offers at capacity, forcing eviction every time."""

    name = "pq_eviction"
    quick_ops = 3_000
    full_ops = 25_000

    CAPACITY = 256
    SOURCES = 8

    def setup(self, seed: int, total_ops: int) -> None:
        from repro.messaging.message import Message, Semantics
        from repro.messaging.priority import PriorityLinkQueue

        self._queue = PriorityLinkQueue(self.CAPACITY)
        self._messages = [
            Message(
                source=f"s{i % self.SOURCES}",
                dest="sink",
                seq=i,
                semantics=Semantics.PRIORITY,
                priority=1 + i % 10,
            )
            for i in range(total_ops + self.CAPACITY)
        ]
        for i in range(self.CAPACITY):
            self._queue.offer(self._messages[total_ops + i], now=0.0)

    def op(self, i: int) -> None:
        self._queue.offer(self._messages[i], now=0.0)
        if i % 4 == 0:
            self._queue.next_message(0.0)


class WireBatchCodecBench(Benchmark):
    """Encode + decode one 8-frame batch datagram (zero-copy wire path)."""

    name = "wire_batch_codec"
    quick_ops = 2_000
    full_ops = 20_000

    BATCH = 8

    def setup(self, seed: int, total_ops: int) -> None:
        import random

        from repro.crypto.pki import Pki, PkiMode
        from repro.link.por import PorData
        from repro.messaging.message import Message, Semantics
        from repro.runtime.wire import decode_datagram, encode_batch_datagram

        self._encode = encode_batch_datagram
        self._decode = decode_datagram
        rng = random.Random(seed)
        pki = Pki(mode=PkiMode.SIMULATED, seed=seed)
        pki.register("a")
        # Distinct payload bytes per frame so the codec sees realistic
        # (uncompressible, non-interned) traffic.
        self._batches = [
            [
                PorData(
                    0,
                    b * self.BATCH + k,
                    rng.randbytes(8),
                    Message(
                        source="a",
                        dest="b",
                        seq=b * self.BATCH + k,
                        semantics=Semantics.PRIORITY,
                        priority=5,
                        expiration=1e9,
                        size_bytes=512,
                        flooding=False,
                        paths=(("a", "b"),),
                        sent_at=0.0,
                        payload=rng.randbytes(200),
                    ).sign(pki),
                    256,
                )
                for k in range(self.BATCH)
            ]
            for b in range(64)
        ]

    def op(self, i: int) -> None:
        self._decode(self._encode("a", "b", self._batches[i % 64]))


class MacBatchVerifyBench(Benchmark):
    """Amortized HMAC-SHA256 verification of an 8-packet batch."""

    name = "mac_batch_verify"
    quick_ops = 2_000
    full_ops = 20_000

    BATCH = 8

    def setup(self, seed: int, total_ops: int) -> None:
        import random

        from repro.crypto.mac import BatchMacContext

        rng = random.Random(seed)
        ctx = BatchMacContext(rng.randbytes(32))
        self._ctx = ctx
        messages = [rng.randbytes(256) for _ in range(self.BATCH * 64)]
        self._pairs = [
            [(m, ctx.tag(m)) for m in messages[b * self.BATCH : (b + 1) * self.BATCH]]
            for b in range(64)
        ]

    def op(self, i: int) -> None:
        verdicts = self._ctx.verify_batch(self._pairs[i % 64])
        if not all(verdicts):
            raise RuntimeError("batch MAC verification failed")


#: Registry: stable name -> benchmark class, in report order.
BENCHMARKS: Dict[str, Type[Benchmark]] = {
    bench.name: bench
    for bench in (
        MessageForwardingBench,
        FloodingFanoutBench,
        KPathsBench,
        PorRoundtripBench,
        PqEvictionBench,
        WireBatchCodecBench,
        MacBatchVerifyBench,
    )
}


#: Measurement repetitions per benchmark; the best run is reported.
#: Like the calibration loop, taking the best of several runs filters
#: transient interference (noisy neighbors, frequency ramps, preemption)
#: and converges on what the code can actually do on this machine.
FULL_REPEATS = 3
QUICK_REPEATS = 2


def run_suite(mode: str = "full", seed: int = 0) -> Dict[str, Any]:
    """Run every registered benchmark; returns the BENCH_perf payload."""
    if mode not in ("quick", "full"):
        raise ValueError(f"unknown perfbench mode {mode!r}")
    repeats = QUICK_REPEATS if mode == "quick" else FULL_REPEATS
    results: List[BenchResult] = []
    for bench_cls in BENCHMARKS.values():
        best: Optional[BenchResult] = None
        for _ in range(repeats):
            bench = bench_cls()
            ops = bench.quick_ops if mode == "quick" else bench.full_ops
            result = run_benchmark(bench, ops, seed=seed)
            if best is None or result.ops_per_sec > best.ops_per_sec:
                best = result
        results.append(best)
    return build_report(results, mode=mode, seed=seed, calibration=calibrate())
