"""Hot-path microbenchmark harness (``python -m repro perfbench``).

:mod:`repro.perf.harness` provides the timing/reporting machinery;
:mod:`repro.perf.suites` registers the five benchmarks covering message
forwarding, flooding fanout, K-paths computation, PoR round trips, and
priority-queue eviction.
"""

from repro.perf.harness import (
    BenchResult,
    Benchmark,
    attach_pre_pr,
    build_report,
    calibrate,
    compare_to_baseline,
    run_benchmark,
)
from repro.perf.suites import BENCHMARKS, run_suite

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "Benchmark",
    "attach_pre_pr",
    "build_report",
    "calibrate",
    "compare_to_baseline",
    "run_benchmark",
    "run_suite",
]
