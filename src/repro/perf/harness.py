"""Microbenchmark harness for the overlay's hot paths.

Each benchmark is a :class:`Benchmark` subclass that prepares all of its
per-operation resources up front (``setup``), then runs one hot-path
operation per ``op(i)`` call.  The harness times every operation
individually with :func:`repro.telemetry.profiling.wall_clock` (the only
sanctioned wall-clock read outside the live runtime), so it can report
both throughput (ops/sec) and tail latency (p50/p99 microseconds) per
path.  Untimed housekeeping between operations goes in ``tick(i)``.

Cross-machine comparison: absolute ops/sec numbers are meaningless
between a laptop and a CI runner, so every report carries a
``calibration_ops_per_sec`` figure from a fixed pure-Python loop.  The
regression gate (:func:`compare_to_baseline`) scales the baseline's
numbers by the calibration ratio before comparing, which makes a ">25 %
regression" check meaningful even when the hardware changed.
"""

from __future__ import annotations

import gc
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.profiling import wall_clock

#: Untimed operations executed before measurement starts (cache warmup,
#: allocator steady state).  Benchmarks must prepare ``WARMUP_OPS + ops``
#: per-operation resources.
WARMUP_OPS = 32

#: Iterations of the calibration loop (fixed: results are comparable only
#: across runs using the same constant).
CALIBRATION_ITERS = 200_000

#: Seconds of busy-spin before every timed section.  Frequency-scaling
#: governors clock an idle core down; without a sustained-load lead-in the
#: first benchmark of a run measures the ramp, not the steady state.
SPIN_UP_SECONDS = 0.25


def _spin_up() -> None:
    """Busy-spin until the CPU reaches steady-state frequency."""
    clock = wall_clock
    deadline = clock() + SPIN_UP_SECONDS
    acc = 0
    while clock() < deadline:
        for i in range(1_000):
            acc += i
    if acc < 0:  # pragma: no cover - keeps the loop from being elided
        raise AssertionError


@dataclass
class BenchResult:
    """Outcome of one benchmark: throughput and per-op latency tail."""

    name: str
    ops: int
    wall_seconds: float
    ops_per_sec: float
    p50_us: float
    p99_us: float

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form suitable for JSON serialization."""
        return asdict(self)


class Benchmark:
    """One timed hot path.  Subclasses override ``setup`` and ``op``."""

    #: Stable registry key (also the JSON key in BENCH_perf.json).
    name = "benchmark"
    #: Timed operations in ``--quick`` and full mode.
    quick_ops = 500
    full_ops = 5_000

    def setup(self, seed: int, total_ops: int) -> None:
        """Prepare ``total_ops`` operations' worth of resources."""

    def op(self, i: int) -> None:
        """Run the i-th timed operation."""
        raise NotImplementedError

    def tick(self, i: int) -> None:
        """Untimed housekeeping after the i-th operation (optional)."""


#: Calibration rounds; the best round is reported.  Taking the max makes
#: the figure robust against transient interference (noisy-neighbor VMs,
#: scheduler preemption): it reflects what the machine can do, which is
#: the right scale factor for cross-machine comparison.
CALIBRATION_ROUNDS = 3


def calibrate() -> float:
    """Machine-speed reference: ops/sec of a fixed pure-Python loop."""
    _spin_up()
    clock = wall_clock
    best = 0.0
    for _ in range(CALIBRATION_ROUNDS):
        acc = 0
        start = clock()
        for i in range(CALIBRATION_ITERS):
            acc += i * i % 7
        elapsed = clock() - start
        if acc < 0:  # pragma: no cover - keeps the loop from being elided
            raise AssertionError
        best = max(best, CALIBRATION_ITERS / max(elapsed, 1e-9))
    return best


def run_benchmark(bench: Benchmark, ops: int, seed: int = 0) -> BenchResult:
    """Set up and run one benchmark for ``ops`` timed operations."""
    bench.setup(seed, WARMUP_OPS + ops)
    _spin_up()
    clock = wall_clock
    run_op = bench.op
    run_tick = bench.tick
    for i in range(WARMUP_OPS):
        run_op(i)
        run_tick(i)
    samples: List[float] = []
    record = samples.append
    # Collect garbage left by setup/earlier benchmarks, then keep the
    # collector out of the timed section: a gen-2 pass landing inside an
    # op would be charged to whichever benchmark happened to trigger it.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for i in range(WARMUP_OPS, WARMUP_OPS + ops):
            start = clock()
            run_op(i)
            record(clock() - start)
            run_tick(i)
    finally:
        if gc_was_enabled:
            gc.enable()
    total = sum(samples)
    samples.sort()
    p50 = samples[(ops - 1) // 2]
    p99 = samples[min(ops - 1, (ops * 99) // 100)]
    return BenchResult(
        name=bench.name,
        ops=ops,
        wall_seconds=total,
        ops_per_sec=ops / max(total, 1e-12),
        p50_us=p50 * 1e6,
        p99_us=p99 * 1e6,
    )


def build_report(
    results: List[BenchResult], mode: str, seed: int, calibration: float
) -> Dict[str, Any]:
    """Assemble the BENCH_perf.json payload from benchmark results."""
    return {
        "version": 1,
        "mode": mode,
        "seed": seed,
        "calibration_ops_per_sec": calibration,
        "benchmarks": {r.name: r.to_dict() for r in results},
    }


def attach_pre_pr(report: Dict[str, Any], pre_pr: Dict[str, Any]) -> None:
    """Record a pre-PR measurement (same harness, unoptimized code) inside
    ``report`` together with the resulting speedups; mutates ``report``.

    Speedups are calibration-corrected — the same machine-speed scaling
    the regression gate applies — so a pre/post pair taken in different
    load windows still compares code, not transient machine state."""
    pre_benchmarks = pre_pr.get("benchmarks", {})
    scale = 1.0
    pre_cal = pre_pr.get("calibration_ops_per_sec")
    cur_cal = report.get("calibration_ops_per_sec")
    if pre_cal and cur_cal:
        scale = pre_cal / cur_cal
    report["pre_pr_ops_per_sec"] = {
        name: result["ops_per_sec"] for name, result in pre_benchmarks.items()
    }
    report["pre_pr_calibration_ops_per_sec"] = pre_cal
    report["speedup_vs_pre_pr"] = {
        name: scale * report["benchmarks"][name]["ops_per_sec"] / result["ops_per_sec"]
        for name, result in pre_benchmarks.items()
        if name in report["benchmarks"] and result["ops_per_sec"] > 0
    }


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.25,
) -> List[Tuple[str, float, bool]]:
    """Check ``report`` against a committed baseline.

    Returns ``(name, ratio, ok)`` per benchmark present in both, where
    ``ratio`` is current/baseline ops/sec after scaling the baseline by
    the machine-speed calibration ratio.  ``ok`` is False when the path
    regressed by more than ``max_regression``.
    """
    scale = 1.0
    base_cal = baseline.get("calibration_ops_per_sec")
    cur_cal = report.get("calibration_ops_per_sec")
    if base_cal and cur_cal:
        scale = cur_cal / base_cal
    rows: List[Tuple[str, float, bool]] = []
    for name, base in sorted(baseline.get("benchmarks", {}).items()):
        current: Optional[Dict[str, Any]] = report["benchmarks"].get(name)
        if current is None:
            rows.append((name, 0.0, False))
            continue
        expected = base["ops_per_sec"] * scale
        ratio = current["ops_per_sec"] / max(expected, 1e-12)
        rows.append((name, ratio, ratio >= 1.0 - max_regression))
    return rows
