"""The discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Components schedule callbacks with :meth:`Simulator.schedule` (a
relative delay) or :meth:`Simulator.schedule_at` (an absolute time) and the
engine executes them in timestamp order.  Ties are broken by scheduling
order, which keeps runs fully deterministic.

The engine is intentionally minimal: no processes, no coroutines — just
callbacks.  Higher layers (links, CPU models, protocol timers) build their
own abstractions on top.

:class:`Simulator` is the simulated implementation of the
:class:`repro.runtime.interfaces.SchedulerLike` seam (``now`` /
``schedule`` / ``schedule_at`` / ``call_soon`` / ``rngs``); the live
runtime's :class:`repro.runtime.scheduler.AsyncioScheduler` implements
the same surface over a real event loop.  :class:`PeriodicTimer` is
written against the seam, so protocol heartbeats run unchanged on both.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    from repro.runtime.interfaces import CancellableHandle, SchedulerLike


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "on_cancel", "transient")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Set by the owning simulator so it can keep an exact count of
        #: dead entries still sitting in its heap.
        self.on_cancel: Optional[Callable[[], None]] = None
        #: True for pool-owned events scheduled via
        #: :meth:`Simulator.schedule_transient_at`: no reference escapes
        #: to callers, so the simulator may recycle the object after it
        #: executes.
        self.transient = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the engine."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled-but-queued events don't pin memory.
        self.callback = _noop
        self.args = ()
        if self.on_cancel is not None:
            self.on_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        # Tuple-free comparison: the heap calls this O(log n) times per
        # push/pop, so avoiding two tuple allocations per call matters.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's :class:`RngRegistry`.  Every
        stochastic component derives a named substream from this seed, so
        two simulators built with the same seed and workload produce
        byte-identical histories.
    """

    #: Don't bother compacting tiny queues: below this size a sweep costs
    #: more bookkeeping than the dead entries do.
    COMPACT_MIN_QUEUE = 64

    #: Upper bound on the transient-event freelist.  Bounds memory while
    #: letting steady-state packet traffic recycle one handle per event.
    FREELIST_MAX = 256

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._events_run = 0
        self._cancelled = 0
        self._running = False
        self._profiler: Optional[Any] = None
        self._free: List[EventHandle] = []
        self.rngs = RngRegistry(seed)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, callback, args)
        handle.on_cancel = self._note_cancel
        heapq.heappush(self._queue, handle)
        return handle

    def _note_cancel(self) -> None:
        self._cancelled += 1
        # Long soaks (chaos schedules, probe backoff timers) cancel far
        # more events than they run; once dead entries dominate the heap,
        # sweep them so memory and pop costs stay proportional to live work.
        if (
            self._cancelled * 2 > len(self._queue)
            and len(self._queue) >= self.COMPACT_MIN_QUEUE
        ):
            self._compact()

    def _note_cancelled_pop(self) -> None:
        """A cancelled entry left the heap by being popped at the head.

        The single counterpart of :meth:`_note_cancel`: every dead entry
        leaves the heap either here or in :meth:`_compact`, so
        ``_cancelled`` exactly counts dead entries still queued and the
        compaction threshold cannot drift over long soaks.
        """
        self._cancelled -= 1
        if self._cancelled < 0:  # pragma: no cover - accounting invariant
            raise SimulationError("cancelled-event accounting went negative")

    def _compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify."""
        self._queue = [handle for handle in self._queue if not handle.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # Allocation-avoiding scheduling (heap-pressure reduction)
    # ------------------------------------------------------------------
    # Both paths below consume sequence numbers exactly like
    # ``schedule_at`` — one per scheduled event — so event ordering (and
    # therefore every seeded run) is byte-identical to the allocating
    # paths.  They are engine-specific extras, not part of the
    # SchedulerLike seam; substrate-generic callers discover them with
    # ``getattr`` and fall back to ``schedule_at``.

    def schedule_transient_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule a fire-and-forget event; no handle is returned.

        Because the caller provably cannot cancel (or even reference) the
        event, the engine owns the ``EventHandle`` outright and recycles
        it through a bounded freelist once it executes.  Used by the
        highest-frequency schedulers (channel packet delivery), where the
        per-event allocation of handle + args tuple dominates heap churn.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = self._seq
            handle.callback = callback
            handle.args = args
        else:
            handle = EventHandle(time, self._seq, callback, args)
            handle.transient = True
        heapq.heappush(self._queue, handle)

    def reschedule_handle(self, handle: EventHandle, time: float) -> None:
        """Re-arm an executed handle at ``time``, reusing the object.

        For strictly self-owned repeating events (:class:`PeriodicTimer`):
        the handle just popped off the heap is pushed back with a fresh
        sequence number instead of allocating a new one each tick.  The
        caller must own the handle exclusively and only call this from
        the handle's own callback (when it is out of the heap and not
        cancelled).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        if handle.cancelled:
            raise SimulationError("cannot reschedule a cancelled handle")
        self._seq += 1
        handle.time = time
        handle.seq = self._seq
        handle.on_cancel = self._note_cancel
        heapq.heappush(self._queue, handle)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the number of events executed by this call.  When ``until``
        is given the clock is advanced to ``until`` even if the queue
        drains earlier, so back-to-back ``run`` calls observe a continuous
        timeline.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._note_cancelled_pop()
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                # The handle has left the heap: detach it so a stale
                # cancel() after execution cannot inflate ``_cancelled``
                # (which would drift the compaction threshold and make
                # ``pending`` undercount live events).
                head.on_cancel = None
                self._now = head.time
                callback, args = head.callback, head.args
                profiler = self._profiler
                if profiler is None:
                    callback(*args)
                else:
                    started = time.perf_counter()
                    callback(*args)
                    profiler.record(
                        getattr(callback, "__qualname__", None)
                        or type(callback).__name__,
                        time.perf_counter() - started,
                    )
                executed += 1
                self._events_run += 1
                if head.transient and len(self._free) < self.FREELIST_MAX:
                    # Pool-owned event: no reference escaped, recycle it.
                    head.callback = _noop
                    head.args = ()
                    self._free.append(head)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def step(self) -> bool:
        """Run a single event.  Returns False if the queue was empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) queued events."""
        live = len(self._queue) - self._cancelled
        assert live >= 0, (
            f"event accounting drifted: queue={len(self._queue)} "
            f"cancelled={self._cancelled}"
        )
        return live

    @property
    def events_run(self) -> int:
        """Total number of events executed over the simulator's lifetime."""
        return self._events_run

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def enable_profiling(self, profiler: Optional[Any] = None):
        """Install (and return) an event-loop profiler.

        Every executed event is timed with ``time.perf_counter`` and
        recorded under its callback's qualified name (see
        :class:`repro.telemetry.profiling.EventLoopProfiler`).  When no
        profiler is installed the run loop pays a single ``is None``
        check per event, which is unmeasurable.
        """
        if profiler is None:
            from repro.telemetry.profiling import EventLoopProfiler

            profiler = EventLoopProfiler()
        self._profiler = profiler
        return profiler

    def disable_profiling(self) -> None:
        """Remove the installed event-loop profiler."""
        self._profiler = None

    @property
    def profiler(self) -> Optional[Any]:
        """The installed event-loop profiler, if any."""
        return self._profiler

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"


class PeriodicTimer:
    """A repeating timer that fires ``callback()`` every ``interval`` seconds.

    The first firing happens ``interval`` seconds after :meth:`start` (or
    after an optional phase offset).  Used for protocol heartbeats such as
    E2E ACK generation and link-state refresh.

    Firings stay on the absolute grid ``start + phase + n * interval``:
    each next firing is computed by multiplication from the epoch rather
    than by adding ``interval`` to the previous firing time, so
    floating-point error cannot accumulate into phase drift over long
    soaks (adding 0.1 to itself thousands of times walks off the grid;
    ``n * 0.1`` does not).
    """

    def __init__(self, sim: SchedulerLike, interval: float, callback: Callable[[], None]):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive (got {interval})")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._handle: Optional[CancellableHandle] = None
        self._epoch = 0.0
        self._ticks = 0
        # Engine-specific fast path: the simulated engine can re-arm the
        # timer's own (exclusively held) handle without allocating a new
        # event per tick.  Other SchedulerLike substrates fall back to
        # plain schedule_at.
        self._reschedule = getattr(sim, "reschedule_handle", None)

    def start(self, phase: float = 0.0) -> None:
        """Arm the timer; the first firing is ``interval + phase`` from now."""
        self.stop()
        self._epoch = self._sim.now + phase
        self._ticks = 0
        self._handle = self._sim.schedule_at(self._epoch + self._interval, self._fire)

    def stop(self) -> None:
        """Disarm the timer."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._handle is not None

    def _fire(self) -> None:
        self._ticks += 1
        next_time = self._epoch + (self._ticks + 1) * self._interval
        now = self._sim.now
        while next_time <= now:
            # The grid point already passed (a callback re-entered the
            # clock); skip forward rather than scheduling into the past.
            self._ticks += 1
            next_time = self._epoch + (self._ticks + 1) * self._interval
        handle = self._handle
        if self._reschedule is not None and handle is not None and not handle.cancelled:
            # The handle that just fired is out of the heap and exclusively
            # ours: push it back (fresh seq) instead of allocating.
            self._reschedule(handle, next_time)
        else:
            self._handle = self._sim.schedule_at(next_time, self._fire)
        self._callback()
