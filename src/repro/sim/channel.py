"""Point-to-point datagram channels.

A :class:`Channel` is a unidirectional pipe with the four properties that
matter to the paper's evaluation:

* **propagation latency** (plus optional jitter),
* **bandwidth** — packets are serialized at the configured rate, so a
  saturated channel paces senders exactly like a real 10 Mbps overlay link,
* **loss** — independent Bernoulli loss per packet (Figure 8 sweeps this
  from 0% to 50%),
* **availability** — a channel can be taken down and restored, which is how
  the resilient-underlay model (BGP hijacking, Crossfire/Coremelt) and the
  crash/partition experiments (Figure 9) act on the overlay.

Channels deliver packets FIFO.  Reordering and duplication adversaries are
modeled above this layer (see :mod:`repro.byzantine`), and the
Proof-of-Receipt link tolerates both anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.runtime.interfaces import SchedulerLike


@dataclass(frozen=True)
class ChannelConfig:
    """Static properties of a channel.

    Attributes
    ----------
    latency:
        One-way propagation delay in seconds.
    bandwidth_bps:
        Serialization rate in bits per second.  ``None`` means infinite
        (no pacing), which is useful in unit tests.
    loss_rate:
        Probability in [0, 1) that a packet is dropped in flight.
    jitter:
        Maximum additional random delay in seconds, drawn uniformly.
        Deliveries remain FIFO (delays are clamped to preserve order).
    """

    latency: float = 0.0
    bandwidth_bps: Optional[float] = None
    loss_rate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0 (got {self.latency})")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ConfigurationError(
                f"bandwidth_bps must be positive (got {self.bandwidth_bps})"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must be in [0, 1) (got {self.loss_rate})")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0 (got {self.jitter})")


class Channel:
    """A unidirectional lossy, paced, delayed datagram channel.

    The receiver registers ``on_receive(packet)``.  Senders call
    :meth:`send` with the packet object and its wire size in bytes; the
    channel serializes it (advancing ``busy_until``), applies loss, and
    schedules delivery.  :meth:`time_until_idle` lets a pacing sender ask
    how long until the channel can accept the next packet without queueing.

    ``(send, time_until_idle, on_receive)`` is exactly the
    :class:`repro.runtime.interfaces.TransportLike` seam; the live
    runtime's UDP channels implement the same surface, so the protocol
    stack runs unmodified over either substrate (``SimTransport`` below
    names this role explicitly).
    """

    def __init__(
        self,
        sim: SchedulerLike,
        config: ChannelConfig,
        name: str = "channel",
    ):
        self._sim = sim
        self.config = config
        self.name = name
        # ChannelConfig is frozen; bind the per-packet fields once so the
        # send fast path does plain attribute loads.
        self._latency = config.latency
        self._bandwidth_bps = config.bandwidth_bps
        self._loss_rate = config.loss_rate
        self._jitter = config.jitter
        self.on_receive: Optional[Callable[[Any], None]] = None
        self._busy_until = 0.0
        self._last_delivery = 0.0
        self._rng = sim.rngs.stream(f"channel:{name}")
        # Engine-specific fast path: delivery handles never escape the
        # channel and are never cancelled, so the simulated engine may pool
        # them.  Other SchedulerLike substrates fall back to schedule_at.
        self._schedule_transient = getattr(sim, "schedule_transient_at", None)
        self._up = True
        # Gray-failure impairment: silent extra loss/delay while nominally up.
        self._extra_loss = 0.0
        self._extra_delay = 0.0
        # Observability counters.
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_delivered = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Availability (used by the underlay / failure models)
    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        return self._up

    def take_down(self) -> None:
        """Fail the channel: all packets sent while down are lost."""
        self._up = False

    def restore(self) -> None:
        """Restore a failed channel."""
        self._up = True

    # ------------------------------------------------------------------
    # Gray failures (used by the chaos fault-injection engine)
    # ------------------------------------------------------------------
    @property
    def impaired(self) -> bool:
        return self._extra_loss > 0.0 or self._extra_delay > 0.0

    @property
    def extra_loss(self) -> float:
        return self._extra_loss

    @property
    def extra_delay(self) -> float:
        return self._extra_delay

    def set_impairment(self, extra_loss: float = 0.0, extra_delay: float = 0.0) -> None:
        """Install a gray failure: the channel stays *up* but silently
        drops an extra ``extra_loss`` fraction of packets and adds
        ``extra_delay`` seconds of propagation.  Replaces any previous
        impairment; use :meth:`clear_impairment` to heal."""
        if not 0.0 <= extra_loss < 1.0:
            raise ConfigurationError(f"extra_loss must be in [0, 1) (got {extra_loss})")
        if extra_delay < 0:
            raise ConfigurationError(f"extra_delay must be >= 0 (got {extra_delay})")
        self._extra_loss = extra_loss
        self._extra_delay = extra_delay

    def clear_impairment(self) -> None:
        """Heal a gray failure."""
        self._extra_loss = 0.0
        self._extra_delay = 0.0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def time_until_idle(self) -> float:
        """Seconds until the serializer is free (0.0 if idle now)."""
        return max(0.0, self._busy_until - self._sim.now)

    def send(self, packet: Any, size_bytes: int) -> None:
        """Transmit ``packet``; delivery (or silent loss) is asynchronous."""
        now = self._sim.now
        start = max(now, self._busy_until)
        if self._bandwidth_bps is not None:
            serialization = (size_bytes * 8.0) / self._bandwidth_bps
        else:
            serialization = 0.0
        self._busy_until = start + serialization
        self.packets_sent += 1
        self.bytes_sent += size_bytes

        lost = not self._up
        if not lost and self._loss_rate > 0.0:
            lost = self._rng.random() < self._loss_rate
        if not lost and self._extra_loss > 0.0:
            lost = self._rng.random() < self._extra_loss
        if lost:
            self.packets_lost += 1
            return

        delay = self._latency + self._extra_delay
        if self._jitter > 0.0:
            delay += self._rng.random() * self._jitter
        arrival = self._busy_until + delay
        # FIFO: never deliver before a previously sent packet.
        arrival = max(arrival, self._last_delivery)
        self._last_delivery = arrival
        if self._schedule_transient is not None:
            self._schedule_transient(arrival, self._deliver, packet)
        else:
            self._sim.schedule_at(arrival, self._deliver, packet)

    def send_batch(self, packets: Any) -> None:
        """Transmit several ``(packet, size_bytes)`` pairs in order.

        The sim keeps batched sends bit-identical to sequential sends —
        same serialization accounting, same loss draws, same delivery
        events — so enabling batching on the live substrate cannot shift
        simulated behavior (the conformance suite pins this).
        """
        for packet, size_bytes in packets:
            self.send(packet, size_bytes)

    def _deliver(self, packet: Any) -> None:
        if not self._up:
            # The channel failed while the packet was in flight.
            self.packets_lost += 1
            return
        self.packets_delivered += 1
        if self.on_receive is not None:
            self.on_receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._up else "down"
        return f"Channel({self.name}, {state}, sent={self.packets_sent})"


#: The simulated substrate's implementation of the Transport seam
#: (:class:`repro.runtime.interfaces.TransportLike`); the live runtime's
#: counterpart is :class:`repro.runtime.transport.UdpSendChannel` /
#: :class:`~repro.runtime.transport.UdpReceiveChannel`.
SimTransport = Channel
