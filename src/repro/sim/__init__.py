"""Discrete-event network simulation substrate.

The paper deploys its overlay on a real global cloud; this package is the
laboratory stand-in.  It provides:

* :mod:`repro.sim.engine` — the event loop, timers, and simulated clock;
* :mod:`repro.sim.rng` — named, seeded random substreams for determinism;
* :mod:`repro.sim.channel` — point-to-point datagram channels with latency,
  bandwidth pacing, loss, and jitter;
* :mod:`repro.sim.cpu` — a per-node CPU model that serializes processing and
  charges per-operation costs (used to reproduce the crypto-bound goodput of
  Table II);
* :mod:`repro.sim.stats` — counters, goodput meters, latency recorders, and
  time series used by the benchmark harness;
* :mod:`repro.sim.trace` — an attachable protocol event tracer for
  debugging experiments.
"""

from repro.sim.channel import Channel, ChannelConfig
from repro.sim.cpu import Cpu, CpuCosts
from repro.sim.engine import EventHandle, Simulator
from repro.sim.stats import (
    Counter,
    GoodputMeter,
    LatencyRecorder,
    StatsRegistry,
    TimeSeries,
)
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "EventHandle",
    "Channel",
    "ChannelConfig",
    "Cpu",
    "CpuCosts",
    "Counter",
    "GoodputMeter",
    "LatencyRecorder",
    "StatsRegistry",
    "TimeSeries",
    "Tracer",
    "TraceEvent",
]
