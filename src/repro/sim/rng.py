"""Named, seeded random substreams.

Determinism is a first-class requirement: the paper's experiments are rerun
with different attack schedules, and we need bit-identical repeats for
regression tests.  Instead of one global RNG (where adding a single random
call perturbs every later draw), each component asks the registry for a
stream by name; streams are seeded by hashing the master seed with the
stream name, so they are independent and stable across code changes in
other components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0):
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}
        self._instances: Dict[str, int] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same name always returns the same stream object, so stateful
        consumers (for example a channel's loss process) share draws.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def instance_stream(self, base: str) -> random.Random:
        """A *private* stream per call under the ``base`` namespace.

        The first caller gets ``stream(base)`` itself — so components
        that historically held the bare name keep byte-identical draws —
        and every subsequent caller gets an independent ``base#n``
        stream.  Use this for components that may be instantiated
        several times under one name (e.g. two ``PoissonTraffic``
        generators on the same flow): with a shared stream, merely
        *creating* a second instance would interleave draws and perturb
        the first one's seeded arrival sequence.
        """
        count = self._instances.get(base, 0) + 1
        self._instances[base] = count
        return self.stream(base if count == 1 else f"{base}#{count}")

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self._master_seed}:fork:{name}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
