"""Protocol event tracing.

A :class:`Tracer` attaches to a built :class:`~repro.overlay.network.OverlayNetwork`
and records a structured, queryable timeline of protocol events —
injections, deliveries, routing-update outcomes, crashes/recoveries —
without touching the protocol code (it chains the public hooks).  Useful
when debugging why a flow stalled or what an attack actually did.

Example::

    tracer = Tracer.attach(net)
    ... run experiment ...
    for event in tracer.query(category="deliver", node=9):
        print(event)
    print(tracer.summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.messaging.message import Message


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time: float
    node: Any
    category: str   # "inject" | "deliver" | "routing" | "crash" | "recover"
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:10.4f}] {self.node!s:>4} {self.category:<8} {self.detail}"


class Tracer:
    """Chained-hook event recorder for a whole overlay network."""

    def __init__(self, max_events: int = 100_000):
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, network, max_events: int = 100_000) -> "Tracer":
        """Attach to every node of ``network`` (idempotent per network)."""
        tracer = cls(max_events=max_events)
        sim = network.sim
        for node_id, node in network.nodes.items():
            tracer._chain_deliver(sim, node_id, node)
            tracer._wrap_sends(sim, node_id, node)
            tracer._wrap_crash(sim, node_id, node)
            tracer._wrap_routing(sim, node_id, node)
        return tracer

    def record(self, time: float, node: Any, category: str, detail: str) -> None:
        """Append one event (dropped silently past ``max_events``)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, node, category, detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        category: Optional[str] = None,
        node: Any = None,
        since: float = 0.0,
    ) -> List[TraceEvent]:
        """Events filtered by category, node, and minimum time."""
        return [
            e for e in self.events
            if (category is None or e.category == category)
            and (node is None or e.node == node)
            and e.time >= since
        ]

    def summary(self) -> Dict[str, int]:
        """Event counts per category."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def dump(self, limit: int = 50) -> str:
        """Human-readable listing of the first ``limit`` events."""
        lines = [str(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Hook wiring
    # ------------------------------------------------------------------
    def _chain_deliver(self, sim, node_id, node) -> None:
        previous = node.on_deliver

        def hooked(message: Message) -> None:
            self.record(
                sim.now, node_id, "deliver",
                f"{message.semantics.value} {message.source}->{message.dest} "
                f"#{message.seq} ({message.size_bytes} B)",
            )
            if previous is not None:
                previous(message)

        node.on_deliver = hooked

    def _wrap_sends(self, sim, node_id, node) -> None:
        original_priority = node.send_priority
        original_reliable = node.send_reliable

        def send_priority(*args, **kwargs):
            message = original_priority(*args, **kwargs)
            self.record(
                sim.now, node_id, "inject",
                f"priority ->{message.dest} #{message.seq} prio={message.priority}",
            )
            return message

        def send_reliable(dest, *args, **kwargs):
            accepted = original_reliable(dest, *args, **kwargs)
            if accepted:
                self.record(sim.now, node_id, "inject", f"reliable ->{dest}")
            return accepted

        node.send_priority = send_priority
        node.send_reliable = send_reliable

    def _wrap_crash(self, sim, node_id, node) -> None:
        original_crash = node.crash
        original_recover = node.recover

        def crash():
            self.record(sim.now, node_id, "crash", "node crashed")
            original_crash()

        def recover():
            self.record(sim.now, node_id, "recover", "node recovered")
            original_recover()

        node.crash = crash
        node.recover = recover

    def _wrap_routing(self, sim, node_id, node) -> None:
        routing = node.routing
        original = routing.apply_update

        def apply_update(update, now=0.0):
            result = original(update, now=now)
            self.record(
                sim.now, node_id, "routing",
                f"{result.value}: {update.issuer} says "
                f"({update.edge_a},{update.edge_b})={update.weight:.4f}",
            )
            return result

        routing.apply_update = apply_update
