"""Measurement primitives used by experiments and benchmarks.

Every figure in the paper's evaluation is a time series (goodput over time,
latency over time, per-priority message counts) or an aggregate (average
hops, maximum goodput).  This module provides small, allocation-light
recorders that the overlay and the benchmark harness share:

* :class:`Counter` — monotonically increasing named counters;
* :class:`GoodputMeter` — bucketizes delivered bytes into fixed intervals
  and reports Mbps series (Figures 4, 5, 6a, 9);
* :class:`LatencyRecorder` — per-delivery latencies with summary statistics
  (Figure 6b);
* :class:`TimeSeries` — generic (time, value) samples;
* :class:`StatsRegistry` — a per-simulation namespace for all of the above.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Simulator


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment the counter by ``amount``."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """An append-only sequence of (time, value) samples."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append one (time, value) sample."""
        self.samples.append((time, value))

    def values(self) -> List[float]:
        """The recorded values, in order."""
        return [v for _, v in self.samples]

    def times(self) -> List[float]:
        """The sample times, in order."""
        return [t for t, _ in self.samples]

    def __len__(self) -> int:
        return len(self.samples)


class GoodputMeter:
    """Bucketizes delivered payload bytes into fixed-width time intervals.

    ``series()`` returns (bucket_start_time, mbps) pairs — the exact shape
    plotted in Figures 4–6 and 9.
    """

    def __init__(self, sim: Simulator, interval: float = 1.0, name: str = "goodput"):
        self._sim = sim
        self.interval = interval
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.total_bytes = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def record(self, size_bytes: int) -> None:
        """Record a delivery of ``size_bytes`` at the current simulated time."""
        now = self._sim.now
        if self.first_time is None:
            self.first_time = now
        self.last_time = now
        bucket = int(now / self.interval)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + size_bytes
        self.total_bytes += size_bytes

    def series(self, start: float = 0.0, end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Mbps per interval between ``start`` and ``end`` (defaults to now)."""
        if end is None:
            end = self._sim.now
        first = int(start / self.interval)
        last = int(math.ceil(end / self.interval))
        out: List[Tuple[float, float]] = []
        for bucket in range(first, last):
            size = self._buckets.get(bucket, 0)
            mbps = (size * 8.0) / (self.interval * 1e6)
            out.append((bucket * self.interval, mbps))
        return out

    def average_mbps(self, start: float, end: float) -> float:
        """Average goodput in Mbps over the window [start, end)."""
        if end <= start:
            return 0.0
        total = 0
        first = int(start / self.interval)
        last = int(math.ceil(end / self.interval))
        for bucket in range(first, last):
            total += self._buckets.get(bucket, 0)
        return (total * 8.0) / ((end - start) * 1e6)


class LatencyRecorder:
    """Records per-delivery latencies and reports summary statistics."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[Tuple[float, float]] = []  # (delivery_time, latency)

    def record(self, delivery_time: float, latency: float) -> None:
        """Record one delivery latency observed at ``delivery_time``."""
        self.samples.append((delivery_time, latency))

    def latencies(self) -> List[float]:
        """All recorded latencies, in delivery order."""
        return [lat for _, lat in self.samples]

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        """Mean latency (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(lat for _, lat in self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile latency (p in [0, 100])."""
        if not self.samples:
            return 0.0
        ordered = sorted(lat for _, lat in self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def maximum(self) -> float:
        """Largest recorded latency (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return max(lat for _, lat in self.samples)


class StatsRegistry:
    """A per-simulation namespace of counters, meters, and series."""

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._counters: Dict[str, Counter] = {}
        self._meters: Dict[str, GoodputMeter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def goodput(self, name: str, interval: float = 1.0) -> GoodputMeter:
        """The named goodput meter, created on first use."""
        meter = self._meters.get(name)
        if meter is None:
            meter = GoodputMeter(self._sim, interval=interval, name=name)
            self._meters[name] = meter
        return meter

    def latency(self, name: str) -> LatencyRecorder:
        """The named latency recorder, created on first use."""
        recorder = self._latencies.get(name)
        if recorder is None:
            recorder = LatencyRecorder(name)
            self._latencies[name] = recorder
        return recorder

    def series(self, name: str) -> TimeSeries:
        """The named time series, created on first use."""
        ts = self._series.get(name)
        if ts is None:
            ts = TimeSeries(name)
            self._series[name] = ts
        return ts

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in self._counters.items()}
