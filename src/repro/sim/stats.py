"""Measurement primitives used by experiments and benchmarks.

Every figure in the paper's evaluation is a time series (goodput over time,
latency over time, per-priority message counts) or an aggregate (average
hops, maximum goodput).  This module provides small, allocation-light
recorders that the overlay and the benchmark harness share:

* :class:`GoodputMeter` — bucketizes delivered bytes into fixed intervals
  and reports Mbps series (Figures 4, 5, 6a, 9);
* :class:`LatencyRecorder` — per-delivery latencies with summary statistics
  (Figure 6b);
* :class:`TimeSeries` — generic (time, value) samples;
* :class:`StatsRegistry` — a per-simulation namespace for all of the above,
  backed by a :class:`repro.telemetry.metrics.MetricsRegistry` so protocol
  counters, crypto-op counts, and per-message-type byte accounting share
  one namespace and one deterministic snapshot.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import Counter, MetricsRegistry

if TYPE_CHECKING:
    # Stats only read the clock, so any ClockLike substrate works —
    # the simulator for simulated runs, AsyncioScheduler for live ones.
    from repro.runtime.interfaces import ClockLike

__all__ = [
    "Counter",
    "GoodputMeter",
    "LatencyRecorder",
    "StatsRegistry",
    "TimeSeries",
]


class TimeSeries:
    """An append-only sequence of (time, value) samples."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append one (time, value) sample."""
        self.samples.append((time, value))

    def values(self) -> List[float]:
        """The recorded values, in order."""
        return [v for _, v in self.samples]

    def times(self) -> List[float]:
        """The sample times, in order."""
        return [t for t, _ in self.samples]

    def __len__(self) -> int:
        return len(self.samples)


class GoodputMeter:
    """Bucketizes delivered payload bytes into fixed-width time intervals.

    ``series()`` returns (bucket_start_time, mbps) pairs — the exact shape
    plotted in Figures 4–6 and 9.

    Windows that are not aligned to the bucket grid are *prorated*: a
    boundary bucket contributes bytes in proportion to its overlap with
    the window, under the assumption that bytes are uniformly spread
    within a bucket.  (Sub-bucket arrival times are not retained — that
    is what keeps the meter's memory proportional to elapsed intervals,
    not to delivered messages.)
    """

    def __init__(self, sim: ClockLike, interval: float = 1.0, name: str = "goodput"):
        self._sim = sim
        self.interval = interval
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.total_bytes = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def record(self, size_bytes: int) -> None:
        """Record a delivery of ``size_bytes`` at the current simulated time."""
        now = self._sim.now
        if self.first_time is None:
            self.first_time = now
        self.last_time = now
        bucket = int(now / self.interval)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + size_bytes
        self.total_bytes += size_bytes

    def _overlap(self, bucket: int, start: float, end: float) -> float:
        """Seconds of [start, end) that fall inside ``bucket``."""
        lo = bucket * self.interval
        hi = lo + self.interval
        return max(0.0, min(end, hi) - max(start, lo))

    def series(self, start: float = 0.0, end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Mbps per interval between ``start`` and ``end`` (defaults to now).

        Each point is labelled with the start of the bucket's overlap
        with the window (equal to the bucket start for interior buckets).
        A partially overlapped boundary bucket reports its average rate —
        under the uniform-within-bucket assumption the rate over any
        sub-window of a bucket equals the bucket's average rate.
        """
        if end is None:
            end = self._sim.now
        if end <= start:
            return []
        first = int(start / self.interval)
        last = int(math.ceil(end / self.interval))
        out: List[Tuple[float, float]] = []
        for bucket in range(first, last):
            if self._overlap(bucket, start, end) <= 0.0:
                continue
            size = self._buckets.get(bucket, 0)
            mbps = (size * 8.0) / (self.interval * 1e6)
            out.append((max(start, bucket * self.interval), mbps))
        return out

    def average_mbps(self, start: float, end: float) -> float:
        """Average goodput in Mbps over the window [start, end).

        Boundary buckets that only partially overlap the window are
        prorated by their overlap fraction, so non-aligned windows no
        longer inherit whole boundary buckets' bytes (which skewed the
        reported Mbps by up to ``interval / (end - start)``).
        """
        if end <= start:
            return 0.0
        total = 0.0
        first = int(start / self.interval)
        last = int(math.ceil(end / self.interval))
        for bucket in range(first, last):
            size = self._buckets.get(bucket, 0)
            if not size:
                continue
            total += size * (self._overlap(bucket, start, end) / self.interval)
        return (total * 8.0) / ((end - start) * 1e6)


class LatencyRecorder:
    """Records per-delivery latencies and reports summary statistics.

    The sorted view used by :meth:`percentile` is cached and invalidated
    on :meth:`record`, so benchmark loops that query percentiles per
    interval pay one sort per batch of records instead of one per query.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[Tuple[float, float]] = []  # (delivery_time, latency)
        self._sorted: Optional[List[float]] = None

    def record(self, delivery_time: float, latency: float) -> None:
        """Record one delivery latency observed at ``delivery_time``."""
        self.samples.append((delivery_time, latency))
        self._sorted = None

    def latencies(self) -> List[float]:
        """All recorded latencies, in delivery order."""
        return [lat for _, lat in self.samples]

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        """Mean latency (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(lat for _, lat in self.samples) / len(self.samples)

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(lat for _, lat in self.samples)
        return self._sorted

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile latency (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100] (got {p})")
        if not self.samples:
            return 0.0
        ordered = self._ordered()
        # Exact extremes: no interpolation arithmetic at the boundaries,
        # so p=0 / p=100 return the observed min/max bit-exactly.
        if p == 0.0:
            return ordered[0]
        if p == 100.0:
            return ordered[-1]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def maximum(self) -> float:
        """Largest recorded latency (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return self._ordered()[-1]


#: Percentiles included in registry snapshots.
SNAPSHOT_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 99.0)


class StatsRegistry:
    """A per-simulation namespace of counters, meters, and series.

    Counters live in the backing :class:`MetricsRegistry` (shared with
    crypto-op and per-message-type accounting); meters, latency
    recorders, and unbounded series stay here because they carry
    simulation-time semantics the generic registry doesn't know about.
    """

    def __init__(self, sim: ClockLike, metrics: Optional[MetricsRegistry] = None):
        self._sim = sim
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._meters: Dict[str, GoodputMeter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._tx_counters: Dict[str, Tuple[Counter, Counter]] = {}

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        return self.metrics.counter(name)

    def goodput(self, name: str, interval: float = 1.0) -> GoodputMeter:
        """The named goodput meter, created on first use."""
        meter = self._meters.get(name)
        if meter is None:
            meter = GoodputMeter(self._sim, interval=interval, name=name)
            self._meters[name] = meter
        return meter

    def latency(self, name: str) -> LatencyRecorder:
        """The named latency recorder, created on first use."""
        recorder = self._latencies.get(name)
        if recorder is None:
            recorder = LatencyRecorder(name)
            self._latencies[name] = recorder
        return recorder

    def series(self, name: str) -> TimeSeries:
        """The named time series, created on first use."""
        ts = self._series.get(name)
        if ts is None:
            ts = TimeSeries(name)
            self._series[name] = ts
        return ts

    def series_by_prefix(self, prefix: str) -> Dict[str, TimeSeries]:
        """All existing series whose name starts with ``prefix``, sorted
        by name; never creates (reporting over per-node series families
        like ``recovery-downtime:*``)."""
        return {
            name: ts
            for name, ts in sorted(self._series.items())
            if name.startswith(prefix)
        }

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values."""
        return self.metrics.counter_values()

    def tx_counters(self, kind: str) -> Tuple[Counter, Counter]:
        """The (messages, bytes) counter pair for one payload kind.

        Cached per kind so link hot paths pay two integer adds per
        transmission, not two dict lookups by formatted name.
        """
        pair = self._tx_counters.get(kind)
        if pair is None:
            pair = (
                self.metrics.counter(f"tx.{kind}.messages"),
                self.metrics.counter(f"tx.{kind}.bytes"),
            )
            self._tx_counters[kind] = pair
        return pair

    # ------------------------------------------------------------------
    def message_type_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-payload-kind transmission counts and bytes."""
        out: Dict[str, Dict[str, int]] = {}
        for name, value in self.metrics.counter_values().items():
            if not name.startswith("tx."):
                continue
            _, kind, field = name.split(".", 2)
            out.setdefault(kind, {})[field] = value
        return out

    def snapshot(
        self, percentiles: Sequence[float] = SNAPSHOT_PERCENTILES
    ) -> Dict[str, dict]:
        """Deterministic summary of every instrument in this registry.

        Safe to JSON-encode; two same-seed runs produce identical
        snapshots (no wall-clock state is included).
        """
        goodput = {
            name: {
                "total_bytes": meter.total_bytes,
                "interval": meter.interval,
                "first_time": meter.first_time,
                "last_time": meter.last_time,
                "average_mbps": (
                    meter.average_mbps(0.0, self._sim.now) if self._sim.now > 0 else 0.0
                ),
            }
            for name, meter in sorted(self._meters.items())
        }
        latency = {
            name: {
                "count": rec.count,
                "mean": rec.mean(),
                "max": rec.maximum(),
                **{f"p{p:g}": rec.percentile(p) for p in percentiles},
            }
            for name, rec in sorted(self._latencies.items())
        }
        series = {
            name: {"samples": len(ts)} for name, ts in sorted(self._series.items())
        }
        snapshot = self.metrics.snapshot()
        snapshot["goodput"] = goodput
        snapshot["latency"] = latency
        snapshot["sim_series"] = series
        snapshot["message_types"] = self.message_type_snapshot()
        return snapshot
