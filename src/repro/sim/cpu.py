"""Per-node CPU cost model.

Table II of the paper shows that with cryptography enabled the overlay is
strictly CPU bound: one-flow goodput drops from 480 Mbps to 85 Mbps for
K=1.  To reproduce that shape without doing real bignum math per simulated
message, each overlay node owns a :class:`Cpu` that serializes work items:
every operation (RSA sign, RSA verify, HMAC, base packet processing) has a
configured cost in seconds, and callbacks complete only when the CPU has
"executed" them.

When all costs are zero the CPU is bypassed entirely (callbacks run
synchronously), so benign-mode simulations pay no overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.runtime.interfaces import SchedulerLike


_COST_FIELDS = (
    "rsa_sign",
    "rsa_verify",
    "hmac",
    "process_packet",
    "tx_packet",
    "duplicate_packet",
)


@dataclass(frozen=True)
class CpuCosts:
    """Seconds of CPU time charged per operation.

    ``process_packet`` is the full receive-and-forward handling of a new
    overlay message; ``duplicate_packet`` is the cheap path for a copy
    recognized as a duplicate before any expensive work (header parse +
    dedup lookup); ``tx_packet`` is the transmit-side handling per packet
    put on a link.  Defaults are calibrated against OpenSSL RSA on a
    mid-2010s server core and kernel UDP forwarding costs; the Table II
    benchmark scales them together with link capacity.
    """

    rsa_sign: float = 750e-6
    rsa_verify: float = 25e-6
    hmac: float = 2e-6
    process_packet: float = 3e-6
    tx_packet: float = 1.5e-6
    duplicate_packet: float = 0.75e-6

    def __post_init__(self) -> None:
        for field in _COST_FIELDS:
            if getattr(self, field) < 0:
                raise ConfigurationError(f"{field} must be >= 0")

    @classmethod
    def free(cls) -> "CpuCosts":
        """Zero-cost table: the CPU model is effectively disabled."""
        return cls(**{field: 0.0 for field in _COST_FIELDS})

    @cached_property
    def is_free(self) -> bool:
        """True when every cost is zero (the CPU model is a no-op).

        Cached: the dataclass is frozen, so the answer never changes, and
        this sits on the per-packet fast path."""
        return all(getattr(self, field) == 0.0 for field in _COST_FIELDS)


class Cpu:
    """Serializes per-node processing with per-operation costs.

    ``execute(cost, callback)`` charges ``cost`` seconds and invokes the
    callback when the work completes.  Work is FIFO: a node busy verifying
    a signature delays every subsequent packet, which is exactly the
    CPU-bound behaviour Table II measures.
    """

    def __init__(self, sim: SchedulerLike, costs: CpuCosts, name: str = "cpu"):
        self._sim = sim
        self.costs = costs
        self.name = name
        self._busy_until = 0.0
        self.busy_seconds = 0.0
        self.operations = 0
        self.overload_drops = 0
        # Plain attribute, not a property: ``costs`` is frozen and never
        # reassigned, and this flag is consulted once or twice per packet.
        self.enabled = not costs.is_free

    def backlog(self) -> float:
        """Seconds of queued work ahead of a newly submitted operation.

        An overloaded node's input queues are finite: callers use this to
        decide to drop best-effort work instead of queueing it forever
        (see the Table II benchmark — goodput under load is exactly the
        CPU's service rate)."""
        return max(0.0, self._busy_until - self._sim.now)

    def execute(self, cost: float, callback: Callable[..., None], *args: Any) -> None:
        """Charge ``cost`` seconds of CPU time, then run ``callback(*args)``."""
        self.operations += 1
        if cost <= 0.0:
            callback(*args)
            return
        now = self._sim.now
        start = max(now, self._busy_until)
        self._busy_until = start + cost
        self.busy_seconds += cost
        self._sim.schedule_at(self._busy_until, callback, *args)

    # Convenience wrappers -------------------------------------------------
    def sign(self, callback: Callable[..., None], *args: Any) -> None:
        """Charge one RSA signing and then run ``callback``."""
        self.execute(self.costs.rsa_sign, callback, *args)

    def verify(self, callback: Callable[..., None], *args: Any) -> None:
        """Charge one RSA verification and then run ``callback``."""
        self.execute(self.costs.rsa_verify, callback, *args)

    def hmac(self, callback: Callable[..., None], *args: Any) -> None:
        """Charge one HMAC computation and then run ``callback``."""
        self.execute(self.costs.hmac, callback, *args)

    def process(self, callback: Callable[..., None], *args: Any) -> None:
        """Charge one packet-processing quantum and then run ``callback``."""
        self.execute(self.costs.process_packet, callback, *args)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the CPU spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)
