"""Unified telemetry: metrics, tracing, and profiling.

The paper's evaluation is entirely measured — goodput, latency, and
per-hop cost (Figures 4-9, Tables II-IV) — so the reproduction needs one
place where every layer reports what it did.  This package provides:

* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges, histograms, and bounded time series, with a
  deterministic :meth:`~MetricsRegistry.snapshot`;
* :mod:`repro.telemetry.tracing` — structured span/event tracing that is
  a no-op singleton when disabled (near-zero overhead on hot paths);
* :mod:`repro.telemetry.profiling` — per-event-type timing for
  :meth:`repro.sim.engine.Simulator.run` and per-message-type payload
  classification for byte accounting on links;
* :mod:`repro.telemetry.report` — the ``repro stats`` report builder
  that turns a run's registry into the JSON/CSV benchmarks persist as
  ``BENCH_*.json`` artifacts.

Every simulation's :class:`repro.sim.stats.StatsRegistry` is backed by a
:class:`MetricsRegistry`, so protocol counters, crypto-op counts, and
per-message-type byte accounting all land in the same namespace and a
single snapshot describes the whole run.
"""

from repro.telemetry.metrics import (
    BoundedTimeSeries,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profiling import EventLoopProfiler, payload_kind
from repro.telemetry.report import build_report, flatten, to_csv
from repro.telemetry.tracing import NULL_SPAN, TraceCollector

__all__ = [
    "BoundedTimeSeries",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventLoopProfiler",
    "payload_kind",
    "build_report",
    "flatten",
    "to_csv",
    "NULL_SPAN",
    "TraceCollector",
]
