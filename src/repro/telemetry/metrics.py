"""The central metrics registry: counters, gauges, histograms, series.

Design constraints, in priority order:

1. **Determinism** — a snapshot of a seeded run must be byte-identical
   across processes: no wall-clock timestamps, no randomized sampling,
   keys emitted in sorted order.
2. **Bounded memory** — histograms keep fixed bucket arrays and time
   series keep a fixed-length window, so telemetry never grows with run
   length (a chaos soak records millions of deliveries).
3. **Cheap when idle** — incrementing a counter is one dict hit avoided
   (callers cache the object) plus an integer add; nothing allocates on
   the hot path.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.tracing import TraceCollector


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment the counter by ``amount``."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named instantaneous value (last-write-wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge's value by ``delta``."""
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name}={self.value})"


#: Default histogram bucket upper bounds: a geometric ladder wide enough
#: for both latencies in seconds (1 us .. minutes) and sizes in bytes.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-12, 21)  # 1e-6 .. 1e10, half-decades
)


class Histogram:
    """Fixed-bucket histogram with streaming min/max/sum.

    Memory is bounded by the bucket count regardless of how many values
    are observed.  Percentiles are estimated by linear interpolation
    inside the winning bucket, clamped to the observed min/max so the
    estimate never leaves the data range.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {name}")
        # One bucket per bound (values <= bound) plus one overflow bucket.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100] (got {p})")
        if self.count == 0:
            return 0.0
        if p == 0.0:
            return self.min
        if p == 100.0:
            return self.max
        target = (p / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self.min
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                frac = (target - cumulative) / bucket_count
                return lower + (upper - lower) * frac
            cumulative += bucket_count
        return self.max  # pragma: no cover - unreachable with count > 0

    def snapshot(self) -> Dict[str, float]:
        """Summary dict (bucket arrays are an implementation detail)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class BoundedTimeSeries:
    """A (time, value) series holding at most ``maxlen`` samples.

    Older samples are evicted (and counted in ``dropped``) so memory is
    bounded for arbitrarily long runs; the window keeps the most recent
    history, which is what dashboards and post-mortems want.
    """

    __slots__ = ("name", "maxlen", "samples", "dropped")

    def __init__(self, name: str, maxlen: int = 4096):
        self.name = name
        self.maxlen = maxlen
        self.samples: Deque[Tuple[float, float]] = deque(maxlen=maxlen)
        self.dropped = 0

    def record(self, time: float, value: float) -> None:
        """Append one (time, value) sample, evicting the oldest if full."""
        if len(self.samples) == self.maxlen:
            self.dropped += 1
        self.samples.append((time, value))

    def values(self) -> List[float]:
        """The retained values, oldest first."""
        return [v for _, v in self.samples]

    def times(self) -> List[float]:
        """The retained sample times, oldest first."""
        return [t for t, _ in self.samples]

    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent (time, value) sample, or None when empty."""
        return self.samples[-1] if self.samples else None

    def __len__(self) -> int:
        return len(self.samples)


class MetricsRegistry:
    """A namespace of telemetry instruments, created on first use.

    One registry serves a whole simulation: the overlay's
    :class:`repro.sim.stats.StatsRegistry` is backed by it, the PKI
    reports crypto ops into it, links report per-message-type bytes, and
    the chaos engine reports fault counts — so one
    :meth:`snapshot` describes the entire run.
    """

    def __init__(self, series_maxlen: int = 4096):
        self._series_maxlen = series_maxlen
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, BoundedTimeSeries] = {}
        #: Structured span/event tracing; disabled (no-op) by default.
        self.trace = TraceCollector()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        """The named histogram, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, bounds)
            self._histograms[name] = histogram
        return histogram

    def series(self, name: str, maxlen: Optional[int] = None) -> BoundedTimeSeries:
        """The named bounded time series, created on first use."""
        series = self._series.get(name)
        if series is None:
            series = BoundedTimeSeries(name, maxlen or self._series_maxlen)
            self._series[name] = series
        return series

    # ------------------------------------------------------------------
    def counter_values(self) -> Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot(self) -> Dict[str, dict]:
        """Deterministic nested snapshot of every instrument.

        Keys are sorted; values contain no wall-clock state, so two
        same-seed runs produce identical snapshots.
        """
        return {
            "counters": self.counter_values(),
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
            "series": {
                name: {"samples": len(s), "dropped": s.dropped, "last": s.last()}
                for name, s in sorted(self._series.items())
            },
        }
