"""Run reports: one JSON/CSV-serializable document per simulated run.

``repro stats`` and the benchmark harness both need the same thing: a
single deterministic document that captures everything a run measured —
registry counters, per-message-type byte accounting, crypto-op counts,
per-flow goodput and latency percentiles, dissemination cost.  This
module builds that document from a live
:class:`~repro.workloads.experiment.Deployment`.

Determinism contract: with default options the report contains only
simulated-time data, so two same-seed runs produce byte-identical JSON.
Wall-clock data (the event-loop profile, span summaries) only appears
when explicitly requested and is clearly namespaced under ``"profile"``
so determinism checks can exclude it.
"""

from __future__ import annotations

import io
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Report schema version; bump when the document layout changes.
REPORT_VERSION = 1

#: Latency percentiles reported per flow (mirrors
#: :data:`repro.sim.stats.SNAPSHOT_PERCENTILES`; duplicated here because
#: ``repro.sim.stats`` imports this package — importing it back at module
#: scope would be circular).
FLOW_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 99.0)


def build_report(
    deployment: Any,
    flows: Sequence[Tuple[Any, Any]],
    window: Optional[Tuple[float, float]] = None,
    params: Optional[Dict[str, Any]] = None,
    include_profile: bool = False,
    include_trace: bool = False,
) -> Dict[str, Any]:
    """Build the run report for ``deployment``.

    ``flows`` are the (source, dest) pairs to summarize individually;
    ``window`` is the measurement window for per-flow goodput (defaults
    to the full run).  ``params`` records the run's inputs (seed, rate,
    semantics ...) verbatim so a report is self-describing.

    ``include_profile`` adds the event-loop profile and span summary —
    wall-clock data, *not* deterministic.  ``include_trace`` adds the
    sim-time event summary, which is deterministic but only non-empty
    when tracing was enabled for the run.
    """
    network = deployment.network
    sim = network.sim
    if window is None:
        window = (0.0, sim.now)
    report: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "params": dict(params or {}),
        "sim": {
            "now": sim.now,
            "events_run": sim.events_run,
            "window": list(window),
        },
        "stats": network.stats.snapshot(),
        "flows": [
            _flow_entry(deployment, source, dest, window)
            for source, dest in flows
        ],
        "dissemination_cost": deployment.dissemination_cost(),
        "downtime": _downtime_section(network.stats),
    }
    defense = getattr(deployment, "defense", None)
    if defense is not None:
        report["defense"] = defense.summary()
    if include_trace:
        trace = network.stats.metrics.trace
        report["trace"] = {
            "enabled": trace.enabled,
            "events": trace.event_summary(),
            "dropped": trace.dropped,
        }
    if include_profile:
        profiler = sim.profiler
        report["profile"] = {
            "event_loop": profiler.snapshot() if profiler is not None else {},
            "spans": network.stats.metrics.trace.span_summary(),
        }
    return report


def _flow_entry(
    deployment: Any, source: Any, dest: Any, window: Tuple[float, float]
) -> Dict[str, Any]:
    result = deployment.flow_result(source, dest, window)
    recorder = deployment.network.flow_latency(source, dest)
    return {
        "source": source,
        "dest": dest,
        "goodput_mbps": result.goodput_mbps,
        "goodput_fraction_of_capacity": result.goodput_fraction_of_capacity,
        "delivered": result.delivered,
        "latency": {
            "mean": recorder.mean(),
            "max": recorder.maximum(),
            **{
                f"p{p:g}": recorder.percentile(p)
                for p in FLOW_PERCENTILES
            },
        },
    }


def _downtime_section(stats: Any) -> Dict[str, Any]:
    """Per-node recovery downtime and quarantine dwell totals, from the
    ``recovery-downtime:*`` / ``quarantine-dwell:*`` series the recovery
    engines and link monitors record."""

    def family(prefix: str) -> Dict[str, Dict[str, float]]:
        return {
            name.split(":", 1)[1]: {
                "events": len(ts),
                "total_seconds": sum(ts.values()),
            }
            for name, ts in stats.series_by_prefix(prefix).items()
        }

    recovery = family("recovery-downtime:")
    dwell = family("quarantine-dwell:")
    return {
        "recovery_downtime": recovery,
        "recovery_downtime_total_seconds": sum(
            entry["total_seconds"] for entry in recovery.values()
        ),
        "quarantine_dwell": dwell,
        "quarantine_dwell_total_seconds": sum(
            entry["total_seconds"] for entry in dwell.values()
        ),
    }


# ----------------------------------------------------------------------
# CSV rendering
# ----------------------------------------------------------------------
def flatten(payload: Any, prefix: str = "") -> List[Tuple[str, Any]]:
    """Flatten a nested report into sorted (dotted-key, scalar) pairs.

    Dicts nest by key, lists by index; scalars (and None) terminate.
    The result order is the recursive sorted-key order, so it is as
    deterministic as the input document.
    """
    if isinstance(payload, dict):
        out: List[Tuple[str, Any]] = []
        for key in sorted(payload, key=str):
            child = f"{prefix}.{key}" if prefix else str(key)
            out.extend(flatten(payload[key], child))
        return out
    if isinstance(payload, (list, tuple)):
        out = []
        for index, item in enumerate(payload):
            child = f"{prefix}.{index}" if prefix else str(index)
            out.extend(flatten(item, child))
        return out
    return [(prefix, payload)]


def to_csv(payload: Dict[str, Any]) -> str:
    """Render a report as two-column CSV (``key,value`` per line)."""
    buffer = io.StringIO()
    buffer.write("key,value\n")
    for key, value in flatten(payload):
        rendered = "" if value is None else str(value)
        if any(c in rendered for c in ',"\n'):
            rendered = '"' + rendered.replace('"', '""') + '"'
        buffer.write(f"{key},{rendered}\n")
    return buffer.getvalue()
