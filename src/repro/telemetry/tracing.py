"""Structured span/event tracing with near-zero overhead when disabled.

The contract that keeps hot paths fast: while a collector is disabled,
:meth:`TraceCollector.span` returns the shared :data:`NULL_SPAN`
singleton (no allocation, no bookkeeping) and :meth:`TraceCollector.event`
returns after a single boolean check.  Protocol code can therefore leave
trace calls in place permanently; they only cost anything when a run
explicitly enables tracing (``repro stats --trace``).

Spans measure *wall-clock* durations (``time.perf_counter``) — they are
profiling data about the simulator process itself and are excluded from
deterministic snapshots.  Events carry *simulated* timestamps supplied by
the caller and are deterministic for a seeded run.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: The singleton no-op span.  Identity-comparable in tests to prove the
#: disabled path allocates nothing.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records its wall-clock duration on exit."""

    __slots__ = ("_collector", "name", "_start")

    def __init__(self, collector: "TraceCollector", name: str):
        self._collector = collector
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._collector._finish_span(self.name, time.perf_counter() - self._start)
        return False


class TraceCollector:
    """Bounded collector of spans (wall-clock) and events (sim-time)."""

    def __init__(self, max_records: int = 100_000):
        self.enabled = False
        self.max_records = max_records
        #: Completed spans as (name, wall_seconds).
        self.spans: List[Tuple[str, float]] = []
        #: Events as (sim_time, name, detail).
        self.events: List[Tuple[float, str, str]] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Start collecting spans and events."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting; already recorded data is retained."""
        self.enabled = False

    def clear(self) -> None:
        """Discard all recorded spans and events."""
        self.spans.clear()
        self.events.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    def span(self, name: str):
        """A context manager timing a code block (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name)

    def _finish_span(self, name: str, duration: float) -> None:
        if len(self.spans) >= self.max_records:
            self.dropped += 1
            return
        self.spans.append((name, duration))

    def event(self, sim_time: float, name: str, detail: str = "") -> None:
        """Record one simulated-time event (no-op when disabled)."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_records:
            self.dropped += 1
            return
        self.events.append((sim_time, name, detail))

    # ------------------------------------------------------------------
    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name span counts and total wall seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for name, duration in self.spans:
            entry = out.setdefault(name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += duration
        return dict(sorted(out.items()))

    def event_summary(self) -> Dict[str, int]:
        """Per-name event counts (deterministic for a seeded run)."""
        out: Dict[str, int] = {}
        for _, name, _ in self.events:
            out[name] = out.get(name, 0) + 1
        return dict(sorted(out.items()))

    def query_events(
        self, name: Optional[str] = None, since: float = 0.0
    ) -> List[Tuple[float, str, str]]:
        """Events filtered by name prefix and minimum simulated time."""
        return [
            e
            for e in self.events
            if (name is None or e[1].startswith(name)) and e[0] >= since
        ]
