"""Profiling hooks: event-loop timing and payload classification.

:class:`EventLoopProfiler` plugs into :meth:`repro.sim.engine.Simulator.run`
(see ``Simulator.enable_profiling``) and accumulates per-callback-type
counts and wall-clock seconds, answering "where does a simulated second
go?" for perf work.  Accumulation is a plain dict of ``[count, seconds]``
cells — no allocation per event beyond the first sighting of a callback.

:func:`payload_kind` maps any overlay wire payload to a stable short name
used for per-message-type byte accounting on links (``tx.<kind>.messages``
/ ``tx.<kind>.bytes`` counters) — the measured counterpart of the paper's
dissemination-cost accounting.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List


def wall_clock() -> float:
    """A monotonic wall-clock read for explicit performance measurement.

    The determinism audit (tests/test_sim_determinism.py) confines
    wall-clock reads to the profiling and live-runtime modules; perf
    tooling (:mod:`repro.perf`) must therefore take its timestamps
    through this helper rather than importing :mod:`time` itself.
    Never call this from protocol or simulation code.
    """
    return time.perf_counter()


def callback_key(callback: Callable[..., Any]) -> str:
    """Stable grouping key for an event callback (its qualified name)."""
    key = getattr(callback, "__qualname__", None)
    if key is None:
        key = type(callback).__name__
    return key


class EventLoopProfiler:
    """Per-event-type wall-clock accounting for the simulator loop."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        #: key -> [count, wall_seconds]
        self.samples: Dict[str, List[float]] = {}

    def record(self, key: str, seconds: float) -> None:
        """Accumulate one event's wall-clock ``seconds`` under ``key``."""
        cell = self.samples.get(key)
        if cell is None:
            self.samples[key] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-event-type summary, sorted by total wall time descending.

        Wall-clock durations are inherently non-deterministic; callers
        must keep this out of snapshots used for determinism checks.
        """
        ranked = sorted(self.samples.items(), key=lambda kv: (-kv[1][1], kv[0]))
        return {
            key: {"count": int(count), "seconds": seconds}
            for key, (count, seconds) in ranked
        }

    def total_events(self) -> int:
        """Total number of events recorded across all keys."""
        return int(sum(count for count, _ in self.samples.values()))


#: Stable payload-kind names, keyed by payload class name.  Class names
#: are used instead of isinstance chains so the hot path is one dict hit.
_KIND_BY_CLASS = {
    "E2eAck": "e2e_ack",
    "NeighborAck": "neighbor_ack",
    "LinkStateUpdate": "link_state",
    "Mtmw": "mtmw",
    "StateRequest": "state_request",
    "Hello": "hello",
    "AdmissionNack": "admission_nack",
}


def payload_kind(payload: Any) -> str:
    """Short stable name for a wire payload's type.

    Data messages split by semantics (``priority`` / ``reliable``); every
    control payload maps to a fixed name; unknown types fall back to
    their lowercased class name so new payloads are still accounted.
    """
    class_name = type(payload).__name__
    if class_name == "Message":
        return payload.semantics.value
    kind = _KIND_BY_CLASS.get(class_name)
    if kind is None:
        return class_name.lower()
    return kind
