"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the global-cloud deployment topology and its analytical
    dissemination costs (Table III).
``demo``
    Run a short end-to-end scenario (both semantics, one compromised
    node) and print the outcome.
``experiment``
    Run N saturating flows on the scaled deployment and print per-flow
    goodput, latency, and dissemination cost.
``turret``
    Run a Turret-style randomized attack campaign and print the report.
``chaos``
    Run a seeded chaos soak: a fault schedule (flaps, gray failures,
    bursts, crashes, churn, partitions) against the deployment with the
    invariant monitor armed; exit 1 on any violation.
``stats``
    Run a seeded workload and dump the full telemetry report (registry
    counters, per-message-type bytes, crypto ops, per-flow goodput and
    latency percentiles) as JSON or CSV.  Deterministic by default;
    ``--profile`` adds wall-clock event-loop timing.
``live``
    Boot the same overlay stack over real asyncio/UDP sockets on
    localhost (:mod:`repro.runtime`), inject priority + reliable client
    traffic for a wall-clock duration, and print per-flow delivery.
    Ctrl-C shuts down gracefully and still prints the report.
``perfbench``
    Run the hot-path microbenchmark suite (:mod:`repro.perf`): message
    forwarding, flooding fanout, K-paths computation, PoR round trips,
    and priority-queue eviction at fixed seeds.  Emits the
    ``BENCH_perf.json`` payload and, with ``--baseline``, acts as the
    perf-regression gate (exit 1 on >25 % ops/sec regression, after
    machine-speed calibration).
``overload``
    Sweep the client-tier population workload (:mod:`repro.clients`)
    over offered-load multipliers with the DoS-resistant admission
    stage on and off, and print goodput + tail latency per stage.
    With ``--min-goodput`` the command exits 1 unless the admission-on
    arm sustains that fraction of its 1x goodput at the highest
    multiplier (the CI overload gate).
``slo``
    Run the "SLO under fire" sweep (:mod:`repro.clients.slo`): the
    client session tier (budgeted retries, failover, dedup) with
    sessions on and off, under soak chaos, across offered-load
    multipliers.  With ``--min-success`` the command exits 1 unless
    the sessions-on arm meets that client-visible success ratio at
    base load, keeps retry amplification within the budget at every
    sweep point, and reports zero invariant violations (the CI
    client-slo gate).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.topology import global_cloud
from repro.topology.analysis import minimum_pair_connectivity, table3


def cmd_info(args: argparse.Namespace) -> int:
    """``repro info``: topology summary and Table III."""
    topo = global_cloud.topology()
    print(f"global cloud: {len(topo.nodes)} nodes, {topo.edge_count} links, "
          f"min pair connectivity {minimum_pair_connectivity(topo)}")
    for node in sorted(topo.nodes):
        name, _, _, region = global_cloud.CITIES[node]
        neighbors = ", ".join(str(n) for n in sorted(topo.neighbors(node)))
        print(f"  {node:>2}  {name:<14} {region:<14} -> {neighbors}")
    print("\nanalytical dissemination cost (Table III):")
    for method, row in table3(topo).items():
        latency = (
            f"{row.avg_path_latency_ms:6.1f} ms"
            if row.avg_path_latency_ms is not None
            else "      — "
        )
        print(f"  {method:<20} {row.avg_hops:6.2f} hops  "
              f"{row.scaled_cost:6.2f}x  {latency}")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: short end-to-end scenario with a compromised node."""
    from repro.byzantine.behaviors import DroppingBehavior
    from repro.overlay.network import OverlayNetwork

    net = OverlayNetwork.build(
        global_cloud.topology(),
        OverlayConfig(link_bandwidth_bps=1e6),
        seed=args.seed,
    )
    net.compromise(10, DroppingBehavior())
    print("node 10 compromised (black-hole forwarder)")
    net.client(7).send_priority(9, method=DisseminationMethod.flooding())
    sent = 0
    while sent < 10 and net.client(2).send_reliable(5, size_bytes=600):
        sent += 1
    net.run(5.0)
    print(f"priority 7->9 delivered: {net.delivered_count(7, 9)}/1")
    print(f"reliable 2->5 delivered: {net.delivered_count(2, 5)}/{sent} in order")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro experiment``: saturating flows on the scaled deployment."""
    from repro.messaging.message import Semantics
    from repro.workloads.experiment import Deployment

    semantics = Semantics(args.semantics)
    deployment = Deployment(seed=args.seed)
    flows = global_cloud.EVALUATION_FLOWS[: args.flows]
    for source, dest in flows:
        deployment.add_flow(source, dest, rate_fraction=args.rate,
                            semantics=semantics)
    print(f"running {len(flows)} {semantics.value} flow(s) at "
          f"{args.rate:.0%} of capacity for {args.seconds:.0f} s ...")
    deployment.run(args.seconds)
    window = (args.seconds * 0.25, args.seconds)
    for source, dest in flows:
        result = deployment.flow_result(source, dest, window)
        print(f"  {source:>2} -> {dest:<2}  {result.goodput_mbps:6.3f} Mbps "
              f"({result.goodput_fraction_of_capacity:5.1%} of a link)  "
              f"latency {result.mean_latency * 1000:7.1f} ms  "
              f"{result.delivered} delivered")
    print(f"dissemination cost: {deployment.dissemination_cost():.1f} "
          f"hops per delivered message")
    return 0


def cmd_turret(args: argparse.Namespace) -> int:
    """``repro turret``: randomized attack campaign; exit 1 on any finding."""
    from repro.byzantine.turret import TurretCampaign

    campaign = TurretCampaign(
        global_cloud.topology,
        n_compromised=args.compromised,
        run_seconds=args.seconds,
        master_seed=args.seed,
        config=OverlayConfig(link_bandwidth_bps=1e6),
    )
    report = campaign.run(args.iterations)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: seeded chaos soak; exit 1 on invariant violations."""
    from repro.faults.schedule import ChaosSpec
    from repro.workloads.experiment import Deployment

    deployment = Deployment(seed=args.seed)
    preset = args.preset
    if preset is None:
        preset = "link" if args.link_level else "full"
    spec_factory = {
        "link": ChaosSpec.link_level,
        "full": ChaosSpec.full,
        "soak": ChaosSpec.live_soak,
    }[preset]
    spec = spec_factory(duration=args.seconds, intensity=args.intensity)
    schedule = deployment.add_chaos(spec)
    if args.adaptive or args.fixed_recovery:
        deployment.add_defense(
            adaptive=args.adaptive,
            period=max(2.0, args.seconds / 2),
            downtime=0.5,
        )
    if args.print_schedule:
        print(schedule.describe())
    flows = global_cloud.EVALUATION_FLOWS[: args.flows]
    for source, dest in flows:
        deployment.add_flow(source, dest, rate_fraction=0.2)
    counts = ", ".join(f"{k}={v}" for k, v in schedule.counts().items() if v)
    recovery_note = (
        " + adaptive defense" if args.adaptive
        else " + fixed recovery" if args.fixed_recovery else ""
    )
    print(f"chaos soak: seed={args.seed} {args.seconds:.0f} s preset={preset}, "
          f"{len(schedule)} faults ({counts or 'none'}){recovery_note}")
    deployment.run(args.seconds + 10.0)  # settle time after the last fault
    window = (0.0, args.seconds)
    for source, dest in flows:
        result = deployment.flow_result(source, dest, window)
        print(f"  {source:>2} -> {dest:<2}  {result.goodput_mbps:6.3f} Mbps  "
              f"{result.delivered} delivered")
    engine = deployment.chaos
    monitor = deployment.monitor
    print(f"applied: {engine.summary()}")
    quarantines = deployment.network.stats.counter("link_quarantines").value
    reinstatements = deployment.network.stats.counter("link_reinstatements").value
    print(f"self-healing: {quarantines} quarantine(s), "
          f"{reinstatements} reinstatement(s)")
    if deployment.defense is not None:
        deployment.defense.stop()
        summary = deployment.defense.summary()
        mode = "adaptive" if summary["adaptive"] else "fixed"
        print(f"defense ({mode}): {summary['recoveries_completed']} "
              f"recoveries, {summary['total_downtime_seconds']:.1f} s downtime, "
              f"{summary['deferrals']} deferred, {summary['advances']} advanced, "
              f"{summary['escalations']} escalated, "
              f"{summary['tightenings']} tightened; "
              f"peak concurrent down {summary['budget']['peak_down']}"
              f"/{summary['budget']['max_down']}")
        suspects = ", ".join(summary["suspects"]) or "none"
        print(f"defense suspects at end: {suspects}")
    print(monitor.report())
    return 0 if monitor.ok else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: run a seeded workload, dump the telemetry report."""
    import json

    from repro.messaging.message import Semantics
    from repro.telemetry.report import build_report, to_csv
    from repro.workloads.experiment import Deployment

    if args.live:
        # Live mode: the report is the LiveReport dict (per-flow results,
        # transport totals incl. per-reason drop counters, chaos /
        # supervision / invariant summaries) rather than the sim report.
        # With --shards the run is the sharded multi-process cluster and
        # the dump is the ClusterReport: every flow carries its source
        # shard id, ``shards_detail`` holds each worker's full metrics,
        # and the top level is the cluster rollup.
        if args.format != "json":
            print("repro stats --live supports --format json only")
            return 2
        if args.shards:
            from repro.cluster.deployment import run_cluster
            from repro.cluster.spec import ClusterConfig

            live_report = run_cluster(
                ClusterConfig(
                    nodes=max(6 * args.shards, 8),
                    shards=args.shards,
                    duration=args.seconds,
                    seed=args.seed,
                )
            )
        else:
            from repro.runtime.live import LiveConfig, run_live

            live_report = run_live(
                LiveConfig(duration=args.seconds, seed=args.seed)
            )
        rendered = json.dumps(
            live_report.to_dict(), sort_keys=True, indent=2
        ) + "\n"
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"wrote json report to {args.output}")
        else:
            print(rendered, end="")
        return 0 if live_report.ok else 1

    semantics = Semantics(args.semantics)
    deployment = Deployment(seed=args.seed)
    if args.profile:
        deployment.sim.enable_profiling()
    if args.trace:
        deployment.network.stats.metrics.trace.enable()
    flows = global_cloud.EVALUATION_FLOWS[: args.flows]
    for source, dest in flows:
        deployment.add_flow(source, dest, rate_fraction=args.rate,
                            semantics=semantics)
    deployment.run(args.seconds)
    report = build_report(
        deployment,
        flows,
        window=(0.0, args.seconds),
        params={
            "seed": args.seed,
            "seconds": args.seconds,
            "flows": args.flows,
            "rate": args.rate,
            "semantics": semantics.value,
        },
        include_profile=args.profile,
        include_trace=args.trace,
    )
    if args.format == "json":
        rendered = json.dumps(report, sort_keys=True, indent=2) + "\n"
    else:
        rendered = to_csv(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(rendered, end="")
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    """``repro live``: run the overlay over real UDP sockets on localhost."""
    import json

    from repro.runtime.live import LiveConfig, run_live

    if args.method == "flooding":
        method = DisseminationMethod.flooding()
    else:
        method = DisseminationMethod.k_paths(args.k)
    recovery = ("adaptive" if args.adaptive
                else "fixed" if args.fixed_recovery else None)
    overlay = OverlayConfig()
    if recovery is not None:
        import dataclasses

        # Wall-clock runs last seconds, not the sim's minutes: compress
        # the rotation cadence and control loop to fit the duration.
        overlay = dataclasses.replace(
            overlay,
            defense=dataclasses.replace(
                overlay.defense,
                recovery_period=max(2.0, args.duration / 2),
                recovery_downtime=0.25,
                belief_half_life=max(2.0, args.duration / 4),
                action_cooldown=1.0,
                control_interval=0.25,
            ),
        )
    config = LiveConfig(
        nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        method=method,
        rate_msgs_per_sec=args.rate,
        size_bytes=args.size,
        overlay=overlay,
        chaos_preset=args.chaos,
        chaos_intensity=args.chaos_intensity,
        recovery=recovery,
    )
    chaos_note = f", chaos={args.chaos}" if args.chaos else ""
    if recovery is not None:
        chaos_note += f", recovery={recovery}"
    print(f"live overlay: {args.nodes} nodes on 127.0.0.1 (UDP), "
          f"{args.duration:.0f} s wall clock, method={args.method}, "
          f"seed={args.seed}{chaos_note}")
    report = run_live(config)
    if report.interrupted:
        print("interrupted; draining stopped early")
    for flow in report.flows:
        latency = (f"{flow.mean_latency * 1000:7.2f} ms"
                   if flow.mean_latency is not None else "      — ")
        print(f"  {flow.source!s:>2} -> {flow.dest!s:<2} {flow.semantics:<9}"
              f" {flow.delivered:>5}/{flow.sent:<5} ({flow.ratio:6.1%})  "
              f"latency {latency}")
    print(f"delivery: overall {report.delivery_ratio:.1%}  "
          f"priority {report.priority_ratio:.1%}  "
          f"reliable {report.reliable_ratio:.1%}")
    transport = report.transport
    print(f"transport: {transport['datagrams_received']} datagrams received, "
          f"{transport['decode_errors']} decode errors, "
          f"{transport['encode_errors']} encode drops")
    print(f"rx drops: {transport['misdirected']} misdirected, "
          f"{transport['unknown_sender']} unknown sender, "
          f"{transport['dispatch_errors']} dispatch error(s); "
          f"tx: {transport['send_errors']} send error(s), "
          f"{transport['send_retries']} retried")
    if report.chaos is not None:
        injector = report.chaos["injector"]
        print(f"chaos: {injector['losses']} lost, "
              f"{injector['duplicates']} duplicated, "
              f"{injector['reorders']} reordered, "
              f"{injector['corruptions']} corrupted, "
              f"{injector['partition_drops']} partition-dropped")
        supervision = report.supervision
        broken = ", ".join(supervision["broken"]) or "none"
        print(f"supervision: {supervision['kills']} kill(s), "
              f"{supervision['restarts']} restart(s), broken: {broken}")
        faulted = ", ".join(sorted(report.faulted_node_ids)) or "none"
        print(f"correct-flow delivery {report.correct_flow_ratio:.1%} "
              f"(faulted nodes excluded: {faulted})")
    if report.invariants is not None:
        print(f"invariants: {report.invariants['violations']} violation(s) "
              f"over {report.invariants['deliveries_checked']} deliveries")
    if report.adaptive is not None:
        summary = report.adaptive
        mode = "adaptive" if summary["adaptive"] else "fixed"
        print(f"defense ({mode}): {summary['recoveries_completed']} "
              f"recoveries, {summary['total_downtime_seconds']:.2f} s downtime, "
              f"{summary['deferrals']} deferred, {summary['advances']} advanced, "
              f"{summary['escalations']} escalated; peak concurrent down "
              f"{summary['budget']['peak_down']}/{summary['budget']['max_down']}")
    if report.runtime_errors:
        for message in report.runtime_errors:
            print(f"runtime error: {message}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote live report to {args.output}")
    # Under chaos the delivery gate applies to flows between non-faulted
    # nodes (a message into a partitioned or crashed endpoint is *meant*
    # to be lost); report.ok additionally fails the run on any runtime
    # error or invariant violation.
    gate_ratio = (report.correct_flow_ratio if report.chaos is not None
                  else report.delivery_ratio)
    ok = report.ok and gate_ratio >= args.min_delivery
    return 0 if ok else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster``: sharded multi-process overlay with signed
    dynamic membership, aggregated by the coordinator control plane."""
    import json

    from repro.cluster.deployment import run_cluster
    from repro.cluster.spec import ClusterConfig

    config = ClusterConfig(
        nodes=args.nodes,
        shards=args.shards,
        duration=args.duration,
        seed=args.seed,
        rate_msgs_per_sec=args.rate,
        size_bytes=args.size,
        drain=args.drain,
        kpaths=args.k,
        flow_stride=args.flow_stride,
        chaos_preset=args.chaos,
        chaos_intensity=args.chaos_intensity,
        joins=args.joins,
        leaves=args.leaves,
    )
    chaos_note = f", chaos={args.chaos}" if args.chaos else ""
    print(f"cluster: {args.nodes} nodes over {args.shards} worker "
          f"processes (UDP on 127.0.0.1), {args.duration:.0f} s wall "
          f"clock, k={args.k}, seed={args.seed}{chaos_note}, "
          f"{args.joins} join(s) + {args.leaves} leave(s)")
    report = run_cluster(config)
    for flow in report.flows:
        latency = (f"{flow['mean_latency'] * 1000:7.2f} ms"
                   if flow["mean_latency"] is not None else "      — ")
        tag = " [post-join]" if flow["post_join"] else ""
        print(f"  s{flow['shard']} {flow['source']!s:>3} -> "
              f"{flow['dest']!s:<3} {flow['semantics']:<9}"
              f" {flow['delivered']:>5}/{flow['sent']:<5} "
              f"({flow['ratio']:6.1%})  latency {latency}{tag}")
    excluded = ", ".join(sorted(report.excluded)) or "none"
    print(f"delivery: overall {report.delivery_ratio:.1%}  "
          f"correct-flow {report.correct_flow_ratio:.1%} "
          f"(excluded: {excluded})")
    if report.membership_events:
        for event in report.membership_events:
            host = (f" (hosted by shard {event['host_shard']})"
                    if "host_shard" in event else "")
            print(f"membership: {event['action']} node {event['node']} "
                  f"seqno {event['seqno']}{host}")
        if report.post_join_flows:
            print(f"post-join delivery: {report.post_join_ratio:.1%} "
                  f"over {len(report.post_join_flows)} joiner flow(s)")
    print(f"invariants: {report.violations} violation(s) across "
          f"{report.shards} shard(s); wall {report.wall_seconds:.1f} s")
    for failure in report.failures:
        print(f"failure: {failure}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote cluster report to {args.output}")
    # Same gate semantics as ``repro live``: under chaos, only flows
    # between non-excluded endpoints are held to the delivery floor.
    gate_ratio = (report.correct_flow_ratio if args.chaos is not None
                  else report.delivery_ratio)
    ok = report.ok and gate_ratio >= args.min_delivery
    return 0 if ok else 1


def cmd_perfbench(args: argparse.Namespace) -> int:
    """``repro perfbench``: hot-path microbenchmarks + regression gate."""
    import json

    from repro.perf import attach_pre_pr, compare_to_baseline, run_suite

    mode = "quick" if args.quick else "full"
    print(f"perfbench: mode={mode} seed={args.seed}")
    report = run_suite(mode=mode, seed=args.seed)
    if args.merge_pre_pr:
        with open(args.merge_pre_pr, "r", encoding="utf-8") as handle:
            attach_pre_pr(report, json.load(handle))
    for name, result in report["benchmarks"].items():
        speedup = report.get("speedup_vs_pre_pr", {}).get(name)
        extra = f"  ({speedup:.2f}x vs pre-PR)" if speedup is not None else ""
        print(f"  {name:<20} {result['ops_per_sec']:>12,.0f} ops/s  "
              f"p50 {result['p50_us']:7.2f} us  p99 {result['p99_us']:8.2f} us"
              f"{extra}")
    print(f"  calibration: {report['calibration_ops_per_sec']:,.0f} loop iters/s")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote perf report to {args.output}")
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        rows = compare_to_baseline(report, baseline,
                                   max_regression=args.max_regression)
        failed = [name for name, _, ok in rows if not ok]
        for name, ratio, ok in rows:
            verdict = "ok" if ok else "REGRESSION"
            print(f"  gate {name:<20} {ratio:6.2f}x of baseline  {verdict}")
        if failed:
            print(f"perf regression on: {', '.join(failed)} "
                  f"(>{args.max_regression:.0%} below calibrated baseline)")
            return 1
        print("perf gate: all hot paths within budget")
    return 0


def cmd_overload(args: argparse.Namespace) -> int:
    """``repro overload``: offered-load sweep + admission goodput gate."""
    import json

    from repro.clients import run_overload

    multipliers = tuple(float(m) for m in args.multipliers.split(","))
    print(
        f"overload: nodes={args.nodes} duration={args.duration:g}s "
        f"base-rate={args.base_rate:g}/s multipliers={args.multipliers} "
        f"seed={args.seed}"
    )
    report = run_overload(
        seed=args.seed,
        nodes=args.nodes,
        duration=args.duration,
        drain=args.drain,
        base_rate=args.base_rate,
        multipliers=multipliers,
        include_off=not args.skip_off,
        progress=lambda label: print(f"  running {label} ..."),
    )
    print(f"  {'arm':<4} {'mult':>5} {'offered':>9} {'delivered':>9} "
          f"{'goodput/s':>10} {'p50 ms':>8} {'p99 ms':>9} {'rejected':>9}")
    for stage in report["stages"]:
        arm = "on" if stage["admission"] else "off"
        rejected = stage["outcomes"].get("rejected", 0)
        print(f"  {arm:<4} {stage['multiplier']:>5g} {stage['offered']:>9,} "
              f"{stage['delivered']:>9,} {stage['goodput_msgs_per_s']:>10,.1f} "
              f"{stage['p50_ms']:>8.1f} {stage['p99_ms']:>9.1f} "
              f"{rejected:>9,}")
    summary = report["summary"]
    print(f"  offered total: {summary['offered_total']:,} messages")
    print(f"  admission-on goodput at max load: "
          f"{summary['goodput_ratio_on']:.1%} of 1x "
          f"(p99 {summary['p99_ms_on_at_max']:.1f} ms)")
    if "goodput_ratio_off" in summary:
        print(f"  admission-off goodput at max load: "
              f"{summary['goodput_ratio_off']:.1%} of 1x "
              f"(p99 {summary['p99_ms_off_at_max']:.1f} ms)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote overload report to {args.output}")
    if args.min_goodput is not None:
        if summary["goodput_ratio_on"] < args.min_goodput:
            print(f"overload gate: FAILED — admission-on sustained only "
                  f"{summary['goodput_ratio_on']:.1%} of 1x goodput "
                  f"(need {args.min_goodput:.1%})")
            return 1
        print(f"overload gate: ok ({summary['goodput_ratio_on']:.1%} "
              f">= {args.min_goodput:.1%})")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """``repro slo``: session-tier SLO sweep + client-success gate."""
    import json

    from repro.clients import run_slo

    multipliers = tuple(float(m) for m in args.multipliers.split(","))
    print(
        f"slo: nodes={args.nodes} duration={args.duration:g}s "
        f"base-rate={args.base_rate:g}/s multipliers={args.multipliers} "
        f"chaos-intensity={args.intensity:g} seed={args.seed}"
    )
    report = run_slo(
        seed=args.seed,
        nodes=args.nodes,
        duration=args.duration,
        drain=args.drain,
        base_rate=args.base_rate,
        multipliers=multipliers,
        intensity=args.intensity,
        include_off=not args.skip_off,
        progress=lambda label: print(f"  running {label} ..."),
    )
    print(f"  {'arm':<4} {'mult':>5} {'requests':>9} {'acked':>8} "
          f"{'success':>8} {'amp':>7} {'failover':>9} {'shed':>6} "
          f"{'viol':>5}")
    for stage in report["stages"]:
        arm = "on" if stage["sessions"] else "off"
        print(f"  {arm:<4} {stage['multiplier']:>5g} "
              f"{stage['requests']:>9,} {stage['succeeded']:>8,} "
              f"{stage['success_ratio']:>8.2%} {stage['amplification']:>7.3f} "
              f"{stage['failovers']:>9,} {stage['shed']:>6,} "
              f"{stage['violations']:>5}")
    summary = report["summary"]
    print(f"  requests total: {summary['requests_total']:,}")
    print(f"  success at 1x under chaos: "
          f"on={summary['success_on_at_1x']:.2%}"
          + (f" off={summary['success_off_at_1x']:.2%}"
             if "success_off_at_1x" in summary else ""))
    print(f"  max amplification (on): {summary['max_amplification_on']:.4f} "
          f"(bound {summary['amplification_bound']:.2f}); "
          f"violations: {summary['violations']}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote slo report to {args.output}")
    if args.min_success is not None:
        failures = []
        if summary["success_on_at_1x"] < args.min_success:
            failures.append(
                f"sessions-on success at 1x is "
                f"{summary['success_on_at_1x']:.2%} "
                f"(need {args.min_success:.2%})"
            )
        if summary["max_amplification_on"] > summary["amplification_bound"]:
            failures.append(
                f"retry amplification {summary['max_amplification_on']:.4f} "
                f"exceeds budget bound {summary['amplification_bound']:.2f}"
            )
        if summary["violations"]:
            failures.append(f"{summary['violations']} invariant violations")
        if failures:
            for failure in failures:
                print(f"slo gate: FAILED — {failure}")
            return 1
        print(f"slo gate: ok ({summary['success_on_at_1x']:.2%} "
              f">= {args.min_success:.2%}, amplification bounded, "
              f"0 violations)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Practical Intrusion-Tolerant Networks (ICDCS 2016) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="topology and Table III").set_defaults(func=cmd_info)

    demo = sub.add_parser("demo", help="short end-to-end scenario")
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=cmd_demo)

    experiment = sub.add_parser("experiment", help="saturating flows on the deployment")
    experiment.add_argument("--flows", type=int, default=5, choices=range(1, 6))
    experiment.add_argument("--rate", type=float, default=1.0)
    experiment.add_argument("--seconds", type=float, default=20.0)
    experiment.add_argument("--semantics", choices=["priority", "reliable"],
                            default="priority")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.set_defaults(func=cmd_experiment)

    turret = sub.add_parser("turret", help="randomized attack campaign")
    turret.add_argument("--iterations", type=int, default=5)
    turret.add_argument("--compromised", type=int, default=3)
    turret.add_argument("--seconds", type=float, default=5.0)
    turret.add_argument("--seed", type=int, default=0)
    turret.set_defaults(func=cmd_turret)

    chaos = sub.add_parser("chaos", help="seeded chaos soak with invariant monitor")
    chaos.add_argument("--seconds", type=float, default=60.0)
    chaos.add_argument("--intensity", type=float, default=1.0)
    chaos.add_argument("--flows", type=int, default=3, choices=range(1, 6))
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--preset", choices=["link", "full", "soak"],
                       default=None,
                       help="ChaosSpec preset (default: full; link faults "
                            "only with --link-level)")
    chaos.add_argument("--link-level", action="store_true",
                       help="link faults only (back-compat for "
                            "--preset link)")
    chaos.add_argument("--adaptive", action="store_true",
                       help="arm the feedback-controlled defense "
                            "(belief-driven recovery + quarantine)")
    chaos.add_argument("--fixed-recovery", action="store_true",
                       help="arm the fixed-rotation recovery baseline "
                            "(same actuation, open loop)")
    chaos.add_argument("--print-schedule", action="store_true",
                       help="print the generated fault schedule")
    chaos.set_defaults(func=cmd_chaos)

    stats = sub.add_parser("stats", help="run a workload, dump the telemetry report")
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--seconds", type=float, default=10.0)
    stats.add_argument("--flows", type=int, default=3, choices=range(1, 6))
    stats.add_argument("--rate", type=float, default=0.5)
    stats.add_argument("--semantics", choices=["priority", "reliable"],
                       default="priority")
    stats.add_argument("--format", choices=["json", "csv"], default="json")
    stats.add_argument("--output", default=None,
                       help="write the report to a file instead of stdout")
    stats.add_argument("--profile", action="store_true",
                       help="include wall-clock event-loop profile "
                            "(non-deterministic)")
    stats.add_argument("--trace", action="store_true",
                       help="enable sim-time event tracing and include "
                            "the event summary")
    stats.add_argument("--live", action="store_true",
                       help="run the live (asyncio/UDP) overlay instead of "
                            "the simulator and dump its JSON report, "
                            "including transport drop counters "
                            "(--flows/--rate/--semantics are sim-only)")
    stats.add_argument("--shards", type=int, default=0,
                       help="with --live: run the sharded multi-process "
                            "cluster with this many worker processes and "
                            "dump the ClusterReport (per-flow shard id "
                            "tags + cluster rollup + per-shard metrics)")
    stats.set_defaults(func=cmd_stats)

    live = sub.add_parser(
        "live", help="run the overlay over real asyncio/UDP sockets"
    )
    live.add_argument("--nodes", type=int, default=4)
    live.add_argument("--duration", type=float, default=5.0,
                      help="wall-clock seconds, including the drain window")
    live.add_argument("--method", choices=["flooding", "kpaths"],
                      default="flooding")
    live.add_argument("--k", type=int, default=2,
                      help="number of disjoint paths when --method kpaths")
    live.add_argument("--rate", type=float, default=20.0,
                      help="offered load per flow, messages/second")
    live.add_argument("--size", type=int, default=256,
                      help="message payload size in bytes")
    live.add_argument("--seed", type=int, default=0)
    live.add_argument("--chaos", choices=["link", "full", "soak"],
                      default=None,
                      help="arm seeded fault injection against the real "
                           "sockets with this ChaosSpec preset")
    live.add_argument("--chaos-intensity", type=float, default=1.0,
                      help="scale factor on the chaos preset's fault rates")
    live.add_argument("--adaptive", action="store_true",
                      help="arm the feedback-controlled defense (adaptive "
                           "proactive recovery + quarantine, cadence "
                           "compressed to the run duration)")
    live.add_argument("--fixed-recovery", action="store_true",
                      help="arm the fixed-rotation recovery baseline")
    live.add_argument("--output", default=None,
                      help="also write the JSON report to a file")
    live.add_argument("--min-delivery", type=float, default=0.0,
                      help="exit 1 if delivery falls below this fraction "
                           "(correct-flow delivery when chaos is armed; "
                           "CI gate)")
    live.set_defaults(func=cmd_live)

    cluster = sub.add_parser(
        "cluster",
        help="shard the overlay across worker processes with signed "
             "dynamic membership",
    )
    cluster.add_argument("--nodes", type=int, default=24,
                         help="total overlay size (generated topology)")
    cluster.add_argument("--shards", type=int, default=4,
                         help="number of worker OS processes")
    cluster.add_argument("--duration", type=float, default=8.0,
                         help="wall-clock seconds, including the drain window")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--rate", type=float, default=10.0,
                         help="offered load per flow, messages/second")
    cluster.add_argument("--size", type=int, default=200,
                         help="message payload size in bytes")
    cluster.add_argument("--drain", type=float, default=2.0,
                         help="quiet tail after injection stops")
    cluster.add_argument("--k", type=int, default=2,
                         help="disjoint paths per message (0 = flooding)")
    cluster.add_argument("--flow-stride", type=int, default=1,
                         help="source every Nth flow of the global plan "
                              "(thin the offered load on small hosts)")
    cluster.add_argument("--chaos", choices=["link", "full", "soak"],
                         default=None,
                         help="arm seeded fault injection with this "
                              "ChaosSpec preset (sliced per shard)")
    cluster.add_argument("--chaos-intensity", type=float, default=1.0)
    cluster.add_argument("--joins", type=int, default=1,
                         help="mid-run signed JOINs to drive")
    cluster.add_argument("--leaves", type=int, default=1,
                         help="mid-run signed LEAVEs to drive")
    cluster.add_argument("--output", default=None,
                         help="also write the JSON ClusterReport to a file")
    cluster.add_argument("--min-delivery", type=float, default=0.0,
                         help="exit 1 if delivery falls below this fraction "
                              "(correct-flow delivery when chaos is armed; "
                              "CI gate)")
    cluster.set_defaults(func=cmd_cluster)

    perfbench = sub.add_parser(
        "perfbench", help="hot-path microbenchmarks + perf-regression gate"
    )
    perfbench.add_argument("--quick", action="store_true",
                           help="reduced op counts (CI gate mode)")
    perfbench.add_argument("--seed", type=int, default=0)
    perfbench.add_argument("--output", default=None,
                           help="write the BENCH_perf.json payload to a file")
    perfbench.add_argument("--baseline", default=None,
                           help="compare against a committed BENCH_perf.json; "
                                "exit 1 on regression")
    perfbench.add_argument("--max-regression", type=float, default=0.25,
                           help="tolerated ops/sec drop vs the calibrated "
                                "baseline (default 0.25)")
    perfbench.add_argument("--merge-pre-pr", default=None,
                           help="record a pre-PR measurement's ops/sec and "
                                "speedups inside the report")
    perfbench.set_defaults(func=cmd_perfbench)

    overload = sub.add_parser(
        "overload",
        help="client-tier offered-load sweep with admission on/off + gate",
    )
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument("--nodes", type=int, default=8)
    overload.add_argument("--duration", type=float, default=20.0,
                          help="offered-load window per stage, simulated "
                               "seconds (default 20)")
    overload.add_argument("--drain", type=float, default=5.0,
                          help="extra drain time after the tier stops "
                               "(default 5)")
    overload.add_argument("--base-rate", type=float, default=15.0,
                          help="1x burst-arrival rate for the whole tier, "
                               "bursts/second (default 15)")
    overload.add_argument("--multipliers", default="1,2,4,7,10",
                          help="comma-separated offered-load multipliers "
                               "(default 1,2,4,7,10)")
    overload.add_argument("--skip-off", action="store_true",
                          help="run only the admission-on arm")
    overload.add_argument("--output", default=None,
                          help="write the BENCH_overload.json payload here")
    overload.add_argument("--min-goodput", type=float, default=None,
                          help="gate: require admission-on goodput at the "
                               "highest multiplier to be at least this "
                               "fraction of its 1x goodput; exit 1 otherwise")
    overload.set_defaults(func=cmd_overload)

    slo = sub.add_parser(
        "slo",
        help="client session-tier SLO sweep under soak chaos + gate",
    )
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--nodes", type=int, default=16)
    slo.add_argument("--duration", type=float, default=15.0,
                     help="offered-load window per stage, simulated "
                          "seconds (default 15)")
    slo.add_argument("--drain", type=float, default=6.0,
                     help="extra drain time after the tier stops "
                          "(default 6)")
    slo.add_argument("--base-rate", type=float, default=60.0,
                     help="1x tier-wide request arrival rate, "
                          "requests/second (default 60)")
    slo.add_argument("--multipliers", default="1,10",
                     help="comma-separated offered-load multipliers "
                          "(default 1,10)")
    slo.add_argument("--intensity", type=float, default=2.0,
                     help="live-soak chaos intensity; 0 disables chaos "
                          "(default 2.0)")
    slo.add_argument("--skip-off", action="store_true",
                     help="run only the sessions-on arm")
    slo.add_argument("--output", default=None,
                     help="write the BENCH_client_slo.json payload here")
    slo.add_argument("--min-success", type=float, default=None,
                     help="gate: require sessions-on client-visible "
                          "success at 1x to reach this ratio, retry "
                          "amplification within budget at every sweep "
                          "point, and zero invariant violations; exit 1 "
                          "otherwise")
    slo.set_defaults(func=cmd_slo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
