"""The "SLO under fire" sweep: client-visible success vs chaos + load.

For each session arm ("on" = full reliability machinery, "off" = naive
single-attempt clients) and each offered-load multiplier, a fresh seeded
simulation runs the session tier against a chordal-ring overlay with the
DoS-resistant admission stage in front AND the live-soak chaos preset
(wire noise, crashes, partitions) injected for the whole window.  The
measurement is end-to-end and client-visible: a request only counts as
a success when the destination's acknowledgment reaches the session
before its deadline.

What the arms demonstrate:

* **sessions on** — budgeted retries + ingress failover restore the
  client-visible success ratio to >= 99% under soak chaos at base load,
  while the global retry budget mechanically bounds amplification
  (offered interior load <= (1 + budget) x base) so the retries cannot
  recreate the metastable congestion collapse the PR 9 sweep
  quantified.  At 10x offered load the tier degrades gracefully —
  priority downgrades, then shedding — and *delivered* goodput holds at
  or above its 1x level instead of collapsing.
* **sessions off** — the same workload with one attempt per request and
  no failover: every ingress crash, parked-then-expired offer, or lost
  ack is a silent client-visible failure.

Every stage is deterministic given its seed: each builds its own
network, chaos schedule, and RNG registry, so arms and multipliers
cannot perturb one another.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.clients.overload import OVERLOAD_ADMISSION
from repro.clients.session import (
    SessionConfig,
    SessionTier,
    SessionWorkloadConfig,
)
from repro.faults.chaos import ChaosEngine
from repro.faults.schedule import ChaosSpec
from repro.messaging.admission import AdmissionConfig
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology import generators

#: The SLO sweep's admission tuning: the overload sweep's, but with the
#: two-key (per-destination) meter enabled — Zipf-hot destinations are
#: throttled at the ingress edge, not in the interior queues.
SLO_ADMISSION = replace(OVERLOAD_ADMISSION, per_destination=True)

#: The naive-client arm: one attempt, no retry budget, no failover.
SESSIONS_OFF = SessionConfig(max_attempts=1, retry_budget=0.0, backups=0)


@dataclass
class SloStage:
    """Measured outcome of one (sessions arm, multiplier) stage."""

    multiplier: float
    sessions: bool
    duration: float
    requests: int
    succeeded: int
    failed: int
    shed: int
    success_ratio: float
    goodput_rps: float  # acked requests/second over the offered window
    amplification: float
    base_offers: int
    retry_offers: int
    failovers: int
    nacks_consumed: int
    breaker_opens: int
    downgraded: int
    duplicates_suppressed: int
    violations: int
    chaos: Dict[str, int] = field(default_factory=dict)
    tier: Dict[str, Any] = field(default_factory=dict)
    admission_totals: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable stage record for reports and artifacts."""
        return {
            "multiplier": self.multiplier,
            "sessions": self.sessions,
            "duration_s": self.duration,
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "shed": self.shed,
            "success_ratio": round(self.success_ratio, 4),
            "goodput_rps": round(self.goodput_rps, 2),
            "amplification": round(self.amplification, 4),
            "base_offers": self.base_offers,
            "retry_offers": self.retry_offers,
            "failovers": self.failovers,
            "nacks_consumed": self.nacks_consumed,
            "breaker_opens": self.breaker_opens,
            "downgraded": self.downgraded,
            "duplicates_suppressed": self.duplicates_suppressed,
            "violations": self.violations,
            "chaos": dict(self.chaos),
            "tier": dict(self.tier),
            "admission_totals": dict(self.admission_totals),
        }


_ADMISSION_KEYS = (
    "offered", "admitted", "parked", "rejected",
    "evicted", "released", "expired", "cleared",
)


def _run_stage(
    *,
    seed: int,
    nodes: int,
    duration: float,
    drain: float,
    multiplier: float,
    base_rate: float,
    workload: SessionWorkloadConfig,
    session: SessionConfig,
    sessions_on: bool,
    admission: Optional[AdmissionConfig],
    intensity: float,
    link_bandwidth_bps: float,
) -> SloStage:
    config = OverlayConfig(
        admission=admission, link_bandwidth_bps=link_bandwidth_bps
    )
    topology = generators.chordal_ring(nodes, chords=2, weight=0.001)
    net = OverlayNetwork.build(topology, config, seed=seed)

    engine = None
    if intensity > 0:
        schedule = ChaosSpec.live_soak(duration, intensity=intensity).generate(
            topology, seed=seed
        )
        engine = ChaosEngine(net, schedule)
        engine.arm()

    ranked = sorted(net.nodes)
    net.sim.rngs.stream("slo:dest-rank").shuffle(ranked)
    stage_workload = SessionWorkloadConfig(
        arrival_rate=base_rate * multiplier,
        sessions_per_node=workload.sessions_per_node,
        zipf_exponent=workload.zipf_exponent,
        size_bytes=workload.size_bytes,
        method_k=workload.method_k,
        session=session,
    )
    tier = SessionTier(
        net, sorted(net.nodes), ranked, workload=stage_workload,
        name="on" if sessions_on else "off",
    )
    tier.start()
    net.run(duration)
    tier.stop()
    net.run(drain)
    tier.finalize()

    totals = {key: 0 for key in _ADMISSION_KEYS}
    if admission is not None:
        for node in net.nodes.values():
            snap = node.admission.snapshot()
            for key in _ADMISSION_KEYS:
                totals[key] += snap[key]
    snapshot = tier.snapshot()
    return SloStage(
        multiplier=multiplier,
        sessions=sessions_on,
        duration=duration,
        requests=snapshot["requests"],
        succeeded=snapshot["succeeded"],
        failed=snapshot["failed"],
        shed=snapshot["shed"],
        success_ratio=snapshot["success_ratio"],
        goodput_rps=snapshot["succeeded"] / duration if duration > 0 else 0.0,
        amplification=snapshot["amplification"],
        base_offers=snapshot["base_offers"],
        retry_offers=snapshot["retry_offers"],
        failovers=snapshot["failovers"],
        nacks_consumed=snapshot["nacks_consumed"],
        breaker_opens=snapshot["breaker_opens"],
        downgraded=snapshot["downgraded"],
        duplicates_suppressed=snapshot["duplicates_suppressed"],
        violations=snapshot["invariant_violations"],
        chaos=dict(engine.counts) if engine is not None else {},
        tier=snapshot,
        admission_totals=totals,
    )


def run_slo(
    *,
    seed: int = 0,
    nodes: int = 16,
    duration: float = 30.0,
    drain: float = 8.0,
    base_rate: float = 60.0,
    multipliers: Sequence[float] = (1.0, 4.0, 10.0),
    intensity: float = 2.0,
    workload: Optional[SessionWorkloadConfig] = None,
    session: Optional[SessionConfig] = None,
    admission: Optional[AdmissionConfig] = None,
    include_off: bool = True,
    link_bandwidth_bps: float = 3e5,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Sweep (sessions on/off) x multipliers under soak chaos.

    ``base_rate`` is the 1x tier-wide request arrival rate.  Returns a
    JSON-ready report whose ``summary`` holds the headline gates:
    sessions-on success at 1x (the >= 99% SLO), the sessions-off
    baseline, worst-case amplification across the on arm (must stay
    within ``1 + retry_budget``), delivered-goodput ratio at the top
    multiplier, and total invariant violations.
    """
    workload = workload or SessionWorkloadConfig()
    session = session or workload.session
    admission = admission if admission is not None else SLO_ADMISSION
    arms: List[bool] = [True]
    if include_off:
        arms.append(False)

    stages: List[SloStage] = []
    for sessions_on in arms:
        for multiplier in multipliers:
            if progress is not None:
                progress(
                    f"sessions={'on' if sessions_on else 'off'} "
                    f"x{multiplier:g}"
                )
            stages.append(
                _run_stage(
                    seed=seed,
                    nodes=nodes,
                    duration=duration,
                    drain=drain,
                    multiplier=multiplier,
                    base_rate=base_rate,
                    workload=workload,
                    session=session if sessions_on else SESSIONS_OFF,
                    sessions_on=sessions_on,
                    admission=admission,
                    intensity=intensity,
                    link_bandwidth_bps=link_bandwidth_bps,
                )
            )

    low, high = min(multipliers), max(multipliers)

    def stage_for(on: bool, mult: float) -> Optional[SloStage]:
        for stage in stages:
            if stage.sessions is on and stage.multiplier == mult:
                return stage
        return None

    on_base = stage_for(True, low)
    on_peak = stage_for(True, high)
    on_stages = [s for s in stages if s.sessions]
    budget = session.retry_budget
    summary: Dict[str, Any] = {
        "requests_total": sum(stage.requests for stage in stages),
        "max_multiplier": high,
        "retry_budget": budget,
        "success_on_at_1x": round(
            on_base.success_ratio if on_base else 0.0, 4
        ),
        "max_amplification_on": round(
            max((s.amplification for s in on_stages), default=1.0), 4
        ),
        "amplification_bound": round(1.0 + budget, 4),
        "goodput_ratio_on": round(
            on_peak.goodput_rps / on_base.goodput_rps
            if on_base and on_peak and on_base.goodput_rps > 0
            else 0.0,
            4,
        ),
        "violations": sum(stage.violations for stage in stages),
        "failovers_on": sum(s.failovers for s in on_stages),
        "retries_on": sum(s.retry_offers for s in on_stages),
    }
    if include_off:
        off_base = stage_for(False, low)
        summary["success_off_at_1x"] = round(
            off_base.success_ratio if off_base else 0.0, 4
        )

    return {
        "params": {
            "seed": seed,
            "nodes": nodes,
            "duration_s": duration,
            "drain_s": drain,
            "base_rate": base_rate,
            "multipliers": list(multipliers),
            "chaos_intensity": intensity,
            "sessions_per_node": workload.sessions_per_node,
            "size_bytes": workload.size_bytes,
            "method_k": workload.method_k,
            "deadline_s": session.deadline,
            "attempt_timeout_s": session.attempt_timeout,
            "max_attempts": session.max_attempts,
            "retry_budget": session.retry_budget,
            "per_destination_admission": (
                admission.per_destination if admission else False
            ),
            "link_bandwidth_bps": link_bandwidth_bps,
        },
        "stages": [stage.to_dict() for stage in stages],
        "summary": summary,
    }


__all__ = ["SESSIONS_OFF", "SLO_ADMISSION", "SloStage", "run_slo"]
