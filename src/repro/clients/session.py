"""Client-side reliability sessions: budgeted retries, ingress failover,
and graceful degradation under fire.

PR 9's client tier measures what the overlay delivers; this layer closes
the loop at the *edge* the way PR 6 closed it in the interior.  A
:class:`Session` is a small reliability state machine in front of
:meth:`OverlayNode.offer_priority` that turns "fire one priority message
and hope" into a client-visible request/acknowledgment contract:

* **Per-request deadline budget** — every request carries an absolute
  deadline; attempts retry with exponential backoff and *decorrelated
  jitter* (``sleep = min(cap, uniform(base, 3 * prev))``) until the
  deadline, the attempt cap, or the retry budget runs out.
* **Global retry budget (the anti-retry-storm invariant)** — a tier-wide
  token bucket accrues ``retry_budget`` tokens per *base* request and
  every retry spends exactly one, so total offered interior load can
  never exceed ``(1 + retry_budget) x base`` — mechanically, not by
  tuning.  Naive client retries are precisely the load-amplification
  mechanism behind metastable congestion collapse; this bound is what
  makes retries safe to enable under overload.
* **Idempotency keys + destination-side dedup window** — every request
  payload carries a unique key; the destination responder processes a
  key at most once per window and (re-)acks every copy, so a retry can
  rescue a lost ack without ever double-delivering to the application.
* **Ingress health tracking with failover** — each session has a home
  ingress plus backups; crash, isolation (all links quarantined),
  admission rejects, typed admission NACKs, and ack-probe timeouts all
  feed a per-ingress circuit breaker (CLOSED -> OPEN -> HALF_OPEN), and
  attempts route to the first healthy candidate.
* **Graceful-degradation ladder** — when the ingress admission state or
  the retry budget tightens, new requests are *downgraded* in priority
  toward a floor first; only when the budget is exhausted *and* the
  ingress is rejecting are they shed outright (fail-fast without adding
  interior load).

The tier runs unchanged on the deterministic simulator, the live
asyncio runtime, and the sharded cluster: it only uses the substrate
duck type (``.sim``, ``.node()``, ``.nodes``, ``.stats``) plus the
overlay's ``delivery_observers`` / ``nack_observers`` taps.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ProtocolError, TopologyError
from repro.messaging.admission import AdmissionOutcome, AdmissionState
from repro.messaging.priority import MAX_PRIORITY, MIN_PRIORITY
from repro.overlay.config import DisseminationMethod

#: Payload tags.  Requests and acks are plain strings so they survive the
#: live wire codec (None/bytes/str) and the sharded cluster unchanged.
REQUEST_PREFIX = "sreq:"
ACK_PREFIX = "sack:"
#: Wire size of a session ack (small, high-priority control-ish reply).
ACK_SIZE_BYTES = 32


@dataclass(frozen=True)
class SessionConfig:
    """Reliability knobs of one client session."""

    #: Total per-request budget: the request fails when it cannot finish
    #: (including backoff) before ``created_at + deadline``.
    deadline: float = 4.0
    #: Per-attempt ack timeout (the probe timeout feeding the breaker).
    attempt_timeout: float = 0.8
    #: Hard cap on attempts per request (first attempt included).
    max_attempts: int = 5
    #: Retry tokens accrued per base request (the amplification bound:
    #: offered <= (1 + retry_budget) x base, enforced mechanically).
    retry_budget: float = 0.25
    #: Token-bucket depth: how much unused retry allowance can bank up.
    retry_burst: float = 32.0
    #: Decorrelated-jitter backoff: sleep = min(cap, uniform(base, 3*prev)).
    backoff_base: float = 0.05
    backoff_cap: float = 0.8
    #: Request priority and the degradation-ladder floor it shrinks to.
    priority: int = 6
    priority_floor: int = 2
    #: Priority of the destination's ack (must outrank data under load).
    ack_priority: int = 9
    #: Destination-side idempotency window.  Must comfortably exceed
    #: ``deadline`` so every possible retry of a key lands in-window.
    dedup_window: float = 30.0
    #: Circuit breaker: consecutive failures to open, and the cooloff
    #: after which a half-open trial is allowed.
    breaker_threshold: int = 3
    breaker_cooloff: float = 1.0
    #: Backup ingress nodes per session (failover candidates).
    backups: int = 2
    #: Shed (fail fast, zero interior load) instead of offering when the
    #: retry budget is dry *and* the ingress is in REJECT.
    shed_on_reject: bool = True
    #: Per-message expiration for request attempts (clamped to the
    #: remaining deadline) and for acks.
    request_expire: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        if not 0 < self.attempt_timeout <= self.deadline:
            raise ConfigurationError("need 0 < attempt_timeout <= deadline")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.retry_budget < 0:
            raise ConfigurationError("retry_budget must be >= 0")
        if self.retry_burst < 0:
            raise ConfigurationError("retry_burst must be >= 0")
        if not 0 < self.backoff_base <= self.backoff_cap:
            raise ConfigurationError("need 0 < backoff_base <= backoff_cap")
        if not (
            MIN_PRIORITY
            <= self.priority_floor
            <= self.priority
            <= MAX_PRIORITY
        ):
            raise ConfigurationError(
                "need MIN <= priority_floor <= priority <= MAX"
            )
        if not MIN_PRIORITY <= self.ack_priority <= MAX_PRIORITY:
            raise ConfigurationError("ack_priority out of range")
        if self.dedup_window < self.deadline:
            raise ConfigurationError("dedup_window must cover the deadline")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if self.breaker_cooloff <= 0:
            raise ConfigurationError("breaker_cooloff must be positive")
        if self.backups < 0:
            raise ConfigurationError("backups must be >= 0")
        if self.request_expire <= 0:
            raise ConfigurationError("request_expire must be positive")


@dataclass(frozen=True)
class SessionWorkloadConfig:
    """Open-loop session workload across the tier."""

    #: Base request arrivals/second across the whole tier.
    arrival_rate: float = 20.0
    sessions_per_node: int = 2
    #: Zipf exponent for destination fan-in (1.0 = classic Zipf).
    zipf_exponent: float = 1.1
    size_bytes: int = 200
    #: Dissemination for request messages: 0 = constrained flooding,
    #: k >= 1 = k node-disjoint paths.
    method_k: int = 2
    session: SessionConfig = field(default_factory=SessionConfig)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if self.sessions_per_node < 1:
            raise ConfigurationError("sessions_per_node must be >= 1")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if self.size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        if self.method_k < 0:
            raise ConfigurationError("method_k must be >= 0")


class RetryBudget:
    """The tier-global anti-retry-storm token bucket.

    Starts *empty*: tokens accrue only as base requests are offered
    (``ratio`` per base offer, capped at ``burst``), and each retry
    spends exactly one.  Therefore at any instant::

        retries_spent <= ratio * base_offers

    which is the amplification invariant — no failure/NACK pattern can
    break it, because the tokens simply do not exist.
    """

    __slots__ = ("ratio", "burst", "tokens", "accrued", "spent")

    def __init__(self, ratio: float, burst: float):
        self.ratio = ratio
        self.burst = burst
        self.tokens = 0.0
        self.accrued = 0.0
        self.spent = 0

    def accrue(self) -> None:
        """One base request was offered."""
        self.tokens = min(self.burst, self.tokens + self.ratio)
        self.accrued += self.ratio

    def try_spend(self) -> bool:
        """Reserve one retry; False when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        return False


class CircuitBreaker:
    """Per-ingress breaker: CLOSED -> OPEN on consecutive failures,
    OPEN -> HALF_OPEN after the cooloff (one trial), HALF_OPEN -> CLOSED
    on success or straight back to OPEN on failure."""

    __slots__ = (
        "threshold", "cooloff", "failures", "opened_at", "half_open",
        "opens",
    )

    def __init__(self, threshold: int, cooloff: float):
        self.threshold = threshold
        self.cooloff = cooloff
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.half_open = False
        self.opens = 0

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        return "half_open" if self.half_open else "open"

    def allow(self, now: float) -> bool:
        """Whether an attempt may use this ingress right now (admits
        exactly one half-open trial once the cooloff has elapsed)."""
        if self.opened_at is None:
            return True
        if self.half_open:
            return False  # one trial already in flight
        if now - self.opened_at >= self.cooloff:
            self.half_open = True  # admit exactly one trial attempt
            return True
        return False

    def record_success(self) -> None:
        """An attempt through this ingress succeeded: close the breaker."""
        self.failures = 0
        self.opened_at = None
        self.half_open = False

    def record_failure(self, now: float) -> None:
        """An attempt through this ingress failed: count toward the
        threshold, or re-open the cooloff clock if already open."""
        self.failures += 1
        if self.opened_at is not None:
            # Half-open trial failed (or a straggler): re-open the clock.
            self.opened_at = now
            self.half_open = False
            return
        if self.failures >= self.threshold:
            self.opened_at = now
            self.half_open = False
            self.opens += 1


class _Request:
    """One in-flight client request (the per-request state machine)."""

    __slots__ = (
        "key", "dest", "session", "created_at", "deadline_at", "attempts",
        "retries", "ingress", "done", "prev_backoff", "timer", "retry_timer",
    )

    def __init__(self, key: str, dest: Any, session: "Session", now: float, deadline: float):
        self.key = key
        self.dest = dest
        self.session = session
        self.created_at = now
        self.deadline_at = now + deadline
        self.attempts = 0
        self.retries = 0
        self.ingress: Any = None
        self.done = False
        self.prev_backoff = 0.0
        self.timer: Any = None
        self.retry_timer: Any = None

    def cancel_timers(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
        if self.retry_timer is not None:
            self.retry_timer.cancel()
            self.retry_timer = None


class Session:
    """One client session: a home ingress, its backups, and the retry /
    failover / degradation machinery around each submitted request."""

    def __init__(
        self,
        tier: "SessionTier",
        name: str,
        home: Any,
        backups: Tuple[Any, ...],
        rng: Any,
    ):
        self.tier = tier
        self.name = name
        self.home = home
        self.backups = backups
        self.rng = rng
        self.submitted = 0
        self.succeeded = 0
        self.failed = 0
        self.shed = 0

    # ------------------------------------------------------------------
    def submit(self, dest: Any) -> Optional[_Request]:
        """Start one request toward ``dest``; None when shed."""
        tier = self.tier
        config = tier.session_config
        now = tier.net.sim.now
        self.submitted += 1
        tier.requests += 1
        # Degradation ladder, bottom rung: shed before offering when the
        # retry budget is dry and the preferred ingress is rejecting —
        # a request that would burn an interior transmission only to be
        # rejected or time out unrecoverably.
        if config.shed_on_reject and tier.budget.ratio > 0:
            node = tier.ingress_node(self.home)
            if (
                node is not None
                and node.admission is not None
                and node.admission.state is AdmissionState.REJECT
                and tier.budget.tokens < 1.0
            ):
                self.shed += 1
                tier.shed += 1
                tier.resolve_log.append((f"{self.name}#{self.submitted - 1}", "shed", 0))
                return None
        key = f"{self.name}#{self.submitted - 1}"
        request = _Request(key, dest, self, now, config.deadline)
        tier.pending[key] = request
        self._attempt(request)
        return request

    # ------------------------------------------------------------------
    def _attempt(self, request: _Request) -> None:
        if request.done:
            return
        request.retry_timer = None
        tier = self.tier
        config = tier.session_config
        sim = tier.net.sim
        now = sim.now
        ingress_id = self._pick_ingress(now, request.dest)
        if ingress_id is None:
            self._retry_or_fail(request, "no_ingress")
            return
        if ingress_id != self.home:
            tier.failovers += 1
        node = tier.ingress_node(ingress_id)
        request.attempts += 1
        request.ingress = ingress_id
        first = request.attempts == 1
        if first:
            tier.base_offers += 1
            tier.budget.accrue()
        else:
            tier.retry_offers += 1
        priority = self._effective_priority(node)
        expire = min(
            config.request_expire, max(0.05, request.deadline_at - now)
        )
        try:
            outcome = node.offer_priority(
                request.dest,
                size_bytes=tier.size_bytes,
                priority=priority,
                method=tier.method,
                payload=REQUEST_PREFIX + request.key,
                expire_after=expire,
                client=self.name,
                nack_home=self.home,
                nack_key=request.key,
            )
        except (ProtocolError, TopologyError):
            # Crashed/unroutable ingress, or a destination no longer in
            # the routable overlay (a signed LEAVE mid-flight): a hard
            # health signal either way.
            tier.breaker(ingress_id).record_failure(now)
            tier.unroutable += 1
            self._retry_or_fail(request, "unroutable")
            return
        if outcome is AdmissionOutcome.REJECTED:
            tier.breaker(ingress_id).record_failure(now)
            tier.rejected += 1
            self._retry_or_fail(request, "rejected")
            return
        # ADMITTED or PARKED: wait for the destination's ack (a PARKED
        # offer may still be released and delivered; a typed NACK will
        # short-circuit the wait if it dies in the park buffer).
        attempt_no = request.attempts
        request.timer = sim.schedule(
            config.attempt_timeout, self._on_timeout, request, attempt_no
        )

    def _effective_priority(self, node: Any) -> int:
        """The degradation ladder: one rung down per pressure signal
        (ingress parked/rejecting, retry budget dry), never below the
        floor.  Downgrade before shedding: under pressure this session's
        traffic yields to undegraded traffic in the interior's priority
        queues instead of leaving the network."""
        tier = self.tier
        config = tier.session_config
        pressure = 0
        admission = node.admission
        if admission is not None:
            if admission.state is AdmissionState.PARK:
                pressure += 1
            elif admission.state is AdmissionState.REJECT:
                pressure += 2
        budget = tier.budget
        # The bucket starts empty by design; "dry" only counts as
        # pressure once at least one token's worth has accrued (else the
        # cold start would degrade the first requests of every run).
        if budget.ratio > 0 and budget.tokens < 1.0 and budget.accrued >= 1.0:
            pressure += 1
        if pressure:
            tier.downgraded += 1
        return max(config.priority_floor, config.priority - pressure)

    def _pick_ingress(self, now: float, dest: Any) -> Optional[Any]:
        """First healthy candidate: not crashed, not isolated, breaker
        willing.  Falls back to any non-crashed candidate (half-try)
        rather than giving up while the network might still carry."""
        tier = self.tier
        fallback = None
        for candidate in (self.home, *self.backups):
            if candidate == dest:
                continue  # cannot source a message at its own dest
            node = tier.ingress_node(candidate)
            if node is None or node.crashed:
                continue
            links = node.links
            if links and all(link.quarantined for link in links.values()):
                continue  # isolated: every PoR link is in quarantine
            if fallback is None:
                fallback = candidate
            if tier.breaker(candidate).allow(now):
                return candidate
        return fallback

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _on_timeout(self, request: _Request, attempt_no: int) -> None:
        if request.done or request.attempts != attempt_no:
            return
        request.timer = None
        now = self.tier.net.sim.now
        self.tier.breaker(request.ingress).record_failure(now)
        self.tier.probe_timeouts += 1
        self._retry_or_fail(request, "timeout")

    def on_ack(self, request: _Request) -> None:
        """Destination ack arrived: resolve the request as succeeded."""
        if request.done:
            return
        request.done = True
        request.cancel_timers()
        self.tier.pending.pop(request.key, None)
        if request.ingress is not None:
            self.tier.breaker(request.ingress).record_success()
        self.succeeded += 1
        self.tier.succeeded += 1
        self.tier.resolve_log.append((request.key, "ok", request.attempts))

    def on_nack(self, request: _Request, outcome: str) -> None:
        """A typed admission NACK arrived for the request's offer:
        charge the ingress breaker and retry-or-fail immediately
        (``released`` means the offer is in flight — keep waiting)."""
        if request.done:
            return
        if outcome == "released":
            # The park released the offer into the network: the request
            # is in flight after all; keep waiting on the attempt timer.
            return
        # expired / evicted / cleared / rejected: this attempt is dead —
        # no point waiting out the probe timeout.
        now = self.tier.net.sim.now
        if request.ingress is not None:
            self.tier.breaker(request.ingress).record_failure(now)
        self.tier.nacks_consumed += 1
        self._retry_or_fail(request, f"nack_{outcome}")

    # ------------------------------------------------------------------
    def _retry_or_fail(self, request: _Request, reason: str) -> None:
        request.cancel_timers()
        tier = self.tier
        config = tier.session_config
        now = tier.net.sim.now
        if request.attempts >= config.max_attempts:
            self._fail(request, reason, "attempts")
            return
        # Decorrelated jitter (AWS architecture blog style): each sleep
        # is drawn from [base, 3 * previous sleep], capped.
        prev = request.prev_backoff if request.prev_backoff > 0 else config.backoff_base
        backoff = min(config.backoff_cap, self.rng.uniform(config.backoff_base, prev * 3.0))
        request.prev_backoff = backoff
        if now + backoff >= request.deadline_at:
            self._fail(request, reason, "deadline")
            return
        if not tier.budget.try_spend():
            self._fail(request, reason, "budget")
            return
        request.retry_timer = tier.net.sim.schedule(
            backoff, self._attempt, request
        )

    def _fail(self, request: _Request, reason: str, terminal: str) -> None:
        request.done = True
        request.cancel_timers()
        self.tier.pending.pop(request.key, None)
        self.failed += 1
        self.tier.failed += 1
        self.tier.failed_by[terminal] = self.tier.failed_by.get(terminal, 0) + 1
        self.tier.last_errors[reason] = self.tier.last_errors.get(reason, 0) + 1
        self.tier.resolve_log.append((request.key, f"failed_{terminal}", request.attempts))


@dataclass(frozen=True)
class ScriptedSessionRequest:
    """One deterministic request injection for conformance plans."""

    at: float
    home: Any
    dest: Any


class SessionTier:
    """All sessions over one substrate deployment, plus the shared
    destination-side responder/dedup machinery.

    ``ingress`` lists the nodes sessions may attach to (homes and
    failover backups are drawn from it, ring-wise); ``dests`` is the
    Zipf-ranked destination list.  The tier installs one combined
    delivery observer on *every* node (request responder + ack consumer)
    and one NACK observer per ingress node, so it works identically on
    the simulator, the live runtime, and inside each cluster shard.
    """

    def __init__(
        self,
        net: Any,
        ingress: Sequence[Any],
        dests: Sequence[Any],
        *,
        workload: Optional[SessionWorkloadConfig] = None,
        name: str = "sessions",
    ):
        if not ingress:
            raise ConfigurationError("need at least one ingress node")
        if not dests:
            raise ConfigurationError("need at least one destination")
        self.net = net
        self.name = name
        self.workload = workload or SessionWorkloadConfig()
        self.session_config = self.workload.session
        self.ingress = list(ingress)
        self.dests = list(dests)
        self.method = (
            DisseminationMethod.flooding()
            if self.workload.method_k == 0
            else DisseminationMethod.k_paths(self.workload.method_k)
        )
        self.size_bytes = self.workload.size_bytes
        self.budget = RetryBudget(
            self.session_config.retry_budget, self.session_config.retry_burst
        )
        self._breakers: Dict[Any, CircuitBreaker] = {}
        self.pending: Dict[str, _Request] = {}
        #: Destination-side dedup: node id -> {key: window expiry}.
        self._dedup: Dict[Any, Dict[str, float]] = {}
        self._processed: set = set()
        self.sessions: List[Session] = []
        self._arrival_timers: Dict[int, Any] = {}
        self._running = False
        self._rng = net.sim.rngs.stream(f"sessions:{name}")
        # Zipf CDF over the ranked destinations.
        exponent = self.workload.zipf_exponent
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(self.dests))]
        total = sum(weights)
        acc, cdf = 0.0, []
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        self._zipf_cdf = cdf
        # Tier-level outcome accounting.
        self.requests = 0
        self.succeeded = 0
        self.failed = 0
        self.shed = 0
        self.base_offers = 0
        self.retry_offers = 0
        self.failovers = 0
        self.rejected = 0
        self.unroutable = 0
        self.probe_timeouts = 0
        self.nacks_consumed = 0
        self.downgraded = 0
        self.acks_sent = 0
        self.acks_unroutable = 0
        self.duplicates_suppressed = 0
        self.double_processed = 0
        self.failed_by: Dict[str, int] = {}
        self.last_errors: Dict[str, int] = {}
        #: (key, outcome, attempts) per resolved request — the sim/live
        #: conformance contract (sorted by key for comparison).
        self.resolve_log: List[Tuple[str, str, int]] = []
        self._build_sessions()

    # ------------------------------------------------------------------
    def _build_sessions(self) -> None:
        backups = self.session_config.backups
        per_node = self.workload.sessions_per_node
        ring = self.ingress
        for index, home in enumerate(ring):
            backup_ids = tuple(
                ring[(index + 1 + step) % len(ring)]
                for step in range(min(backups, len(ring) - 1))
            )
            for slot in range(per_node):
                name = f"{self.name}:{home}/s{slot}"
                rng = self.net.sim.rngs.stream(f"sessions:{name}")
                self.sessions.append(Session(self, name, home, backup_ids, rng))

    def breaker(self, ingress_id: Any) -> CircuitBreaker:
        """The (lazily created) circuit breaker for an ingress node."""
        breaker = self._breakers.get(ingress_id)
        if breaker is None:
            breaker = self._breakers[ingress_id] = CircuitBreaker(
                self.session_config.breaker_threshold,
                self.session_config.breaker_cooloff,
            )
        return breaker

    def ingress_node(self, node_id: Any) -> Optional[Any]:
        """The overlay node for an ingress id (None once departed)."""
        try:
            return self.net.node(node_id)
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install observers and begin open-loop arrivals."""
        self._install_observers()
        self._running = True
        per_session = self.workload.arrival_rate / max(1, len(self.sessions))
        for index, session in enumerate(self.sessions):
            delay = session.rng.expovariate(per_session) if per_session > 0 else 0.0
            self._arrival_timers[index] = self.net.sim.schedule(
                delay, self._arrive, index, per_session
            )

    def arm(self, plan: Sequence[ScriptedSessionRequest], epoch: Optional[float] = None) -> None:
        """Deterministic scripted mode (the conformance harness): replay
        ``plan`` instead of open-loop arrivals.  Requests are submitted
        by the first session homed on each scripted ingress."""
        self._install_observers()
        sim = self.net.sim
        if epoch is None:
            epoch = sim.now
        by_home = {}
        for session in self.sessions:
            by_home.setdefault(session.home, session)
        for scripted in plan:
            session = by_home.get(scripted.home)
            if session is None:
                raise ConfigurationError(
                    f"no session homed on {scripted.home!r}"
                )
            sim.schedule_at(epoch + scripted.at, session.submit, scripted.dest)

    def stop(self) -> None:
        """Stop new arrivals; in-flight requests keep resolving."""
        self._running = False
        for timer in self._arrival_timers.values():
            timer.cancel()
        self._arrival_timers.clear()

    def finalize(self) -> None:
        """End-of-run sweep: any request still unresolved after the
        drain is accounted as failed (deadline passed un-fired timers)."""
        for request in list(self.pending.values()):
            request.session._fail(request, "drain", "unresolved")

    def _arrive(self, index: int, per_session: float) -> None:
        if not self._running:
            return
        session = self.sessions[index]
        session.submit(self._pick_dest(session))
        delay = session.rng.expovariate(per_session) if per_session > 0 else 1.0
        self._arrival_timers[index] = self.net.sim.schedule(
            delay, self._arrive, index, per_session
        )

    def _pick_dest(self, session: Session) -> Any:
        index = bisect_left(self._zipf_cdf, session.rng.random())
        index = min(index, len(self.dests) - 1)
        dest = self.dests[index]
        if dest == session.home and len(self.dests) > 1:
            dest = self.dests[(index + 1) % len(self.dests)]
        return dest

    # ------------------------------------------------------------------
    # Observers: destination responder, ack consumer, NACK consumer
    # ------------------------------------------------------------------
    def _install_observers(self) -> None:
        for node in self.net.nodes.values():
            node.delivery_observers.append(self._observe_delivery)
        for ingress_id in self.ingress:
            node = self.ingress_node(ingress_id)
            if node is not None:
                node.nack_observers.append(self._observe_nack)

    def _observe_delivery(self, message: Any, node: Any) -> None:
        payload = message.payload
        if not isinstance(payload, str):
            return
        if payload.startswith(REQUEST_PREFIX):
            self._respond(payload[len(REQUEST_PREFIX):], message, node)
        elif payload.startswith(ACK_PREFIX):
            request = self.pending.get(payload[len(ACK_PREFIX):])
            if request is not None:
                request.session.on_ack(request)

    def _respond(self, key: str, message: Any, node: Any) -> None:
        """Destination-side idempotent processing + ack."""
        now = node.sim.now
        window = self._dedup.setdefault(node.node_id, {})
        expiry = window.get(key)
        if expiry is not None and expiry >= now:
            self.duplicates_suppressed += 1
        else:
            window[key] = now + self.session_config.dedup_window
            if key in self._processed:
                # A key re-processed after its window lapsed: with
                # dedup_window >> deadline this must never happen — it is
                # the double-delivery invariant the benchmark gates on.
                self.double_processed += 1
            self._processed.add(key)
            if len(window) > 4096:
                stale = [k for k, exp in window.items() if exp < now]
                for k in stale:
                    del window[k]
        # Ack every copy (the first ack may have died with a crashed
        # ingress — re-acking a duplicate is what rescues the retry).
        try:
            node.send_priority(
                message.source,
                size_bytes=ACK_SIZE_BYTES,
                priority=self.session_config.ack_priority,
                method=DisseminationMethod.flooding(),
                payload=ACK_PREFIX + key,
                expire_after=self.session_config.attempt_timeout,
            )
            self.acks_sent += 1
        except (ProtocolError, TopologyError):
            # The requester's home departed (signed LEAVE) or this node
            # crashed between delivery and ack — the retry will re-ack.
            self.acks_unroutable += 1

    def _observe_nack(self, nack: Any, node: Any) -> None:
        request = self.pending.get(nack.key)
        if request is not None:
            request.session.on_nack(request, nack.outcome)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def amplification(self) -> float:
        """Offered interior load relative to base (1.0 = no retries)."""
        if self.base_offers == 0:
            return 1.0
        return (self.base_offers + self.retry_offers) / self.base_offers

    @property
    def success_ratio(self) -> float:
        """Client-visible success over every submitted request (shed and
        unresolved requests count against it)."""
        if self.requests == 0:
            return 1.0
        return self.succeeded / self.requests

    def invariant_violations(self) -> int:
        """0 iff the amplification bound and the dedup exactly-once
        property both held."""
        violations = self.double_processed
        allowed = self.budget.ratio * self.base_offers + 1e-9
        if self.retry_offers > allowed:
            violations += 1
        return violations

    def outcome_log(self) -> List[Tuple[str, str, int]]:
        """Resolved (key, outcome, attempts), sorted — the conformance
        comparison artifact."""
        return sorted(self.resolve_log)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly tier summary (reports, CLI, benchmarks)."""
        return {
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "shed": self.shed,
            "pending": len(self.pending),
            "success_ratio": round(self.success_ratio, 6),
            "base_offers": self.base_offers,
            "retry_offers": self.retry_offers,
            "amplification": round(self.amplification, 4),
            "retry_budget": self.budget.ratio,
            "retry_tokens": round(self.budget.tokens, 3),
            "failovers": self.failovers,
            "rejected": self.rejected,
            "unroutable": self.unroutable,
            "probe_timeouts": self.probe_timeouts,
            "nacks_consumed": self.nacks_consumed,
            "downgraded": self.downgraded,
            "acks_sent": self.acks_sent,
            "acks_unroutable": self.acks_unroutable,
            "duplicates_suppressed": self.duplicates_suppressed,
            "double_processed": self.double_processed,
            "breaker_opens": sum(b.opens for b in self._breakers.values()),
            "breakers_open": sum(
                1 for b in self._breakers.values() if b.state != "closed"
            ),
            "failed_by": dict(self.failed_by),
            "failure_signals": dict(self.last_errors),
            "invariant_violations": self.invariant_violations(),
        }


__all__ = [
    "ACK_PREFIX",
    "REQUEST_PREFIX",
    "CircuitBreaker",
    "RetryBudget",
    "ScriptedSessionRequest",
    "Session",
    "SessionConfig",
    "SessionTier",
    "SessionWorkloadConfig",
]
