"""The overload sweep: goodput and tail latency versus offered load.

For each admission arm ("on" / "off") and each load multiplier, a fresh
seeded simulation runs the :class:`~repro.clients.generators.ClientTier`
population workload against a chordal-ring overlay and measures what the
destinations actually receive.  Without admission control the Zipf-hot
destinations' queues overflow under surging offered load: messages that
already consumed interior-link transmissions are dropped at the last
hop, wasted bandwidth crowds out deliverable traffic, and goodput
collapses while tail latency blows up.  With the admission stage in
front of Priority Messaging, offered load is throttled to roughly the
sustainable rate at the *source*, so goodput holds near the 1x level and
latency stays bounded no matter the offered multiplier.

The sweep is deterministic given its seed: every stage builds its own
:class:`~repro.overlay.network.OverlayNetwork` (own ``Simulator``, own
RNG registry) so arms and multipliers cannot perturb one another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.clients.generators import ClientTier, ClientWorkloadConfig
from repro.messaging.admission import AdmissionConfig
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.sim.stats import LatencyRecorder
from repro.topology import generators


@dataclass
class OverloadStage:
    """Measured outcome of one (admission arm, multiplier) stage."""

    multiplier: float
    admission: bool
    duration: float
    offered: int
    delivered: int
    goodput_msgs: float  # deliveries/second over the offered window
    p50_ms: float
    p99_ms: float
    mean_ms: float
    outcomes: Dict[str, int] = field(default_factory=dict)
    admission_totals: Dict[str, int] = field(default_factory=dict)
    queue_dropped: int = 0
    queue_expired: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly stage record (ratios rounded for the report)."""
        return {
            "multiplier": self.multiplier,
            "admission": self.admission,
            "duration_s": self.duration,
            "offered": self.offered,
            "delivered": self.delivered,
            "delivery_ratio": round(
                self.delivered / self.offered if self.offered else 0.0, 4
            ),
            "goodput_msgs_per_s": round(self.goodput_msgs, 2),
            "p50_ms": round(self.p50_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
            "mean_ms": round(self.mean_ms, 2),
            "outcomes": dict(self.outcomes),
            "admission_totals": dict(self.admission_totals),
            "queue_dropped": self.queue_dropped,
            "queue_expired": self.queue_expired,
        }


#: The sweep's default admission tuning.  Sized for the benchmark-scale
#: deployment (16 nodes, ~25 clients/node, 1x tier rate in the low
#: hundreds of bursts/s): per-source allowance spans 0.5-3 msg/s with a
#: small burst allowance, and the park buffer is a shallow shock
#: absorber (single-message release batches) rather than a second
#: queue.  The 1x workload is comfortably admitted; 10x is mostly shed
#: at the source.
OVERLOAD_ADMISSION = AdmissionConfig(
    capacity_rate=25.0,
    floor_min=0.5,
    floor_max=3.0,
    burst_tokens=3.0,
    surge_max=1.5,
    park_capacity=32,
    park_timeout=0.3,
    release_batch=1,
    park_low=0.15,
    park_high=0.30,
    reject_low=0.40,
    reject_high=0.60,
)


_ADMISSION_KEYS = (
    "offered",
    "admitted",
    "parked",
    "rejected",
    "evicted",
    "released",
    "expired",
    "cleared",
)


def _run_stage(
    *,
    seed: int,
    nodes: int,
    duration: float,
    drain: float,
    multiplier: float,
    base_rate: float,
    workload: ClientWorkloadConfig,
    admission: Optional[AdmissionConfig],
    method: DisseminationMethod,
    link_bandwidth_bps: float,
) -> OverloadStage:
    config = OverlayConfig(
        admission=admission, link_bandwidth_bps=link_bandwidth_bps
    )
    topology = generators.chordal_ring(nodes, chords=2, weight=0.001)
    net = OverlayNetwork.build(topology, config, seed=seed)

    # One recorder for the whole client tier, fed by a delivery observer
    # on every node — client messages are tagged in their payload, so
    # protocol traffic and any other flows never pollute the numbers.
    recorder = LatencyRecorder("overload")

    def observe(message: Any, node: Any) -> None:
        payload = message.payload
        if isinstance(payload, str) and payload.startswith("clients:"):
            recorder.record(node.sim.now, node.sim.now - message.sent_at)

    for node in net.nodes.values():
        node.delivery_observers.append(observe)

    # Rank destinations by a seed-stable shuffle so "which nodes run
    # hot" varies with the seed but not between the on/off arms.
    ranked = sorted(net.nodes)
    net.sim.rngs.stream("overload:dest-rank").shuffle(ranked)

    stage_workload = ClientWorkloadConfig(
        arrival_rate=base_rate * multiplier,
        diurnal_amplitude=workload.diurnal_amplitude,
        diurnal_period=workload.diurnal_period,
        zipf_exponent=workload.zipf_exponent,
        burst_shape=workload.burst_shape,
        burst_max=workload.burst_max,
        burst_spacing=workload.burst_spacing,
        clients_per_node=workload.clients_per_node,
        size_bytes=workload.size_bytes,
        expire_after=workload.expire_after,
    )
    tier = ClientTier(
        net, sorted(net.nodes), ranked, config=stage_workload, method=method
    )
    tier.start()
    net.run(duration)
    tier.stop()
    net.run(drain)

    totals = {key: 0 for key in _ADMISSION_KEYS}
    if admission is not None:
        for node in net.nodes.values():
            snapshot = node.admission.snapshot()
            for key in _ADMISSION_KEYS:
                totals[key] += snapshot[key]
    queue_dropped = sum(
        link.priority_queue.dropped_for_space
        for node in net.nodes.values()
        for link in node.links.values()
    )
    queue_expired = sum(
        link.priority_queue.dropped_expired
        for node in net.nodes.values()
        for link in node.links.values()
    )
    delivered = recorder.count
    latencies_ms = sorted(lat * 1000.0 for lat in recorder.latencies())

    def pct(p: float) -> float:
        if not latencies_ms:
            return 0.0
        index = min(len(latencies_ms) - 1, int(round(p / 100.0 * (len(latencies_ms) - 1))))
        return latencies_ms[index]

    return OverloadStage(
        multiplier=multiplier,
        admission=admission is not None,
        duration=duration,
        offered=tier.offered,
        delivered=delivered,
        goodput_msgs=delivered / duration if duration > 0 else 0.0,
        p50_ms=pct(50.0),
        p99_ms=pct(99.0),
        mean_ms=recorder.mean() * 1000.0,
        outcomes=dict(tier.outcomes),
        admission_totals=totals,
        queue_dropped=queue_dropped,
        queue_expired=queue_expired,
    )


def run_overload(
    *,
    seed: int = 0,
    nodes: int = 8,
    duration: float = 20.0,
    drain: float = 5.0,
    base_rate: float = 15.0,
    multipliers: Sequence[float] = (1.0, 2.0, 4.0, 7.0, 10.0),
    workload: Optional[ClientWorkloadConfig] = None,
    admission: Optional[AdmissionConfig] = None,
    include_off: bool = True,
    k: int = 2,
    link_bandwidth_bps: float = 3e5,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Sweep offered load over ``multipliers`` with admission on and off.

    ``base_rate`` is the 1x burst-arrival rate for the whole tier;
    offered *messages* scale by the mean burst-train length on top of
    it.  Returns a JSON-ready report whose ``summary`` holds the
    headline ratios: each arm's goodput at the highest multiplier
    relative to its own 1x goodput.
    """
    # Client messages carry a delivery deadline by default: overload is
    # only *visible* as lost goodput when messages stuck behind saturated
    # queues die after consuming interior-link capacity (the congestion-
    # collapse mechanism), instead of arriving arbitrarily late.
    workload = workload or ClientWorkloadConfig(
        arrival_rate=base_rate, expire_after=3.0
    )
    admission = admission or OVERLOAD_ADMISSION
    method = DisseminationMethod.k_paths(k)
    arms: List[Optional[AdmissionConfig]] = [admission]
    if include_off:
        arms.append(None)

    stages: List[OverloadStage] = []
    for arm in arms:
        for multiplier in multipliers:
            if progress is not None:
                progress(
                    f"admission={'on' if arm is not None else 'off'} "
                    f"x{multiplier:g}"
                )
            stages.append(
                _run_stage(
                    seed=seed,
                    nodes=nodes,
                    duration=duration,
                    drain=drain,
                    multiplier=multiplier,
                    base_rate=base_rate,
                    workload=workload,
                    admission=arm,
                    method=method,
                    link_bandwidth_bps=link_bandwidth_bps,
                )
            )

    low, high = min(multipliers), max(multipliers)

    def stage_for(arm_on: bool, mult: float) -> Optional[OverloadStage]:
        for stage in stages:
            if stage.admission is arm_on and stage.multiplier == mult:
                return stage
        return None

    def goodput_ratio(arm_on: bool) -> float:
        base, peak = stage_for(arm_on, low), stage_for(arm_on, high)
        if base is None or peak is None or base.goodput_msgs <= 0:
            return 0.0
        return peak.goodput_msgs / base.goodput_msgs

    def arm_summary(arm_on: bool) -> Dict[str, float]:
        base, peak = stage_for(arm_on, low), stage_for(arm_on, high)
        out = {"goodput_ratio": round(goodput_ratio(arm_on), 4)}
        if base is not None and peak is not None:
            out["delivery_ratio_at_1x"] = round(
                base.delivered / base.offered if base.offered else 0.0, 4
            )
            out["delivery_ratio_at_max"] = round(
                peak.delivered / peak.offered if peak.offered else 0.0, 4
            )
            out["p50_ms_at_max"] = round(peak.p50_ms, 2)
            out["p99_ms_at_max"] = round(peak.p99_ms, 2)
        return out

    on = arm_summary(True)
    summary: Dict[str, Any] = {
        "offered_total": sum(stage.offered for stage in stages),
        "max_multiplier": high,
        "goodput_ratio_on": on["goodput_ratio"],
        "p99_ms_on_at_max": on.get("p99_ms_at_max", 0.0),
        "admission_on": on,
    }
    if include_off:
        off = arm_summary(False)
        summary["goodput_ratio_off"] = off["goodput_ratio"]
        summary["p99_ms_off_at_max"] = off.get("p99_ms_at_max", 0.0)
        summary["admission_off"] = off

    return {
        "params": {
            "seed": seed,
            "nodes": nodes,
            "duration_s": duration,
            "drain_s": drain,
            "base_rate": base_rate,
            "multipliers": list(multipliers),
            "k": k,
            "size_bytes": workload.size_bytes,
            "link_bandwidth_bps": link_bandwidth_bps,
            "expire_after_s": workload.expire_after,
        },
        "stages": [stage.to_dict() for stage in stages],
        "summary": summary,
    }
