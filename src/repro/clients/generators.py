"""Client-tier workload generators.

:class:`ClientTier` emulates a large client population at the overlay's
edge with the three load features fixed-rate CBR flows cannot produce:

* **Open-loop, diurnal flow arrivals** — new client bursts arrive as a
  Poisson process whose rate follows a sinusoidal diurnal curve
  (sampled by thinning, so one RNG stream yields the exact process at
  any modulation).  Arrivals never wait for the network: offered load is
  whatever the population generates, like real users.
* **Zipf fan-in** — burst destinations are drawn Zipf-distributed over a
  ranked destination list, concentrating load on a few hot nodes (the
  congestion pattern that makes overload control interesting).
* **Heavy-tailed burst trains** — each arrival is a train of messages
  whose length is Pareto-distributed (truncated), from one client of a
  per-node client population, at a per-burst priority.

Every offered message goes through :meth:`OverlayNode.offer_priority`,
i.e. through the admission stage when one is configured.  The tier only
uses the ``.sim`` / ``.node()`` duck type, so it runs unchanged on the
simulator and the live asyncio runtime; all randomness comes from
``clients:*`` named substreams of the deployment's seeded registry, so
a seeded workload is reproducible and does not perturb any other
component's draws.

:class:`ScriptedOverload` is the deterministic cousin: it replays an
explicit burst plan (absolute times, sources, counts) and records the
admission outcome of every single offer — the sim-vs-live conformance
test feeds both substrates the identical plan and asserts identical
admitted/rejected sets.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.messaging.admission import AdmissionOutcome
from repro.messaging.priority import MAX_PRIORITY, MIN_PRIORITY
from repro.overlay.config import DisseminationMethod


@dataclass(frozen=True)
class ClientWorkloadConfig:
    """Shape of the client population's offered load."""

    #: Mean burst arrivals/second across the whole tier (the diurnal
    #: curve modulates around this).
    arrival_rate: float = 40.0
    #: Diurnal modulation depth in [0, 1): rate(t) swings between
    #: ``(1 - a)`` and ``(1 + a)`` times ``arrival_rate``.
    diurnal_amplitude: float = 0.5
    #: Diurnal period in (simulated or wall-clock) seconds.  Runs are
    #: seconds long, so "a day" is compressed to tens of seconds.
    diurnal_period: float = 40.0
    #: Zipf exponent for destination fan-in (> 0; larger = hotter head).
    zipf_exponent: float = 1.1
    #: Pareto shape for burst-train length (smaller = heavier tail).
    burst_shape: float = 1.4
    #: Truncation for burst-train length, messages.
    burst_max: int = 64
    #: Gap between consecutive messages of one train, seconds.
    burst_spacing: float = 0.002
    #: Distinct client identities per source node; each burst is charged
    #: to one of them for per-source admission metering.
    clients_per_node: int = 25
    #: Payload size of every client message, bytes.
    size_bytes: int = 200
    #: Message expiry (None = the overlay's default).
    expire_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ConfigurationError("diurnal_period must be positive")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if self.burst_shape <= 1.0:
            raise ConfigurationError("burst_shape must be > 1")
        if self.burst_max < 1:
            raise ConfigurationError("burst_max must be >= 1")
        if self.burst_spacing < 0:
            raise ConfigurationError("burst_spacing must be >= 0")
        if self.clients_per_node < 1:
            raise ConfigurationError("clients_per_node must be >= 1")
        if self.size_bytes < 1:
            raise ConfigurationError("size_bytes must be >= 1")


class ClientTier:
    """Drive a deployment with the population workload above.

    ``dests`` is the *ranked* destination list: index 0 is the hottest
    Zipf destination.  Pass a seed-shuffled list to randomize which
    nodes run hot.
    """

    def __init__(
        self,
        network: Any,
        sources: Sequence[Any],
        dests: Sequence[Any],
        config: Optional[ClientWorkloadConfig] = None,
        method: Optional[DisseminationMethod] = None,
        name: str = "clients",
    ):
        if not sources or not dests:
            raise ConfigurationError("need at least one source and one dest")
        self.network = network
        self.sources = list(sources)
        self.dests = list(dests)
        self.config = config or ClientWorkloadConfig()
        self.method = method or DisseminationMethod.flooding()
        self.name = name
        self._rng = network.sim.rngs.stream(f"clients:{name}")
        self._zipf_cdf = self._build_zipf_cdf()
        self._epoch = 0.0
        self.running = False
        # Offer accounting: every offered message lands in exactly one.
        self.bursts_started = 0
        self.offered = 0
        self.outcomes: Dict[str, int] = {
            AdmissionOutcome.ADMITTED.value: 0,
            AdmissionOutcome.PARKED.value: 0,
            AdmissionOutcome.REJECTED.value: 0,
        }
        self.skipped_crashed = 0
        self.unroutable = 0

    def _build_zipf_cdf(self) -> List[float]:
        weights = [
            1.0 / ((rank + 1) ** self.config.zipf_exponent)
            for rank in range(len(self.dests))
        ]
        total = sum(weights)
        cdf, acc = [], 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0
        return cdf

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin offering load now (the diurnal epoch is ``now``)."""
        self.running = True
        self._epoch = self.network.sim.now
        self._arm()

    def stop(self) -> None:
        """Stop generating new bursts (in-flight trains finish)."""
        self.running = False

    def rate_at(self, now: float) -> float:
        """The diurnal arrival rate at time ``now`` (bursts/second)."""
        config = self.config
        phase = 2.0 * math.pi * (now - self._epoch) / config.diurnal_period
        return config.arrival_rate * (
            1.0 + config.diurnal_amplitude * math.sin(phase)
        )

    @property
    def peak_rate(self) -> float:
        return self.config.arrival_rate * (1.0 + self.config.diurnal_amplitude)

    def _arm(self) -> None:
        # Thinning (Lewis & Shedler): draw candidate arrivals at the
        # diurnal peak rate and accept each with rate(t)/peak — an exact
        # sampler for the modulated process from one stream.
        self.network.sim.schedule(
            self._rng.expovariate(self.peak_rate), self._candidate
        )

    def _candidate(self) -> None:
        if not self.running:
            return
        now = self.network.sim.now
        if self._rng.random() < self.rate_at(now) / self.peak_rate:
            self._launch_burst()
        self._arm()

    # ------------------------------------------------------------------
    def _launch_burst(self) -> None:
        rng = self._rng
        config = self.config
        source = self.sources[rng.randrange(len(self.sources))]
        client = f"{source}/c{rng.randrange(config.clients_per_node)}"
        rank = bisect_left(self._zipf_cdf, rng.random())
        dest = self.dests[rank]
        if dest == source:
            dest = self.dests[(rank + 1) % len(self.dests)]
            if dest == source:  # single-destination degenerate case
                return
        length = min(config.burst_max, max(1, int(rng.paretovariate(config.burst_shape))))
        priority = rng.randint(MIN_PRIORITY, MAX_PRIORITY)
        self.bursts_started += 1
        sim = self.network.sim
        for index in range(length):
            if index == 0:
                self._offer(source, client, dest, priority)
            else:
                sim.schedule(
                    index * config.burst_spacing,
                    self._offer, source, client, dest, priority,
                )

    def _offer(self, source: Any, client: str, dest: Any, priority: int) -> None:
        self.offered += 1
        node = self.network.node(source)
        if node.crashed:
            self.skipped_crashed += 1
            return
        config = self.config
        try:
            outcome = node.offer_priority(
                dest,
                size_bytes=config.size_bytes,
                priority=priority,
                method=self.method,
                # A string tag: the live wire codec only carries
                # None/bytes/str application payloads.
                payload=f"clients:{self.name}",
                expire_after=config.expire_after,
                client=client,
            )
        except ProtocolError:
            self.unroutable += 1
            return
        self.outcomes[outcome.value] += 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly offer accounting."""
        return {
            "bursts": self.bursts_started,
            "offered": self.offered,
            "outcomes": dict(self.outcomes),
            "skipped_crashed": self.skipped_crashed,
            "unroutable": self.unroutable,
        }


@dataclass(frozen=True)
class ScriptedBurst:
    """One deterministic burst: ``count`` back-to-back offers at ``at``
    seconds after the plan epoch, all from one client source."""

    at: float
    source: Any
    client: str
    dest: Any
    count: int
    priority: int


class ScriptedOverload:
    """Replay an explicit burst plan and record every offer's outcome.

    Unlike :class:`ClientTier` this draws no randomness at run time: the
    plan is data, each burst executes inside a single scheduler callback
    (so its offers are not interleaved with refills or other bursts),
    and the outcome log lists every offer as ``(burst_index, offer_index,
    outcome)`` in plan order.  Feeding the same plan to the simulator
    and the live runtime must produce the identical log — that is the
    client tier's conformance contract.
    """

    def __init__(
        self,
        network: Any,
        plan: Sequence[ScriptedBurst],
        size_bytes: int = 200,
        method: Optional[DisseminationMethod] = None,
    ):
        self.network = network
        self.plan = list(plan)
        self.size_bytes = size_bytes
        self.method = method or DisseminationMethod.flooding()
        self.outcomes: List[Tuple[int, int, str]] = []

    def arm(self, epoch: Optional[float] = None) -> None:
        """Schedule every burst at ``epoch + burst.at`` (epoch defaults
        to the deployment's current time)."""
        sim = self.network.sim
        if epoch is None:
            epoch = sim.now
        for index, burst in enumerate(self.plan):
            sim.schedule_at(epoch + burst.at, self._run_burst, index, burst)

    def _run_burst(self, index: int, burst: ScriptedBurst) -> None:
        node = self.network.node(burst.source)
        for offer_index in range(burst.count):
            if node.crashed:
                self.outcomes.append((index, offer_index, "crashed"))
                continue
            try:
                outcome = node.offer_priority(
                    burst.dest,
                    size_bytes=self.size_bytes,
                    priority=burst.priority,
                    method=self.method,
                    payload=f"scripted:{index}:{offer_index}",
                    client=burst.client,
                )
            except ProtocolError:
                self.outcomes.append((index, offer_index, "unroutable"))
                continue
            self.outcomes.append((index, offer_index, outcome.value))

    def admitted_ids(self) -> List[Tuple[int, int]]:
        """(burst, offer) ids of every admitted offer, in offer order."""
        return [
            (burst, offer)
            for burst, offer, outcome in self.outcomes
            if outcome == AdmissionOutcome.ADMITTED.value
        ]
