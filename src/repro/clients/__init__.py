"""The edge/client tier: realistic open-loop load for the overlay.

This package turns the fixed CBR evaluation flows into a client
population: heavy-tailed, bursty, diurnal workloads
(:mod:`repro.clients.generators`) offered through the DoS-resistant
admission stage (:mod:`repro.messaging.admission`), plus the overload
sweep that measures goodput and tail latency versus offered load with
admission on and off (:mod:`repro.clients.overload`).

On top of the raw workload sits the client session layer
(:mod:`repro.clients.session`): a per-request reliability state machine
with deadlines, budgeted retries (decorrelated-jitter backoff under a
global token-bucket retry budget), idempotency keys with
destination-side dedup, ingress failover behind per-ingress circuit
breakers, and a graceful-degradation ladder.  The "SLO under fire"
sweep (:mod:`repro.clients.slo`) measures client-visible success with
sessions on and off under soak chaos and overload.

Generators and sessions are substrate-portable: they use only the
``.sim`` / ``.node()`` duck type, so the same seeded workload drives
the discrete-event simulator and the live asyncio/UDP runtime.
"""

from repro.clients.generators import (
    ClientTier,
    ClientWorkloadConfig,
    ScriptedBurst,
    ScriptedOverload,
)
from repro.clients.overload import OverloadStage, run_overload
from repro.clients.session import (
    CircuitBreaker,
    RetryBudget,
    ScriptedSessionRequest,
    Session,
    SessionConfig,
    SessionTier,
    SessionWorkloadConfig,
)
from repro.clients.slo import SESSIONS_OFF, SloStage, run_slo

__all__ = [
    "ClientTier",
    "ClientWorkloadConfig",
    "ScriptedBurst",
    "ScriptedOverload",
    "OverloadStage",
    "run_overload",
    "CircuitBreaker",
    "RetryBudget",
    "ScriptedSessionRequest",
    "Session",
    "SessionConfig",
    "SessionTier",
    "SessionWorkloadConfig",
    "SESSIONS_OFF",
    "SloStage",
    "run_slo",
]
