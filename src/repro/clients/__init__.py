"""The edge/client tier: realistic open-loop load for the overlay.

This package turns the fixed CBR evaluation flows into a client
population: heavy-tailed, bursty, diurnal workloads
(:mod:`repro.clients.generators`) offered through the DoS-resistant
admission stage (:mod:`repro.messaging.admission`), plus the overload
sweep that measures goodput and tail latency versus offered load with
admission on and off (:mod:`repro.clients.overload`).

Generators are substrate-portable: they use only the ``.sim`` /
``.node()`` duck type, so the same seeded workload drives the
discrete-event simulator and the live asyncio/UDP runtime.
"""

from repro.clients.generators import (
    ClientTier,
    ClientWorkloadConfig,
    ScriptedBurst,
    ScriptedOverload,
)
from repro.clients.overload import OverloadStage, run_overload

__all__ = [
    "ClientTier",
    "ClientWorkloadConfig",
    "ScriptedBurst",
    "ScriptedOverload",
    "OverloadStage",
    "run_overload",
]
