"""Analytical dissemination-cost metrics (Table III).

"The cost of sending a message corresponds to the number of edges the
message traverses."  For K node-disjoint paths the analytical cost is the
total hop count across the K paths, averaged over all source-destination
pairs; for naïve flooding every edge is traversed in both directions
(2 × |E|); engineered flooding traverses each edge once (|E|).  Scaled
cost normalizes by the K=1 baseline (secure single-path routing on the
resilient overlay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.topology.disjoint import DisjointPathError, k_node_disjoint_paths
from repro.topology.graph import Topology


@dataclass(frozen=True)
class DisseminationCost:
    """One row of Table III."""

    method: str
    avg_hops: float
    scaled_cost: float
    avg_path_latency_ms: Optional[float]  # None for flooding methods


def average_shortest_metrics(topo: Topology) -> DisseminationCost:
    """Average hops and latency of minimum-weight single paths (K=1)."""
    total_hops = 0
    total_latency = 0.0
    pairs = 0
    for a, b in topo.node_pairs():
        path = topo.shortest_path(a, b)
        if path is None:
            raise DisjointPathError(f"{a!r} and {b!r} are disconnected")
        total_hops += len(path) - 1
        total_latency += topo.path_weight(path)
        pairs += 1
    avg_hops = total_hops / pairs
    return DisseminationCost(
        method="K=1",
        avg_hops=avg_hops,
        scaled_cost=1.0,
        avg_path_latency_ms=(total_latency / pairs) * 1000.0,
    )


def average_k_paths_metrics(topo: Topology, k: int, baseline_hops: float) -> DisseminationCost:
    """Average total hops across K min-cost node-disjoint paths.

    Path latency is the mean latency of the K paths (a message is
    delivered when its first copy arrives, but the paper reports the
    average across the paths, which we mirror).
    """
    total_hops = 0
    total_latency = 0.0
    pairs = 0
    for a, b in topo.node_pairs():
        paths = k_node_disjoint_paths(topo, a, b, k)
        total_hops += sum(len(p) - 1 for p in paths)
        total_latency += sum(topo.path_weight(p) for p in paths) / k
        pairs += 1
    avg_hops = total_hops / pairs
    return DisseminationCost(
        method=f"K={k}",
        avg_hops=avg_hops,
        scaled_cost=avg_hops / baseline_hops,
        avg_path_latency_ms=(total_latency / pairs) * 1000.0,
    )


def naive_flooding_cost(topo: Topology, baseline_hops: float) -> DisseminationCost:
    """Naïve flooding: every message traverses every edge in both directions."""
    hops = 2.0 * topo.edge_count
    return DisseminationCost(
        method="Naive Flooding",
        avg_hops=hops,
        scaled_cost=hops / baseline_hops,
        avg_path_latency_ms=None,
    )


def engineered_flooding_cost(topo: Topology, baseline_hops: float) -> DisseminationCost:
    """Engineered flooding: random-delay techniques let each edge be
    traversed only once per message."""
    hops = float(topo.edge_count)
    return DisseminationCost(
        method="Engineered Flooding",
        avg_hops=hops,
        scaled_cost=hops / baseline_hops,
        avg_path_latency_ms=None,
    )


def table3(topo: Topology, ks: List[int] = (1, 2, 3)) -> Dict[str, DisseminationCost]:
    """Compute every row of Table III for ``topo``."""
    rows: Dict[str, DisseminationCost] = {}
    baseline = average_shortest_metrics(topo)
    rows["K=1"] = baseline
    for k in ks:
        if k == 1:
            continue
        rows[f"K={k}"] = average_k_paths_metrics(topo, k, baseline.avg_hops)
    rows["Naive Flooding"] = naive_flooding_cost(topo, baseline.avg_hops)
    rows["Engineered Flooding"] = engineered_flooding_cost(topo, baseline.avg_hops)
    return rows


def minimum_pair_connectivity(topo: Topology) -> int:
    """The minimum node connectivity over all node pairs.

    The deployment topology "contains sufficient redundancy to support at
    least three node-disjoint paths between any two nodes" — i.e. this
    function returns ≥ 3 for it.
    """
    from repro.topology.disjoint import max_node_disjoint_paths

    return min(
        max_node_disjoint_paths(topo, a, b) for a, b in topo.node_pairs()
    )
