"""Overlay topology: graphs, the MTMW, disjoint paths, and analysis.

* :mod:`repro.topology.graph` — the weighted undirected overlay graph;
* :mod:`repro.topology.mtmw` — the administrator-signed Maximal Topology
  with Minimal Weights (Section V-A);
* :mod:`repro.topology.disjoint` — minimum-cost K node-disjoint paths
  (Suurballe/Bhandari via node-split min-cost flow);
* :mod:`repro.topology.global_cloud` — the 12-node / 32-edge deployment
  topology used throughout the evaluation (Figure 3);
* :mod:`repro.topology.generators` — synthetic topologies for tests;
* :mod:`repro.topology.analysis` — the analytical dissemination-cost
  metrics reported in Table III.
"""

from repro.topology.disjoint import DisjointPathError, k_node_disjoint_paths
from repro.topology.graph import Topology
from repro.topology.mtmw import Mtmw, MtmwUpdateResult

__all__ = [
    "Topology",
    "Mtmw",
    "MtmwUpdateResult",
    "k_node_disjoint_paths",
    "DisjointPathError",
]
