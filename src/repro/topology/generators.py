"""Synthetic topology generators for tests and ablation benchmarks."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import TopologyError
from repro.topology.graph import Topology


def line(n: int, weight: float = 0.010) -> Topology:
    """A chain 1 - 2 - ... - n (no redundancy; worst case for resilience)."""
    if n < 2:
        raise TopologyError("line needs at least 2 nodes")
    topo = Topology()
    for i in range(1, n):
        topo.add_edge(i, i + 1, weight)
    return topo


def ring(n: int, weight: float = 0.010) -> Topology:
    """A cycle of n nodes (2-connected)."""
    if n < 3:
        raise TopologyError("ring needs at least 3 nodes")
    topo = Topology()
    for i in range(1, n):
        topo.add_edge(i, i + 1, weight)
    topo.add_edge(n, 1, weight)
    return topo


def clique(n: int, weight: float = 0.010) -> Topology:
    """The complete graph on n nodes ((n-1)-connected)."""
    if n < 2:
        raise TopologyError("clique needs at least 2 nodes")
    topo = Topology()
    for i in range(1, n + 1):
        for j in range(i + 1, n + 1):
            topo.add_edge(i, j, weight)
    return topo


def chordal_ring(n: int, chords: int = 2, weight: float = 0.010) -> Topology:
    """A ring plus ``chords`` extra chord offsets; connectivity grows with
    chords.  ``chords=2`` gives a 4-regular, 4-connected graph for even n."""
    topo = ring(n, weight)
    for offset in range(2, 2 + chords):
        for i in range(1, n + 1):
            j = ((i - 1 + offset) % n) + 1
            if not topo.has_edge(i, j) and i != j:
                topo.add_edge(i, j, weight)
    return topo


def random_connected(
    n: int,
    extra_edges: int,
    rng: Optional[random.Random] = None,
    min_weight: float = 0.005,
    max_weight: float = 0.050,
) -> Topology:
    """A random connected graph: a random spanning tree plus extra edges."""
    rng = rng or random.Random(0)
    if n < 2:
        raise TopologyError("need at least 2 nodes")
    topo = Topology()
    nodes: List[int] = list(range(1, n + 1))
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    for i in range(1, n):
        a = shuffled[i]
        b = shuffled[rng.randrange(i)]
        topo.add_edge(a, b, rng.uniform(min_weight, max_weight))
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 100 * extra_edges:
        attempts += 1
        a, b = rng.sample(nodes, 2)
        if not topo.has_edge(a, b):
            topo.add_edge(a, b, rng.uniform(min_weight, max_weight))
            added += 1
    return topo


def large_overlay(
    n: int,
    degree: int = 4,
    chord_fraction: float = 0.15,
    seed: int = 0,
    min_weight: float = 0.005,
    max_weight: float = 0.050,
) -> Topology:
    """A seeded 50–500-node MTMW-valid overlay for cluster deployments.

    Construction: a circulant graph C_n(1..degree/2) — every node links
    to its ``degree/2`` nearest ring successors — plus seeded long-range
    chords (``chord_fraction * n`` of them) that cut the graph diameter,
    with seeded per-edge weights.  The circulant core makes the graph
    ``degree``-connected *by construction* (Boesch & Tindell), so no
    max-flow verification pass is needed — ``random_k_connected``'s
    ``minimum_pair_connectivity`` check is O(n² · maxflow) and
    intractable at this scale.  Callers wanting extra assurance can spot
    check sampled pairs with :mod:`repro.topology.disjoint`.

    Deterministic: the same ``(n, degree, chord_fraction, seed)`` yields
    the same graph, so every shard process of a cluster regenerates an
    identical topology from the spec alone.
    """
    if n < 5:
        raise TopologyError("large_overlay needs at least 5 nodes")
    if degree < 2 or degree % 2 != 0:
        raise TopologyError("degree must be an even integer >= 2")
    if degree >= n:
        raise TopologyError(f"degree {degree} must be < n ({n})")
    if not 0.0 <= chord_fraction <= 1.0:
        raise TopologyError("chord_fraction must be in [0, 1]")
    rng = random.Random(f"large-overlay:{seed}:{n}:{degree}")
    topo = Topology()
    half = degree // 2
    for i in range(1, n + 1):
        for offset in range(1, half + 1):
            j = ((i - 1 + offset) % n) + 1
            if i != j and not topo.has_edge(i, j):
                topo.add_edge(i, j, rng.uniform(min_weight, max_weight))
    chords = int(chord_fraction * n)
    nodes = list(range(1, n + 1))
    added = 0
    attempts = 0
    while added < chords and attempts < 50 * max(chords, 1):
        attempts += 1
        a, b = rng.sample(nodes, 2)
        if not topo.has_edge(a, b):
            topo.add_edge(a, b, rng.uniform(min_weight, max_weight))
            added += 1
    return topo


def random_k_connected(
    n: int,
    k: int,
    rng: Optional[random.Random] = None,
    max_attempts: int = 200,
) -> Topology:
    """A random graph whose minimum pair connectivity is at least ``k``."""
    from repro.topology.analysis import minimum_pair_connectivity

    rng = rng or random.Random(0)
    extra = max(n, n * k // 2)
    for _ in range(max_attempts):
        candidate = random_connected(n, extra, rng=rng)
        if all(candidate.degree(v) >= k for v in candidate.nodes):
            if minimum_pair_connectivity(candidate) >= k:
                return candidate
        extra += 1
    raise TopologyError(f"failed to generate a {k}-connected graph on {n} nodes")
