"""Maximal Topology with Minimal Weights (MTMW).

Section V-A: "Each overlay node trusts an offline system administrator to
initially distribute a signed Maximal Topology with Minimal Weights
(MTMW).  The MTMW specifies the overlay nodes and links in the network and
the minimal weight allowed on each link. [...] Each MTMW is assigned a
unique monotonically increasing sequence number to defeat replay attacks."

The MTMW is the root of trust for routing security:

* only nodes listed in the MTMW participate (defeats Sybil attacks);
* nodes only accept messages from their direct MTMW neighbors;
* a node may raise/lower the weight of *its own* links, but never below
  the administrator-assigned minimum and never for links it is not an
  endpoint of — violations mark the issuer as compromised (defeating
  black-hole and wormhole attacks, see :mod:`repro.routing.validation`).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, FrozenSet, List, Tuple

from repro.crypto.pki import ADMIN, Pki
from repro.errors import TopologyError
from repro.topology.graph import NodeId, Topology, edge_key


class MtmwUpdateResult(enum.Enum):
    """Outcome of offering a (re)distributed MTMW to a node."""

    ACCEPTED = "accepted"
    STALE = "stale"               # replayed or out-of-date sequence number
    BAD_SIGNATURE = "bad_signature"


class Mtmw:
    """An administrator-signed topology with per-link minimum weights.

    Instances are immutable snapshots; topology changes are distributed as
    a new MTMW with a higher sequence number.
    """

    def __init__(self, topology: Topology, seqno: int, signature: Any):
        self._topology = topology
        self.seqno = seqno
        self.signature = signature
        self._min_weights: Dict[FrozenSet[NodeId], float] = {
            edge_key(a, b): topology.weight(a, b) for a, b in topology.edges()
        }

    # ------------------------------------------------------------------
    # Creation and verification
    # ------------------------------------------------------------------
    @staticmethod
    def signed_fields(topology: Topology, seqno: int) -> Tuple[Any, ...]:
        """Canonical tuple of fields covered by the admin signature."""
        nodes = tuple(sorted((str(n) for n in topology.nodes)))
        edges = tuple(
            sorted(
                (str(a), str(b), topology.weight(a, b))
                if str(a) < str(b)
                else (str(b), str(a), topology.weight(a, b))
                for a, b in topology.edges()
            )
        )
        return ("mtmw", seqno, nodes, edges)

    @classmethod
    def create(cls, topology: Topology, pki: Pki, seqno: int = 1) -> "Mtmw":
        """Sign ``topology`` as the administrator and wrap it."""
        if seqno < 1:
            raise TopologyError(f"MTMW sequence number must be >= 1 (got {seqno})")
        signature = pki.admin.sign(cls.signed_fields(topology, seqno))
        return cls(topology.copy(), seqno, signature)

    def verify(self, pki: Pki) -> bool:
        """Check the administrator signature."""
        return pki.verify(ADMIN, self.signed_fields(self._topology, self.seqno), self.signature)

    def successor(self, topology: Topology, pki: Pki) -> "Mtmw":
        """Create the next MTMW (seqno + 1) for an updated topology."""
        return Mtmw.create(topology, pki, seqno=self.seqno + 1)

    # ------------------------------------------------------------------
    # Queries used by routing validation
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The maximal topology (weights are the administrative minimums).

        Callers must treat the returned object as read-only; routing keeps
        its own mutable copy with current (raised) weights.
        """
        return self._topology

    def is_member(self, node: NodeId) -> bool:
        """Whether ``node`` is an authorized overlay member."""
        return self._topology.has_node(node)

    def is_edge(self, a: NodeId, b: NodeId) -> bool:
        """Whether (a, b) is an authorized overlay link."""
        return self._topology.has_edge(a, b)

    def are_neighbors(self, a: NodeId, b: NodeId) -> bool:
        """Whether a and b may communicate directly (alias of is_edge)."""
        return self.is_edge(a, b)

    def min_weight(self, a: NodeId, b: NodeId) -> float:
        """The administrator-assigned minimum weight of link (a, b)."""
        key = edge_key(a, b)
        try:
            return self._min_weights[key]
        except KeyError:
            raise TopologyError(f"no MTMW edge between {a!r} and {b!r}") from None

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """The MTMW neighbors of ``node``."""
        return self._topology.neighbors(node)

    @property
    def members(self) -> List[NodeId]:
        return self._topology.nodes


class MtmwHolder:
    """A node's view of the current MTMW, with replay protection."""

    def __init__(self, pki: Pki, initial: Mtmw):
        if not initial.verify(pki):
            raise TopologyError("initial MTMW has an invalid administrator signature")
        self._pki = pki
        self.current = initial

    def consider(self, candidate: Mtmw) -> MtmwUpdateResult:
        """Offer a redistributed MTMW; accept only fresh, validly signed ones."""
        if not candidate.verify(self._pki):
            return MtmwUpdateResult.BAD_SIGNATURE
        if candidate.seqno <= self.current.seqno:
            return MtmwUpdateResult.STALE
        self.current = candidate
        return MtmwUpdateResult.ACCEPTED
