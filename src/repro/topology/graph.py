"""The weighted undirected overlay graph.

Nodes are overlay sites (data centers); edges are overlay links with a
weight that "can represent any real-world cost (e.g. latency)"; routing
decisions minimize weight.  Weights here are one-way latencies in seconds,
matching the deployment.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import TopologyError

NodeId = Any
Edge = Tuple[NodeId, NodeId]


def edge_key(a: NodeId, b: NodeId) -> FrozenSet[NodeId]:
    """Canonical (unordered) identifier for the edge between a and b."""
    return frozenset((a, b))


class Topology:
    """A weighted undirected graph of overlay nodes.

    The class is deliberately small: adjacency, weights, Dijkstra, and
    connectivity queries.  MTMW semantics (signing, minimum weights,
    update validation) live in :mod:`repro.topology.mtmw`.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[NodeId, Dict[NodeId, float]] = {}
        self.node_info: Dict[NodeId, dict] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, **info: Any) -> None:
        """Add (or update metadata of) a node."""
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self.node_info[node] = {}
        if info:
            self.node_info[node].update(info)

    def add_edge(self, a: NodeId, b: NodeId, weight: float) -> None:
        """Add an undirected edge with a positive weight."""
        if a == b:
            raise TopologyError(f"self-loop on node {a!r}")
        if weight <= 0:
            raise TopologyError(f"edge weight must be positive (got {weight})")
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a][b] = weight
        self._adjacency[b][a] = weight

    def remove_edge(self, a: NodeId, b: NodeId) -> None:
        """Remove an existing edge; raises TopologyError if absent."""
        if not self.has_edge(a, b):
            raise TopologyError(f"no edge between {a!r} and {b!r}")
        del self._adjacency[a][b]
        del self._adjacency[b][a]

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all of its edges."""
        if node not in self._adjacency:
            raise TopologyError(f"unknown node {node!r}")
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        del self.node_info[node]

    def set_weight(self, a: NodeId, b: NodeId, weight: float) -> None:
        """Change an existing edge's weight."""
        if not self.has_edge(a, b):
            raise TopologyError(f"no edge between {a!r} and {b!r}")
        if weight <= 0:
            raise TopologyError(f"edge weight must be positive (got {weight})")
        self._adjacency[a][b] = weight
        self._adjacency[b][a] = weight

    def copy(self) -> "Topology":
        """Deep copy of the topology (nodes, metadata, edges)."""
        clone = Topology()
        for node, info in self.node_info.items():
            clone.add_node(node, **info)
        for a, b in self.edges():
            clone.add_edge(a, b, self.weight(a, b))
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return list(self._adjacency)

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` exists."""
        return node in self._adjacency

    def has_edge(self, a: NodeId, b: NodeId) -> bool:
        """Whether the undirected edge (a, b) exists."""
        return a in self._adjacency and b in self._adjacency[a]

    def weight(self, a: NodeId, b: NodeId) -> float:
        """The weight of edge (a, b); raises TopologyError if absent."""
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise TopologyError(f"no edge between {a!r} and {b!r}") from None

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """The node's neighbors; raises TopologyError if unknown."""
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def degree(self, node: NodeId) -> int:
        """Number of edges incident to ``node``."""
        return len(self._adjacency[node])

    def edges(self) -> List[Edge]:
        """Each undirected edge exactly once, in deterministic order."""
        seen = set()
        out: List[Edge] = []
        for a in self._adjacency:
            for b in self._adjacency[a]:
                key = edge_key(a, b)
                if key not in seen:
                    seen.add(key)
                    out.append((a, b))
        return out

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def node_pairs(self) -> Iterable[Tuple[NodeId, NodeId]]:
        """All unordered node pairs (a, b) with a != b, each once."""
        nodes = self.nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                yield a, b

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def dijkstra(
        self, source: NodeId, exclude_nodes: Optional[set] = None
    ) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
        """Single-source shortest path.  Returns (distance, predecessor).

        ``exclude_nodes`` removes nodes (and their edges) from
        consideration — used when routing around known-failed sites.
        Tie-breaking is deterministic (by stringified node id) so routing
        tables agree across nodes.
        """
        if source not in self._adjacency:
            raise TopologyError(f"unknown node {source!r}")
        excluded = exclude_nodes or set()
        dist: Dict[NodeId, float] = {source: 0.0}
        pred: Dict[NodeId, NodeId] = {}
        heap: List[Tuple[float, str, NodeId]] = [(0.0, str(source), source)]
        done = set()
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v, w in self._adjacency[u].items():
                if v in excluded:
                    continue
                nd = d + w
                if v not in dist or nd < dist[v] - 1e-15 or (
                    abs(nd - dist[v]) <= 1e-15 and str(u) < str(pred.get(v, u))
                ):
                    dist[v] = nd
                    pred[v] = u
                    heapq.heappush(heap, (nd, str(v), v))
        return dist, pred

    def shortest_path(self, source: NodeId, dest: NodeId) -> Optional[List[NodeId]]:
        """Minimum-weight path from source to dest, or None if disconnected."""
        if source == dest:
            return [source]
        dist, pred = self.dijkstra(source)
        if dest not in dist:
            return None
        path = [dest]
        while path[-1] != source:
            path.append(pred[path[-1]])
        path.reverse()
        return path

    def path_weight(self, path: List[NodeId]) -> float:
        """Total weight of a node path."""
        return sum(self.weight(a, b) for a, b in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def is_connected(self, exclude_nodes: Optional[set] = None) -> bool:
        """Whether the graph (minus ``exclude_nodes``) is connected."""
        excluded = exclude_nodes or set()
        remaining = [n for n in self._adjacency if n not in excluded]
        if not remaining:
            return True
        reached = self.reachable_from(remaining[0], exclude_nodes=excluded)
        return len(reached) == len(remaining)

    def reachable_from(self, source: NodeId, exclude_nodes: Optional[set] = None) -> set:
        """Nodes reachable from ``source`` avoiding ``exclude_nodes``."""
        excluded = exclude_nodes or set()
        if source in excluded or source not in self._adjacency:
            return set()
        stack = [source]
        seen = {source}
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if v not in seen and v not in excluded:
                    seen.add(v)
                    stack.append(v)
        return seen

    def node_connectivity(self, a: NodeId, b: NodeId) -> int:
        """Number of node-disjoint paths between a and b (max-flow)."""
        from repro.topology.disjoint import max_node_disjoint_paths

        return max_node_disjoint_paths(self, a, b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Topology(nodes={len(self._adjacency)}, edges={self.edge_count})"
