"""Minimum-cost K node-disjoint paths.

Section V-B1: "each message is sent across the network K times, via K
distinct paths, such that no two paths share any overlay nodes, other than
the source and destination [Suurballe 1974; Sidhu et al. 1991]".

We compute a *minimum total weight* set of K node-disjoint paths using the
classic reduction: split every intermediate node ``v`` into ``v_in`` and
``v_out`` joined by a unit-capacity zero-cost arc, turn each undirected
edge into two unit-capacity arcs of cost equal to its weight, and push K
units of min-cost flow from source to destination with the successive
shortest path algorithm (Dijkstra on Johnson-reduced costs, i.e. the
Suurballe/Bhandari technique generalized to K paths).

The same machinery with costs ignored gives the node connectivity between
a pair (``max_node_disjoint_paths``), which the resilient-architecture
code uses to check the "at least three node-disjoint paths between any two
nodes" property of the deployment topology.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.topology.graph import NodeId, Topology


class DisjointPathError(TopologyError):
    """Fewer than the requested number of node-disjoint paths exist."""


class _Arc:
    __slots__ = ("head", "capacity", "cost", "flow", "partner")

    def __init__(self, head: int, capacity: int, cost: float):
        self.head = head
        self.capacity = capacity
        self.cost = cost
        self.flow = 0
        self.partner: Optional["_Arc"] = None

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


class _SplitGraph:
    """The node-split directed flow network for one (source, dest) pair."""

    def __init__(self, topo: Topology, source: NodeId, dest: NodeId):
        if not topo.has_node(source):
            raise TopologyError(f"unknown source {source!r}")
        if not topo.has_node(dest):
            raise TopologyError(f"unknown destination {dest!r}")
        if source == dest:
            raise TopologyError("source and destination must differ")
        self.topo = topo
        self.source = source
        self.dest = dest
        # Vertex numbering: v_in = 2i, v_out = 2i + 1.
        self._index: Dict[NodeId, int] = {}
        nodes = sorted(topo.nodes, key=str)
        for i, node in enumerate(nodes):
            self._index[node] = i
        self._nodes = nodes
        self.n_vertices = 2 * len(nodes)
        self.adjacency: List[List[_Arc]] = [[] for _ in range(self.n_vertices)]
        for node in nodes:
            capacity = len(nodes) if node in (source, dest) else 1
            self._add_arc(self.v_in(node), self.v_out(node), capacity, 0.0)
        for a, b in topo.edges():
            w = topo.weight(a, b)
            self._add_arc(self.v_out(a), self.v_in(b), 1, w)
            self._add_arc(self.v_out(b), self.v_in(a), 1, w)
        self.start = self.v_out(source)
        self.end = self.v_in(dest)

    def v_in(self, node: NodeId) -> int:
        return 2 * self._index[node]

    def v_out(self, node: NodeId) -> int:
        return 2 * self._index[node] + 1

    def node_of(self, vertex: int) -> NodeId:
        return self._nodes[vertex // 2]

    def _add_arc(self, tail: int, head: int, capacity: int, cost: float) -> None:
        forward = _Arc(head, capacity, cost)
        backward = _Arc(tail, 0, -cost)
        forward.partner = backward
        backward.partner = forward
        self.adjacency[tail].append(forward)
        self.adjacency[head].append(backward)

    # ------------------------------------------------------------------
    # Successive shortest paths with Johnson potentials
    # ------------------------------------------------------------------
    def push_shortest_path(self, potentials: List[float]) -> bool:
        """Augment one unit along the min-reduced-cost path.

        Returns False when the destination is unreachable in the residual
        graph.  ``potentials`` is updated in place for the next call.
        """
        inf = float("inf")
        dist = [inf] * self.n_vertices
        parent_arc: List[Optional[_Arc]] = [None] * self.n_vertices
        dist[self.start] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, self.start)]
        visited = [False] * self.n_vertices
        while heap:
            d, u = heapq.heappop(heap)
            if visited[u]:
                continue
            visited[u] = True
            for arc in self.adjacency[u]:
                if arc.residual <= 0:
                    continue
                v = arc.head
                reduced = arc.cost + potentials[u] - potentials[v]
                # Reduced costs are non-negative by induction; guard against
                # float noise.
                if reduced < 0:
                    reduced = 0.0
                nd = d + reduced
                if nd < dist[v] - 1e-15:
                    dist[v] = nd
                    parent_arc[v] = arc
                    heapq.heappush(heap, (nd, v))
        if not visited[self.end]:
            return False
        for v in range(self.n_vertices):
            if dist[v] < inf:
                potentials[v] += dist[v]
        # Augment one unit back along the path.
        v = self.end
        while v != self.start:
            arc = parent_arc[v]
            assert arc is not None
            arc.flow += 1
            arc.partner.flow -= 1
            v = arc.partner.head
        return True

    def extract_paths(self) -> List[List[NodeId]]:
        """Decompose the integral flow into node paths source → dest."""
        # Successor map: from each v_out, which v_in arcs carry flow.
        outgoing: Dict[int, List[_Arc]] = {}
        for tail in range(self.n_vertices):
            for arc in self.adjacency[tail]:
                if arc.flow > 0 and arc.cost >= 0 and tail % 2 == 1 and arc.head % 2 == 0:
                    outgoing.setdefault(tail, []).append(arc)
        paths: List[List[NodeId]] = []
        while outgoing.get(self.start):
            path = [self.source]
            vertex = self.start
            while True:
                arcs = outgoing.get(vertex)
                if not arcs:
                    raise TopologyError("flow decomposition failed")  # pragma: no cover
                arc = arcs.pop()
                arc.flow -= 1
                node = self.node_of(arc.head)
                path.append(node)
                if node == self.dest:
                    break
                vertex = self.v_out(node)
            paths.append(path)
        return paths


def k_node_disjoint_paths(
    topo: Topology, source: NodeId, dest: NodeId, k: int
) -> List[List[NodeId]]:
    """Return K node-disjoint paths of minimum total weight.

    Paths share only the source and destination.  Raises
    :class:`DisjointPathError` when fewer than ``k`` node-disjoint paths
    exist (after which the caller typically falls back to a smaller K or
    to constrained flooding).  The returned list is sorted by path weight,
    shortest first.
    """
    if k < 1:
        raise TopologyError(f"k must be >= 1 (got {k})")
    graph = _SplitGraph(topo, source, dest)
    potentials = [0.0] * graph.n_vertices
    for i in range(k):
        if not graph.push_shortest_path(potentials):
            raise DisjointPathError(
                f"only {i} node-disjoint path(s) exist between "
                f"{source!r} and {dest!r} (requested {k})"
            )
    paths = graph.extract_paths()
    paths.sort(key=lambda p: (topo.path_weight(p), len(p), [str(n) for n in p]))
    return paths


def max_node_disjoint_paths(topo: Topology, source: NodeId, dest: NodeId) -> int:
    """The node connectivity between ``source`` and ``dest``.

    Neighbors are still limited by the number of internally disjoint
    routes, except the direct edge which always counts as one path.
    """
    graph = _SplitGraph(topo, source, dest)
    potentials = [0.0] * graph.n_vertices
    count = 0
    while graph.push_shortest_path(potentials):
        count += 1
    return count


def best_effort_disjoint_paths(
    topo: Topology, source: NodeId, dest: NodeId, k: int
) -> List[List[NodeId]]:
    """Like :func:`k_node_disjoint_paths` but degrades gracefully.

    Returns as many node-disjoint paths as exist, up to ``k``.  Used by
    sources when a partially failed topology cannot support the requested
    redundancy but the message should still be sent.
    """
    graph = _SplitGraph(topo, source, dest)
    potentials = [0.0] * graph.n_vertices
    pushed = 0
    while pushed < k and graph.push_shortest_path(potentials):
        pushed += 1
    paths = graph.extract_paths()
    paths.sort(key=lambda p: (topo.path_weight(p), len(p), [str(n) for n in p]))
    return paths
