"""Neighbor-to-neighbor link protocols.

:mod:`repro.link.por` implements the Proof-of-Receipt link from
Section V-D: reliable in-order communication between neighboring overlay
nodes with HMAC integrity and cumulative-nonce acknowledgments that defeat
optimistic-ACK attacks.
"""

from repro.link.por import PorConfig, PorEndpoint, connect_por_pair

__all__ = ["PorConfig", "PorEndpoint", "connect_por_pair"]
