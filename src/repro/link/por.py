"""The Proof-of-Receipt (PoR) link.

Section V-D: "Neighboring overlay nodes communicate using a
Proof-of-Receipt (PoR) link that provides reliable in-order communication.
[...] The link maintains cryptographic authentication and integrity
(similar to DTLS), using an authenticated Diffie-Hellman key exchange to
establish a shared secret key.  This secret key is used to compute HMACs
(using SHA-256) to provide link-level message integrity.  Each side of the
link must acknowledge messages with a proof-of-receipt, using a cumulative
nonce method, to defeat denial-of-service attacks that acknowledge
unreceived messages to drive the sender arbitrarily fast."

Implementation notes
--------------------
* **Reliability** — sliding window, selective retransmission on adaptive
  RTO (Jacobson/Karn), cumulative ACKs carrying the nonce-chain proof
  (:mod:`repro.crypto.nonces`).  ACK packets that fail proof verification
  are ignored, so a malicious receiver cannot inflate the sender's rate.
* **Integrity** — in ``REAL`` crypto mode the handshake runs a signed
  Diffie-Hellman exchange and every packet carries an HMAC-SHA256 tag
  over its canonical encoding.  In ``SIMULATED`` mode packets carry a
  ``corrupted`` flag that adversarial channels set when they tamper; a
  MAC-checking endpoint drops such packets (and charges the HMAC CPU
  cost), which models exactly what the real tag provides.
* **Flow control toward the overlay** — the messaging layer *pulls*:
  :meth:`PorEndpoint.can_accept` is true when the send window has room
  and the outgoing channel is not backlogged beyond ``pacing_slack``
  seconds, so the fair schedulers keep queueing decisions at the node
  (where they belong) rather than deep inside the link.
* **Crash recovery** — each endpoint has an *epoch*.  A restarted node
  bumps its epoch; the peer resets its receive state on seeing a newer
  epoch, which is how Figure 9's crash/recovery experiment works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.caching import LruCache
from repro.crypto.dh import DiffieHellman
from repro.crypto.encoding import canonical_bytes
from repro.crypto.mac import BatchMacContext
from repro.crypto.nonces import NONCE_SIZE, CumulativeNonceChain, NonceVerifier
from repro.crypto.pki import Pki, PkiMode
from repro.errors import ConfigurationError, ProtocolError

if TYPE_CHECKING:
    # The endpoint is written against the substrate seam, not a concrete
    # engine: any SchedulerLike (Simulator or AsyncioScheduler) and any
    # TransportLike (simulated Channel or live UDP channel) will do.
    from repro.runtime.interfaces import (
        CancellableHandle,
        SchedulerLike,
        TransportLike,
    )


@dataclass(frozen=True)
class PorConfig:
    """Tunables of a Proof-of-Receipt link endpoint.

    Attributes
    ----------
    window:
        Maximum unacknowledged data packets in flight.
    pacing_slack:
        ``can_accept`` is false while the outgoing channel is backlogged
        beyond this many seconds, keeping the queue at the fair scheduler.
    initial_rto / min_rto / max_rto:
        Retransmission timeout bounds (seconds).
    header_overhead:
        Wire bytes added to each data payload (seq, nonce, HMAC, epoch).
    ack_size:
        Wire bytes of an ACK packet.
    check_macs:
        Drop packets whose integrity check fails.  Disabled only for the
        "no cryptography" row of Table II.
    ack_coalesce:
        Acknowledge after this many in-order packets instead of per
        packet (a delayed-ACK factor).  Gaps, duplicates, and epoch
        changes still ACK immediately — the NACK and fast-retransmit
        machinery never waits — and a flush timer (``ack_delay``) bounds
        how long the tail of a burst goes unacknowledged.  1 restores
        ACK-per-packet.
    ack_delay:
        Upper bound (seconds) on how long a coalesced ACK may be
        deferred.  Kept far below ``initial_rto`` so delayed ACKs can
        never masquerade as loss.
    """

    window: int = 128
    pacing_slack: float = 0.002
    initial_rto: float = 0.200
    min_rto: float = 0.020
    max_rto: float = 2.0
    header_overhead: int = 48
    ack_size: int = 64
    check_macs: bool = True
    ack_coalesce: int = 2
    ack_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1 (got {self.window})")
        if not 0 < self.min_rto <= self.initial_rto <= self.max_rto:
            raise ConfigurationError("require 0 < min_rto <= initial_rto <= max_rto")
        if self.pacing_slack < 0:
            raise ConfigurationError("pacing_slack must be >= 0")
        if self.ack_coalesce < 1:
            raise ConfigurationError(
                f"ack_coalesce must be >= 1 (got {self.ack_coalesce})"
            )
        if not 0 <= self.ack_delay < self.initial_rto:
            raise ConfigurationError(
                "require 0 <= ack_delay < initial_rto (delayed ACKs must not "
                "look like loss)"
            )


class PorData:
    """A data packet on the wire."""

    __slots__ = ("epoch", "seq", "nonce", "payload", "wire_size", "mac", "corrupted")

    def __init__(self, epoch: int, seq: int, nonce: bytes, payload: Any, wire_size: int):
        self.epoch = epoch
        self.seq = seq
        self.nonce = nonce
        self.payload = payload
        self.wire_size = wire_size
        self.mac: Any = None
        self.corrupted = False

    def mac_fields(self) -> Tuple[Any, ...]:
        """Fields covered by the link-level integrity tag."""
        return ("data", self.epoch, self.seq, self.nonce)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PorData(epoch={self.epoch}, seq={self.seq})"


class PorAck:
    """A cumulative ACK carrying the nonce-chain proof of receipt.

    ``missing`` is a NACK list: sequence numbers above ``cum_seq`` that
    the receiver has *not* got while later packets have arrived.  The
    sender selectively retransmits them without waiting out the RTO
    (Spines' links are NACK-based for exactly this reason).  NACKs are
    advisory only — they can waste at most retransmissions on the
    attacker's own link — while *positive* progress still requires the
    unforgeable cumulative nonce proof.
    """

    __slots__ = ("epoch", "cum_seq", "proof", "missing", "mac", "corrupted")

    def __init__(self, epoch: int, cum_seq: int, proof: bytes,
                 missing: Tuple[int, ...] = ()):
        self.epoch = epoch
        self.cum_seq = cum_seq
        self.proof = proof
        self.missing = missing
        self.mac: Any = None
        self.corrupted = False

    def mac_fields(self) -> Tuple[Any, ...]:
        """Fields covered by the link-level integrity tag."""
        return ("ack", self.epoch, self.cum_seq, self.proof, self.missing)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PorAck(epoch={self.epoch}, cum={self.cum_seq})"


class PorHandshake:
    """A signed Diffie-Hellman handshake message (REAL crypto mode)."""

    __slots__ = ("sender", "dh_public", "signature", "corrupted")

    def __init__(self, sender: Any, dh_public: bytes, signature: Any):
        self.sender = sender
        self.dh_public = dh_public
        self.signature = signature
        self.corrupted = False

    HANDSHAKE_SIZE = 256 + 256  # DH public + RSA signature


class _HelloWrapper:
    """Marks a packet as an unreliable out-of-stream hello."""

    __slots__ = ("hello",)

    def __init__(self, hello: Any):
        self.hello = hello


@dataclass(slots=True)
class _SendRecord:
    payload: Any
    wire_size: int
    nonce: bytes
    first_sent: float
    deadline: float
    rto: float
    retransmitted: bool = False
    last_sent: float = 0.0


#: Outgoing nonces are drawn from the RNG in blocks of this many packets;
#: one wide ``getrandbits`` call replaces per-packet draws on the send
#: fast path without changing the distribution.
_NONCE_BLOCK = 64


class PorEndpoint:
    """One side of a Proof-of-Receipt link."""

    def __init__(
        self,
        sim: SchedulerLike,
        node_id: Any,
        peer_id: Any,
        out_channel: TransportLike,
        in_channel: TransportLike,
        pki: Pki,
        config: Optional[PorConfig] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.peer_id = peer_id
        self.out_channel = out_channel
        self.in_channel = in_channel
        self.pki = pki
        self.config = config or PorConfig()
        in_channel.on_receive = self._on_packet
        # PorConfig is frozen; bind the per-packet fields once so the hot
        # paths do plain attribute loads instead of dataclass chains.
        self._window = self.config.window
        self._check_macs = self.config.check_macs
        self._ack_coalesce = self.config.ack_coalesce
        self._ack_delay = self.config.ack_delay
        self._header_overhead = self.config.header_overhead

        # Upper-layer hooks.
        self.on_deliver: Optional[Callable[[Any, int], None]] = None
        self.on_ready: Optional[Callable[[], None]] = None
        self.on_hello: Optional[Callable[[Any], None]] = None

        # Crypto state.
        self._established = False
        self._link_key: Optional[bytes] = None
        # Cached value of the `_real_crypto` property: checked once per
        # transmit/verify on the hot path, so the attribute load must not
        # re-derive it from the PKI each time.  Updated wherever the link
        # key changes (out-of-band install, handshake completion).
        self._hmac_active = False
        # Amortized HMAC state for the current link key: one keyed base
        # context, cloned per packet (see BatchMacContext).  Rebuilt
        # alongside _hmac_active wherever the key changes.
        self._mac_ctx: Optional[BatchMacContext] = None
        # REAL-mode MAC verification memo: a retransmitted packet carries
        # the identical (encoding, tag) pair, so its recheck is a dict
        # hit instead of an HMAC.  Keyed by the complete check; cleared
        # whenever the link key changes (fresh handshake / re-key).
        self._mac_memo: LruCache[bool] = LruCache(1024)
        self._dh: Optional[DiffieHellman] = None
        self._handshake_timer: Optional[CancellableHandle] = None
        self._handshake_attempts = 0
        self._handshake_responder = False

        # Sender state.
        self.epoch = 0
        self._next_seq = 0
        self._verifier = NonceVerifier()
        self._unacked: Dict[int, _SendRecord] = {}
        self._timer: Optional[CancellableHandle] = None
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        # The RTO only changes when an RTT sample lands, so it is computed
        # eagerly in _sample_rtt and read from this cache on every send.
        self._rto_cache = self.config.initial_rto
        self._dup_acks = 0
        self._nonce_rng = sim.rngs.stream(f"por:{node_id}->{peer_id}")
        # Block-buffered nonce stream (see _NONCE_BLOCK).
        self._nonce_buf = b""
        self._nonce_pos = 0
        # Absolute deadline the armed retransmission timer will fire at.
        # Lets the send path skip cancel/re-arm churn: a new packet only
        # re-arms when its deadline is *earlier* than the pending fire
        # (it never is under a monotone RTO), and ACKs leave the timer
        # alone entirely — a stale fire is a cheap no-op recomputation in
        # _on_timeout.
        self._timer_deadline = 0.0

        # Receiver state.
        self._rx_epoch = 0
        self._chain = CumulativeNonceChain()
        self._reorder: Dict[int, PorData] = {}
        # Delayed-ACK state: in-order packets accepted since the last ACK,
        # and whether the flush timer bounding the deferral is live.  The
        # timer is never cancelled — it fires, flushes if anything is
        # still pending, and disarms — so coalescing adds no cancel/re-arm
        # heap churn (one timer event can cover many flush cycles).
        self._ack_pending = 0
        self._ack_timer_armed = False

        # Counters.
        self.data_sent = 0
        self.data_retransmitted = 0
        self.data_delivered = 0
        self.acks_sent = 0
        self.bogus_acks_rejected = 0
        self.macs_rejected = 0
        self.duplicates_dropped = 0
        self.out_of_window_dropped = 0
        #: Optional (mac_sign, mac_verify) telemetry counter pair — set by
        #: :meth:`attach_mac_counters`; None keeps the hot path untouched.
        self._mac_counters: Optional[Tuple[Any, Any]] = None

    # ------------------------------------------------------------------
    # Establishment
    # ------------------------------------------------------------------
    def attach_mac_counters(self, metrics: Any) -> None:
        """Count link MAC operations in ``metrics`` (a MetricsRegistry).

        ``crypto.mac_sign`` / ``crypto.mac_verify`` count *logical*
        operations — every packet the real system would MAC or check,
        whether or not this run computes actual HMACs (SIMULATED mode
        models their integrity effect for free).  Matches the PKI's
        convention: NONE mode does no MAC work and counts nothing.
        """
        if self.pki.mode is PkiMode.NONE or not self.config.check_macs:
            return
        self._mac_counters = (
            metrics.counter("crypto.mac_sign"),
            metrics.counter("crypto.mac_verify"),
        )

    def establish_out_of_band(self) -> None:
        """Install the PKI-derived link key without an on-wire handshake.

        Simulations use this to skip re-running the (already tested)
        Diffie-Hellman exchange on every experiment.
        """
        self._link_key = self.pki.link_secret(self.node_id, self.peer_id)
        self._mac_memo.clear()
        self._hmac_active = self.pki.mode is PkiMode.REAL and self._link_key is not None
        self._mac_ctx = BatchMacContext(self._link_key) if self._hmac_active else None
        self._established = True

    #: Give up re-offering the handshake after this many attempts; the
    #: peer (or a node restart) can always start a fresh exchange.
    MAX_HANDSHAKE_ATTEMPTS = 12

    def start_handshake(self) -> None:
        """Send the signed Diffie-Hellman half of the handshake.

        The offer is re-sent with exponential backoff until the exchange
        completes, so a handshake that races a link failure (or whose
        packet is simply lost) still establishes once the link heals.
        """
        self._dh = DiffieHellman.from_seed(
            f"{self.pki.mode.value}:{self.node_id}->{self.peer_id}".encode("utf-8")
        )
        self._handshake_attempts = 0
        self._offer_handshake()

    def _offer_handshake(self) -> None:
        self._handshake_timer = None
        if self._established or self._dh is None:
            return
        if self._handshake_attempts >= self.MAX_HANDSHAKE_ATTEMPTS:
            return
        self._handshake_attempts += 1
        self._send_handshake_offer()
        retry = min(
            self.config.initial_rto * (2 ** (self._handshake_attempts - 1)),
            self.config.max_rto,
        )
        self._handshake_timer = self.sim.schedule(retry, self._offer_handshake)

    def _send_handshake_offer(self) -> None:
        public = self._dh.encode_public()
        signature = self.pki.identity(self.node_id).sign(("dh", self.node_id, public))
        msg = PorHandshake(self.node_id, public, signature)
        self.out_channel.send(msg, PorHandshake.HANDSHAKE_SIZE)

    @property
    def established(self) -> bool:
        return self._established

    # ------------------------------------------------------------------
    # Upper-layer send interface
    # ------------------------------------------------------------------
    def can_accept(self) -> bool:
        """True when the link can take another payload right now."""
        return (
            self._established
            and len(self._unacked) < self._window
            and self.out_channel.time_until_idle() <= self.config.pacing_slack
        )

    def time_until_ready(self) -> Optional[float]:
        """Seconds until pacing may allow a send; None if blocked on the
        window (an ACK will trigger ``on_ready`` instead)."""
        if not self._established or len(self._unacked) >= self._window:
            return None
        backlog = self.out_channel.time_until_idle()
        if backlog <= self.config.pacing_slack:
            return 0.0
        return backlog - self.config.pacing_slack

    def send(self, payload: Any, size_bytes: int) -> None:
        """Queue ``payload`` for reliable in-order delivery to the peer."""
        if not self._established:
            raise ProtocolError("PoR link not established")
        if len(self._unacked) >= self._window:
            raise ProtocolError("PoR send window full (check can_accept first)")
        seq = self._next_seq
        self._next_seq += 1
        pos = self._nonce_pos
        if pos >= len(self._nonce_buf):
            self._nonce_buf = self._nonce_rng.getrandbits(
                8 * NONCE_SIZE * _NONCE_BLOCK
            ).to_bytes(NONCE_SIZE * _NONCE_BLOCK, "big")
            pos = 0
        nonce = self._nonce_buf[pos:pos + NONCE_SIZE]
        self._nonce_pos = pos + NONCE_SIZE
        self._verifier.register(seq, nonce)
        wire_size = size_bytes + self._header_overhead
        now = self.sim.now
        rto = self._rto_cache
        deadline = now + rto
        record = _SendRecord(payload, wire_size, nonce, now, deadline, rto)
        self._unacked[seq] = record
        self._transmit(seq, record)
        # Lazy timer: only (re-)arm when this packet's deadline precedes
        # the pending fire.  Under a monotone RTO that is only ever the
        # first packet of a burst, so steady-state sends do zero timer
        # work; _on_timeout re-derives the true minimum when it fires.
        if self._timer is None:
            self._timer_deadline = deadline
            self._timer = self.sim.schedule_at(deadline, self._on_timeout)
        elif deadline < self._timer_deadline:
            self._timer.cancel()
            self._timer_deadline = deadline
            self._timer = self.sim.schedule_at(deadline, self._on_timeout)

    @property
    def in_flight(self) -> int:
        return len(self._unacked)

    def _transmit(self, seq: int, record: _SendRecord) -> None:
        packet = PorData(self.epoch, seq, record.nonce, record.payload, record.wire_size)
        if self._hmac_active:
            packet.mac = self._mac_ctx.tag(self._encode_for_mac(packet))
        if self._mac_counters is not None:
            self._mac_counters[0].add()
        record.last_sent = self.sim.now
        self.out_channel.send(packet, record.wire_size)
        self.data_sent += 1

    def _fast_retransmit(self, seq: int) -> None:
        record = self._unacked.get(seq)
        if record is None:
            return
        # Don't re-send a packet that is plausibly still in flight.  With
        # no RTT estimate yet (e.g. the very first packet was lost) use a
        # small fixed guard rather than the conservative initial RTO.
        guard = 0.5 * self._srtt if self._srtt is not None else 0.02
        if self.sim.now - record.last_sent < max(guard, 0.005):
            return
        record.retransmitted = True
        record.rto = min(record.rto * 2, self.config.max_rto)
        record.deadline = self.sim.now + record.rto
        self._transmit(seq, record)
        self.data_retransmitted += 1
        self._arm_timer()

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restart this endpoint as after a crash: new epoch, empty state."""
        self.epoch += 1
        self._next_seq = 0
        self._verifier = NonceVerifier()
        self._unacked.clear()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._timer_deadline = 0.0
        self._srtt = None
        self._rttvar = 0.0
        self._rto_cache = self.config.initial_rto
        self._dup_acks = 0
        # A live flush timer is left to fire; with pending zeroed it
        # disarms without sending.
        self._ack_pending = 0

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def send_hello(self, hello: Any, size_bytes: int) -> None:
        """Send an unreliable liveness beacon outside the reliable stream.

        Hellos bypass the window (a dead link must not wedge monitoring)
        but still consume channel bandwidth.
        """
        self.out_channel.send(_HelloWrapper(hello), size_bytes)

    def _on_packet(self, packet: Any) -> None:
        # Dispatch in descending traffic order: data, then ACKs, then the
        # rare out-of-stream kinds.
        if isinstance(packet, PorData):
            if self._check_macs and not self._integrity_ok(packet):
                self.macs_rejected += 1
                return
            self._on_data(packet)
            return
        if isinstance(packet, PorAck):
            if self._check_macs and not self._integrity_ok(packet):
                self.macs_rejected += 1
                return
            self._on_ack(packet)
            return
        if isinstance(packet, _HelloWrapper):
            if self.on_hello is not None:
                self.on_hello(packet.hello)
            return
        if isinstance(packet, PorHandshake):
            self._on_handshake(packet)

    def _process_packet(self, packet: Any) -> None:
        """Integrity-check and dispatch a data/ACK packet (test seam)."""
        if self._check_macs and not self._integrity_ok(packet):
            self.macs_rejected += 1
            return
        if isinstance(packet, PorAck):
            self._on_ack(packet)
        elif isinstance(packet, PorData):
            self._on_data(packet)

    def _integrity_ok(self, packet: Any) -> bool:
        if packet.corrupted:
            return False
        if self._mac_counters is not None:
            self._mac_counters[1].add()
        if self._hmac_active:
            # Memoized per (encoding, tag) under the current link key —
            # retransmissions recheck for a dict hit, not an HMAC.
            encoded = self._encode_for_mac(packet)
            key = (encoded, packet.mac)
            memo = self._mac_memo
            cached = memo.get(key)
            if cached is not None:
                return cached
            try:
                self._mac_ctx.verify(encoded, packet.mac)
                verdict = True
            except Exception:
                verdict = False
            memo.put(key, verdict)
            return verdict
        return True

    def _on_data(self, packet: PorData) -> None:
        if packet.epoch != self._rx_epoch:
            if packet.epoch > self._rx_epoch:
                # Peer restarted: reset receive state for the new epoch.
                self._rx_epoch = packet.epoch
                self._chain = CumulativeNonceChain()
                self._reorder.clear()
                self._ack_pending = 0
            else:
                return  # stale epoch
        expected = self._chain.next_seq
        if packet.seq < expected:
            self.duplicates_dropped += 1
            self._flush_ack()  # the ACK that would have cleared it was lost
            return
        if packet.seq > expected:
            if packet.seq >= expected + 4 * self._window:
                # A legitimate sender is bounded by its send window, so a
                # seq this far ahead is hostile or corrupted input.  It
                # must not enter the reorder buffer: a giant seq would
                # stretch the gap scan in _send_ack into an unbounded
                # synchronous loop (observed as a live-runtime hang when
                # a bit-flipped datagram slipped past integrity checks).
                self.out_of_window_dropped += 1
                return
            if len(self._reorder) < 4 * self._window:
                self._reorder[packet.seq] = packet
            # Duplicate cumulative ACK: tells the sender a gap opened so
            # it can fast-retransmit instead of waiting out the RTO.
            # Gaps never coalesce — the NACK must go out now.
            self._flush_ack()
            return
        self._accept_in_order(packet)
        reorder = self._reorder
        accepted = 1
        while self._chain.next_seq in reorder:
            self._accept_in_order(reorder.pop(self._chain.next_seq))
            accepted += 1
        # Delayed ACK: coalesce in-order progress up to ack_coalesce
        # packets (bounded by the ack_delay flush timer).  Any remaining
        # gap still ACKs immediately so the sender sees the NACK list.
        self._ack_pending += accepted
        if reorder or self._ack_pending >= self._ack_coalesce:
            self._flush_ack()
        elif not self._ack_timer_armed:
            self._ack_timer_armed = True
            self.sim.schedule(self._ack_delay, self._ack_timer_fire)

    def _accept_in_order(self, packet: PorData) -> None:
        self._chain.fold(packet.seq, packet.nonce)
        self.data_delivered += 1
        if self.on_deliver is not None:
            payload_size = packet.wire_size - self._header_overhead
            self.on_deliver(packet.payload, payload_size)

    def _ack_timer_fire(self) -> None:
        self._ack_timer_armed = False
        if self._ack_pending:
            self._flush_ack()

    def _flush_ack(self) -> None:
        """Send the cumulative ACK now, clearing any deferred-ACK state.

        A live flush timer is left alone: it fires later and disarms as a
        no-op (pending is zero), which is cheaper than cancelling it.
        Any packet deferred while the timer is live still flushes no
        later than the pending fire, so the ack_delay bound holds.
        """
        self._ack_pending = 0
        self._send_ack()

    def _send_ack(self) -> None:
        missing: Tuple[int, ...] = ()
        if self._reorder:
            expected = self._chain.next_seq
            horizon = max(self._reorder)
            missing = tuple(
                seq for seq in range(expected, horizon)
                if seq not in self._reorder
            )[:16]
        ack = PorAck(
            self._rx_epoch, self._chain.next_seq - 1, self._chain.proof(), missing
        )
        if self._hmac_active:
            ack.mac = self._mac_ctx.tag(self._encode_for_mac(ack))
        if self._mac_counters is not None:
            self._mac_counters[0].add()
        self.out_channel.send(ack, self.config.ack_size + 4 * len(missing))
        self.acks_sent += 1

    def _on_ack(self, ack: PorAck) -> None:
        if ack.epoch != self.epoch:
            return
        # Note: cum_seq may be -1 (nothing received in order yet); such
        # ACKs still matter for their NACK list — e.g. when the very
        # first packet of the stream was lost.
        if ack.cum_seq == self._verifier.acked_up_to and self._unacked:
            # Duplicate cumulative ACK: the receiver got something beyond
            # a gap.  Selectively retransmit the NACKed sequences; after
            # two duplicates also re-send the head of the window.
            for seq in ack.missing:
                self._fast_retransmit(seq)
            self._dup_acks += 1
            if self._dup_acks >= 2:
                self._dup_acks = 0
                self._fast_retransmit(ack.cum_seq + 1)
            return
        record = self._unacked.get(ack.cum_seq)
        if not self._verifier.check(ack.cum_seq, ack.proof):
            if ack.cum_seq > self._verifier.acked_up_to:
                self.bogus_acks_rejected += 1
            return
        self._dup_acks = 0
        # Karn's algorithm: sample RTT only from never-retransmitted packets.
        if record is not None and not record.retransmitted:
            self._sample_rtt(self.sim.now - record.first_sent)
        had_no_room = len(self._unacked) >= self._window
        for seq in list(self._unacked):
            if seq <= ack.cum_seq:
                del self._unacked[seq]
        # The retransmission timer is deliberately NOT re-armed here.  The
        # pending fire may now be early (its record was just acked), but a
        # stale fire is a no-op scan in _on_timeout that then re-arms at
        # the true minimum — far cheaper than cancel/min-scan/schedule on
        # every ACK of a healthy link.
        if had_no_room and len(self._unacked) < self._window:
            # The window reopened; wake the upper layer once pacing allows.
            delay = self.time_until_ready()
            if delay is not None and self.on_ready is not None:
                self.sim.schedule(delay, self._fire_ready)

    def _fire_ready(self) -> None:
        if self.on_ready is None:
            return
        if self.can_accept():
            self.on_ready()
            return
        # Pacing got busy again (e.g. an ACK burst); retry when it clears.
        delay = self.time_until_ready()
        if delay is not None:
            self.sim.schedule(max(delay, 1e-4), self._fire_ready)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _current_rto(self) -> float:
        return self._rto_cache

    def _sample_rtt(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        # A generous margin over SRTT: ACKs share the reverse channel
        # with data and jitter by several serialization quanta under
        # load; a tight RTO turns that jitter into spurious retransmits
        # that can waste half the forward capacity.
        rto = 1.5 * self._srtt + 4 * max(self._rttvar, 0.25 * self._srtt)
        self._rto_cache = min(max(rto, self.config.min_rto), self.config.max_rto)

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._unacked:
            return
        deadline = min(record.deadline for record in self._unacked.values())
        self._timer_deadline = max(deadline, self.sim.now)
        self._timer = self.sim.schedule_at(self._timer_deadline, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        now = self.sim.now
        for seq in sorted(self._unacked):
            record = self._unacked[seq]
            if record.deadline <= now + 1e-12:
                record.retransmitted = True
                record.rto = min(record.rto * 2, self.config.max_rto)
                record.deadline = now + record.rto
                self._transmit(seq, record)
                self.data_retransmitted += 1
        self._arm_timer()

    # ------------------------------------------------------------------
    # Handshake (REAL crypto mode)
    # ------------------------------------------------------------------
    def _on_handshake(self, msg: PorHandshake) -> None:
        if msg.sender != self.peer_id:
            return
        if not self.pki.verify(msg.sender, ("dh", msg.sender, msg.dh_public), msg.signature):
            self.macs_rejected += 1
            return
        if self._dh is None:
            # We are the responder: answer the offer with our own half.
            self._handshake_responder = True
            self.start_handshake()
        elif self._established and self._handshake_responder:
            # A retransmitted offer means our answering half was lost in
            # flight; re-send it.  Only the responder does this (the
            # initiator re-offers from its own timer), so two established
            # endpoints can never ping-pong handshakes at each other.
            self._send_handshake_offer()
        peer_public = int.from_bytes(msg.dh_public, "big")
        self._link_key = self._dh.compute_shared(peer_public)
        self._mac_memo.clear()
        self._hmac_active = self.pki.mode is PkiMode.REAL and self._link_key is not None
        self._mac_ctx = BatchMacContext(self._link_key) if self._hmac_active else None
        already_established = self._established
        self._established = True
        if self._handshake_timer is not None:
            self._handshake_timer.cancel()
            self._handshake_timer = None
        if already_established:
            return  # a retransmitted offer; key is unchanged
        if self.on_ready is not None:
            self.sim.call_soon(self.on_ready)

    @property
    def _real_crypto(self) -> bool:
        return self.pki.mode is PkiMode.REAL and self._link_key is not None

    def _encode_for_mac(self, packet: Any) -> bytes:
        return canonical_bytes(packet.mac_fields())


def connect_por_pair(
    sim: SchedulerLike,
    a: Any,
    b: Any,
    channel_ab: TransportLike,
    channel_ba: TransportLike,
    pki: Pki,
    config: Optional[PorConfig] = None,
    handshake: bool = False,
) -> Tuple[PorEndpoint, PorEndpoint]:
    """Create both endpoints of a PoR link over a channel pair.

    With ``handshake=False`` (the default) the link key is installed out
    of band; with ``handshake=True`` the endpoints run the signed
    Diffie-Hellman exchange on the wire and only become established once
    it completes.
    """
    end_a = PorEndpoint(sim, a, b, channel_ab, channel_ba, pki, config)
    end_b = PorEndpoint(sim, b, a, channel_ba, channel_ab, pki, config)
    if handshake:
        end_a.start_handshake()
    else:
        end_a.establish_out_of_band()
        end_b.establish_out_of_band()
    return end_a, end_b
