"""The resilient networking architecture (Section IV).

The overlay's channels ride on an *underlay* of multiple ISP networks:

* :mod:`repro.resilience.underlay` — ISP contracts and multihoming: an
  overlay link is usable while at least one (ISP-at-A, ISP-at-B)
  combination still passes traffic (Figure 1);
* :mod:`repro.resilience.bgp` — BGP hijacking: cross-ISP routes are
  diverted, same-ISP routes survive (Section IV-B);
* :mod:`repro.resilience.ddos` — Crossfire/Coremelt-style rotating
  link-flooding attacks that keep a path broken while evading per-link
  detection (Figure 2);
* :mod:`repro.resilience.variants` — diverse software-variant assignment
  (Newell et al., DSN'13) maximizing connectivity when one variant is
  compromised;
* :mod:`repro.resilience.recovery` — proactive recovery: periodically
  restore each node from a clean state with a fresh variant;
* :mod:`repro.resilience.adaptive` — feedback-controlled defense:
  telemetry-driven compromise beliefs steering recovery timing and
  quarantine vigilance under a global downtime budget.
"""

from repro.resilience.adaptive import (
    AdaptiveDefense,
    BeliefEstimator,
    GlobalBudget,
    LiveRecoveryActuator,
    SimRecoveryActuator,
)
from repro.resilience.bgp import BgpHijack
from repro.resilience.ddos import RotatingLinkAttack
from repro.resilience.recovery import ProactiveRecovery
from repro.resilience.underlay import Underlay
from repro.resilience.variants import (
    assign_variants,
    connectivity_under_variant_failure,
)

__all__ = [
    "Underlay",
    "BgpHijack",
    "RotatingLinkAttack",
    "ProactiveRecovery",
    "AdaptiveDefense",
    "BeliefEstimator",
    "GlobalBudget",
    "SimRecoveryActuator",
    "LiveRecoveryActuator",
    "assign_variants",
    "connectivity_under_variant_failure",
]
