"""Feedback-controlled defense: adaptive proactive recovery + quarantine.

The paper's defenses run open-loop: proactive recovery rotates on a
fixed schedule (Section V-D) and link quarantine fires on static
thresholds.  This module closes the loop in the style of Hammar &
Stadler's two-level feedback control for intrusion tolerance
(arXiv:2404.01741), using only telemetry the deployment already
collects:

* :class:`BeliefEstimator` — folds per-node anomaly signals (invariant
  violations, PoR out-of-window drops / MAC rejections / bogus ACKs,
  invalid signatures attributed per delivering link, quarantine and
  probation events, live transport drops and unexpected restarts) into
  a decaying compromise score in [0, 1] with a suspect/clear hysteresis
  band and a transition cooldown, so a node never oscillates in and out
  of suspicion within one cooldown.
* The **local controller** (inside :class:`AdaptiveDefense`) maps each
  node's score to actions: *advance* a suspect's recovery slot (or
  *escalate* to an immediate supervisor-driven restart above the
  escalation threshold), *defer* a demonstrably healthy node's slot up
  to ``defer_factor_max`` times the base period, and *tighten*/*relax*
  the neighbors' quarantine vigilance toward the node.  Every action is
  rate-limited by ``action_cooldown``.
* :class:`GlobalBudget` — the global controller: hard caps on
  simultaneous defense-initiated downtimes and simultaneously tightened
  nodes, with priority ordering (highest belief first) when demand
  exceeds budget.  Externally crashed nodes (chaos faults) count
  against the downtime budget, so the defense never stacks its own
  downtime on top of an already-degraded overlay and MTMW connectivity
  is preserved by construction.

The engine is substrate-agnostic: it reads the same
:class:`~repro.overlay.node.OverlayNode` objects on the deterministic
simulator and the live asyncio/UDP runtime, and actuates through a
pluggable recovery actuator (:class:`SimRecoveryActuator` crashes and
restores through :class:`~repro.overlay.network.OverlayNetwork` with a
fresh software variant per reinstall; :class:`LiveRecoveryActuator`
kills through the :class:`~repro.runtime.supervision.NodeSupervisor`
with a hold and releases after the reinstall downtime).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.byzantine.behaviors import HonestBehavior
from repro.errors import ConfigurationError
from repro.overlay.config import DefenseConfig
from repro.resilience.recovery import record_recovery_downtime
from repro.resilience.variants import VariantPool
from repro.sim.engine import PeriodicTimer

#: Belief increment weights per observed anomaly, by signal kind.  One
#: observation of kind ``k`` multiplies the node's *innocence* by
#: ``(1 - w_k)``; a weight of 0.5 means a single invariant violation
#: already lifts a clean node halfway to certain compromise.
SIGNAL_WEIGHTS: Dict[str, float] = {
    "invariant.violation": 0.50,
    "por.out_of_window": 0.06,
    "por.mac_rejected": 0.10,
    "por.bogus_ack": 0.10,
    "msg.invalid": 0.12,
    "link.quarantine": 0.20,
    "link.probation_failure": 0.15,
    "transport.drop": 0.02,
    "supervisor.restart": 0.15,
}

#: Weight applied to signal kinds not listed in the weight table (live
#: substrates may surface extra counters).
DEFAULT_SIGNAL_WEIGHT = 0.05


class BeliefState:
    """Belief bookkeeping for one node."""

    __slots__ = ("score", "last_update", "suspect", "last_transition", "transitions")

    def __init__(self, now: float):
        self.score = 0.0
        self.last_update = now
        self.suspect = False
        self.last_transition = -math.inf
        #: (time, became_suspect) per hysteresis flip, for tests/reports.
        self.transitions: List[Tuple[float, bool]] = []


class BeliefEstimator:
    """Per-node compromise beliefs with exponential decay + hysteresis.

    The score is ``1 - Π (1 - w_k)^{count_k}`` over observed anomalies,
    decayed toward the 0 baseline with half-life ``belief_half_life``.
    Observing more anomalies at a fixed time never lowers the score;
    with no signals the score decays below any positive threshold.
    """

    def __init__(
        self,
        config: Optional[DefenseConfig] = None,
        weights: Optional[Dict[str, float]] = None,
    ):
        self.config = config or DefenseConfig()
        self.weights = dict(SIGNAL_WEIGHTS if weights is None else weights)
        self._states: Dict[Any, BeliefState] = {}

    def _state(self, node_id: Any, now: float) -> BeliefState:
        state = self._states.get(node_id)
        if state is None:
            state = self._states[node_id] = BeliefState(now)
        return state

    def _decay(self, state: BeliefState, now: float) -> None:
        dt = now - state.last_update
        if dt > 0:
            state.score *= 0.5 ** (dt / self.config.belief_half_life)
        state.last_update = max(state.last_update, now)

    def _hysteresis(self, state: BeliefState, now: float) -> None:
        cooldown = self.config.action_cooldown
        if state.suspect:
            if (
                state.score <= self.config.belief_low
                and now - state.last_transition >= cooldown
            ):
                state.suspect = False
                state.last_transition = now
                state.transitions.append((now, False))
        elif (
            state.score >= self.config.belief_high
            and now - state.last_transition >= cooldown
        ):
            state.suspect = True
            state.last_transition = now
            state.transitions.append((now, True))

    # ------------------------------------------------------------------
    def observe(self, node_id: Any, kind: str, count: float, now: float) -> float:
        """Fold ``count`` anomalies of ``kind`` into the node's belief;
        returns the updated score.  Monotone in ``count`` at fixed time."""
        if count < 0:
            raise ConfigurationError(f"anomaly count must be >= 0 (got {count})")
        state = self._state(node_id, now)
        self._decay(state, now)
        weight = self.weights.get(kind, DEFAULT_SIGNAL_WEIGHT)
        state.score = 1.0 - (1.0 - state.score) * (1.0 - weight) ** count
        self._hysteresis(state, now)
        return state.score

    def score(self, node_id: Any, now: float) -> float:
        """The node's decayed compromise score at ``now`` (also applies
        any due hysteresis transition)."""
        state = self._state(node_id, now)
        self._decay(state, now)
        self._hysteresis(state, now)
        return state.score

    def is_suspect(self, node_id: Any) -> bool:
        """Whether the node sits on the suspect side of the hysteresis
        band (as of its last update — call :meth:`score` first to fold
        in elapsed decay)."""
        state = self._states.get(node_id)
        return state.suspect if state is not None else False

    def transitions(self, node_id: Any) -> List[Tuple[float, bool]]:
        """Every ``(time, became_suspect)`` hysteresis flip so far, in
        order (the no-oscillation property tests assert on these)."""
        state = self._states.get(node_id)
        return list(state.transitions) if state is not None else []

    def snapshot(self) -> Dict[str, float]:
        """Current (last-updated) scores keyed by stringified node id."""
        return {
            str(node_id): round(state.score, 6)
            for node_id, state in sorted(self._states.items(), key=lambda kv: str(kv[0]))
        }


class GlobalBudget:
    """The global controller: caps simultaneous defense actions.

    ``acquire_down`` admits a new defense-initiated downtime only while
    the number of concurrently down nodes — defense-initiated plus
    ``external`` ones already down for other reasons — stays below the
    cap, so the defense itself can never push the overlay past the
    simultaneous-downtime budget MTMW connectivity was provisioned for.
    """

    def __init__(self, max_down: int, max_tightened: int):
        if max_down < 1:
            raise ConfigurationError("max_down must be >= 1")
        if max_tightened < 0:
            raise ConfigurationError("max_tightened must be >= 0")
        self.max_down = max_down
        self.max_tightened = max_tightened
        self.down: Set[Any] = set()
        self.tightened: Set[Any] = set()
        self.peak_down = 0
        self.peak_total_down = 0
        self.down_denied = 0
        self.tighten_denied = 0

    def acquire_down(self, node_id: Any, external: int = 0) -> bool:
        """Admit a new defense-initiated downtime while total downtime
        (defense-initiated plus ``external`` crashes) stays under the
        cap; idempotent for nodes already held down."""
        if node_id in self.down:
            return True
        if len(self.down) + external >= self.max_down:
            self.down_denied += 1
            return False
        self.down.add(node_id)
        self.peak_down = max(self.peak_down, len(self.down))
        self.peak_total_down = max(self.peak_total_down, len(self.down) + external)
        return True

    def release_down(self, node_id: Any) -> None:
        """End a defense-initiated downtime (no-op if absent)."""
        self.down.discard(node_id)

    def acquire_tighten(self, node_id: Any) -> bool:
        """Admit the node to the tightened-vigilance set, up to the
        ``max_tightened`` cap; idempotent for already-tightened nodes."""
        if node_id in self.tightened:
            return True
        if len(self.tightened) >= self.max_tightened:
            self.tighten_denied += 1
            return False
        self.tightened.add(node_id)
        return True

    def release_tighten(self, node_id: Any) -> None:
        """Drop the node from the tightened set (no-op if absent)."""
        self.tightened.discard(node_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form: caps, peaks, denial counts, current holdings."""
        return {
            "max_down": self.max_down,
            "max_tightened": self.max_tightened,
            "peak_down": self.peak_down,
            "peak_total_down": self.peak_total_down,
            "down_denied": self.down_denied,
            "tighten_denied": self.tighten_denied,
            "currently_down": sorted(str(n) for n in self.down),
            "currently_tightened": sorted(str(n) for n in self.tightened),
        }


class SimRecoveryActuator:
    """Recovery actuation on the simulated substrate: crash/restore via
    :class:`~repro.overlay.network.OverlayNetwork`, assigning a fresh
    software variant and clearing any installed Byzantine behaviour on
    every reinstall — the same semantics as
    :class:`~repro.resilience.recovery.ProactiveRecovery`."""

    def __init__(
        self,
        network: Any,
        variant_pool: Optional[VariantPool] = None,
        initial_variants: Optional[Dict[Any, int]] = None,
    ):
        self.network = network
        self.pool = variant_pool or VariantPool(families=3)
        self.current_variant: Dict[Any, Tuple[int, int]] = {}
        for node_id in sorted(network.nodes, key=str):
            family = (initial_variants or {}).get(node_id, 0)
            self.current_variant[node_id] = self.pool.fresh(family)
        self.compromises_cleaned = 0

    def take_down(self, node_id: Any) -> None:
        """Crash the node for its reinstall window (counting a cleaned
        compromise if it was running Byzantine behaviour)."""
        node = self.network.node(node_id)
        if not isinstance(node.behavior, HonestBehavior):
            self.compromises_cleaned += 1
        self.network.crash(node_id)

    def restore(self, node_id: Any) -> None:
        """Recover the node with a fresh variant build of the next
        family and a clean (honest) behaviour."""
        node = self.network.node(node_id)
        family, _ = self.current_variant[node_id]
        self.current_variant[node_id] = self.pool.fresh(family + 1)
        node.behavior = HonestBehavior()
        self.network.recover(node_id)


class LiveRecoveryActuator:
    """Recovery actuation on the live substrate: kill through the node
    supervisor with a hold (socket closes, soft state lost, the armed
    invariant monitor observes the crash), then release after the
    reinstall downtime — the watchdog performs the rebind + rejoin.
    Downtime is accounted at release; the supervisor's restart backoff
    adds rebind latency that its own summary reports."""

    def __init__(self, deployment: Any):
        self.deployment = deployment

    def take_down(self, node_id: Any) -> None:
        """Kill the node process through the supervisor with a hold, so
        the watchdog waits for :meth:`restore` before rebinding."""
        self.deployment.supervisor.kill(
            node_id, reason="proactive-recovery", hold=True
        )

    def restore(self, node_id: Any) -> None:
        """Release the hold: the watchdog rebinds and rejoins the node
        once its backoff expires."""
        self.deployment.supervisor.release(node_id)


class AdaptiveDefense:
    """The two-level feedback controller driving recovery + quarantine.

    ``deployment`` duck type (satisfied by both
    :class:`~repro.overlay.network.OverlayNetwork` and
    :class:`~repro.runtime.live.LiveDeployment`): ``sim`` (clock +
    ``schedule``), ``nodes`` (id -> :class:`OverlayNode`), ``stats``.

    With ``adaptive=False`` the engine degrades to a fixed staggered
    rotation through the identical actuation, budget, and downtime
    accounting — the controlled baseline the benchmark compares against.
    """

    def __init__(
        self,
        deployment: Any,
        actuator: Any,
        config: Optional[DefenseConfig] = None,
        adaptive: bool = True,
        monitor: Optional[Any] = None,
        extra_signals: Optional[Callable[[Any], Dict[str, float]]] = None,
        period: Optional[float] = None,
        downtime: Optional[float] = None,
    ):
        self.deployment = deployment
        self.actuator = actuator
        self.config = config or self._resolve_config(deployment)
        self.adaptive = adaptive
        self.monitor = monitor
        self.extra_signals = extra_signals
        self.period = self.config.recovery_period if period is None else period
        self.downtime = (
            self.config.recovery_downtime if downtime is None else downtime
        )
        if self.downtime <= 0 or self.period <= 0:
            raise ConfigurationError("period and downtime must be positive")
        if self.downtime >= self.period:
            raise ConfigurationError("downtime must be below the period")
        self._order: List[Any] = sorted(deployment.nodes, key=str)
        if not self._order:
            raise ConfigurationError("deployment has no nodes to defend")
        self.slot = self.period / len(self._order)
        self.estimator = BeliefEstimator(self.config)
        self.budget = GlobalBudget(
            self.config.max_concurrent_down, self.config.max_tightened_nodes
        )
        # Controller state.
        self._due: Dict[Any, float] = {}
        self._anchor: Dict[Any, float] = {}
        self._last_action: Dict[Any, float] = {}
        self._last_signal: Dict[Tuple[Any, str], float] = {}
        self._down_at: Dict[Any, float] = {}
        self._restore_events: Dict[Any, Any] = {}
        self._proactive_downs: Dict[Any, int] = {n: 0 for n in self._order}
        self._timer: Optional[PeriodicTimer] = None
        self._running = False
        # Observability.
        self.recoveries_completed = 0
        self.deferrals = 0
        self.advances = 0
        self.escalations = 0
        self.tightenings = 0
        self.relaxations = 0
        self.total_downtime_seconds = 0.0

    @staticmethod
    def _resolve_config(deployment: Any) -> DefenseConfig:
        config = getattr(deployment, "config", None)
        overlay = getattr(config, "overlay", config)
        defense = getattr(overlay, "defense", None)
        return defense if defense is not None else DefenseConfig()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Any:
        return self.deployment.stats

    @property
    def sim(self) -> Any:
        return self.deployment.sim

    def proactive_downs(self, node_id: Any) -> int:
        """How many take-downs this controller initiated for a node (the
        live substrate subtracts these from supervisor kill counts so
        our own recoveries do not feed the belief loop)."""
        return self._proactive_downs.get(node_id, 0)

    def concurrent_down(self) -> int:
        """Defense-initiated downtimes currently in progress (the
        invariant monitor checks this against the budget)."""
        return len(self.budget.down)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the controller: staggered initial rotation slots (same
        grid as the fixed scheduler) plus the periodic control tick."""
        if self._running:
            return
        self._running = True
        now = self.sim.now
        for index, node_id in enumerate(self._order):
            self._due[node_id] = now + self.slot * (index + 1)
            self._anchor[node_id] = now
        self._timer = PeriodicTimer(
            self.sim, self.config.control_interval, self._tick
        )
        self._timer.start()
        if self.monitor is not None and hasattr(self.monitor, "attach_defense"):
            self.monitor.attach_defense(self)

    def stop(self) -> None:
        """Disarm: cancel timers, restore any node currently down for a
        defense-initiated reinstall, and relax all tightened links."""
        self._running = False
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        for node_id in sorted(self._restore_events, key=str):
            self._restore_events[node_id].cancel()
            self._restore(node_id)
        for node_id in sorted(self.budget.tightened, key=str):
            self._set_vigilance(node_id, 1.0, 1.0)
            self.relaxations += 1
        self.budget.tightened.clear()

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        with self.stats.metrics.trace.span("defense.tick"):
            self._poll_signals(now)
            self._control(now)
            self._execute(now)

    def _collect(self, node_id: Any) -> Dict[str, float]:
        """Cumulative anomaly totals attributed to ``node_id``, read
        from the neighbors' instruments facing it (identical objects on
        both substrates)."""
        totals: Dict[str, float] = {
            "por.out_of_window": 0.0,
            "por.mac_rejected": 0.0,
            "por.bogus_ack": 0.0,
            "link.quarantine": 0.0,
            "link.probation_failure": 0.0,
            "msg.invalid": 0.0,
        }
        for other_id, other in self.deployment.nodes.items():
            if other_id == node_id:
                continue
            link = other.links.get(node_id)
            if link is None:
                continue
            totals["por.out_of_window"] += link.por.out_of_window_dropped
            totals["por.mac_rejected"] += link.por.macs_rejected
            totals["por.bogus_ack"] += link.por.bogus_acks_rejected
            totals["link.quarantine"] += link.quarantine_count
            totals["link.probation_failure"] += link.probation_failures
            totals["msg.invalid"] += link.invalid_rx
        if self.monitor is not None:
            by_node = getattr(self.monitor, "violations_by_node", None)
            if by_node:
                totals["invariant.violation"] = float(by_node.get(node_id, 0))
        if self.extra_signals is not None:
            extra = self.extra_signals(node_id)
            for kind in sorted(extra):
                totals[kind] = totals.get(kind, 0.0) + extra[kind]
        return totals

    def _poll_signals(self, now: float) -> None:
        for node_id in self._order:
            totals = self._collect(node_id)
            for kind in sorted(totals):
                key = (node_id, kind)
                last = self._last_signal.get(key, 0.0)
                delta = totals[kind] - last
                if delta > 0:
                    self.estimator.observe(node_id, kind, delta, now)
                self._last_signal[key] = max(last, totals[kind])

    def _cooldown_ok(self, node_id: Any, now: float) -> bool:
        return now - self._last_action.get(node_id, -math.inf) >= (
            self.config.action_cooldown
        )

    def _control(self, now: float) -> None:
        """The local controllers: belief -> advance/defer/tighten/relax."""
        metrics = self.stats.metrics
        for node_id in self._order:
            score = self.estimator.score(node_id, now)
            metrics.gauge(f"defense.belief:{node_id}").set(round(score, 6))
            if not self.adaptive:
                continue
            suspect = self.estimator.is_suspect(node_id)
            tightened = node_id in self.budget.tightened
            if suspect and not tightened:
                if self.budget.acquire_tighten(node_id):
                    self._set_vigilance(
                        node_id,
                        self.config.tighten_timeout_scale,
                        self.config.tighten_probation_scale,
                    )
                    self.tightenings += 1
                    self.stats.counter("defense.tightened").add()
                    metrics.trace.event(now, "defense.tighten", str(node_id))
            elif not suspect and tightened:
                self.budget.release_tighten(node_id)
                self._set_vigilance(node_id, 1.0, 1.0)
                self.relaxations += 1
                self.stats.counter("defense.relaxed").add()
                metrics.trace.event(now, "defense.relax", str(node_id))
            if suspect and self._due[node_id] > now and self._cooldown_ok(node_id, now):
                # Advance the suspect's rotation slot; above the
                # escalation threshold this is an immediate
                # supervisor-driven (live) / forced (sim) restart.
                self._due[node_id] = now
                self._last_action[node_id] = now
                if score >= self.config.escalate_threshold:
                    self.escalations += 1
                    self.stats.counter("defense.escalations").add()
                    metrics.trace.event(now, "defense.escalate", str(node_id))
                else:
                    self.advances += 1
                    self.stats.counter("defense.advances").add()
                    metrics.trace.event(now, "defense.advance", str(node_id))

    def _set_vigilance(
        self, node_id: Any, timeout_scale: float, probation_scale: float
    ) -> None:
        """Point every neighbor's liveness thresholds at ``node_id``."""
        for other_id, other in sorted(
            self.deployment.nodes.items(), key=lambda kv: str(kv[0])
        ):
            if other_id != node_id:
                other.set_link_vigilance(node_id, timeout_scale, probation_scale)

    def _execute(self, now: float) -> None:
        """Run due recoveries under the global budget, highest belief
        first (the priority order when demand exceeds budget)."""
        nodes = self.deployment.nodes
        due = [
            n
            for n in self._order
            if self._due[n] <= now and n not in self.budget.down
        ]
        due.sort(key=lambda n: (-self.estimator.score(n, now), str(n)))
        for node_id in due:
            if nodes[node_id].crashed:
                # Already down for another reason (chaos, supervisor);
                # recovering it now would double-charge the downtime.
                self._due[node_id] = now + self.slot
                continue
            score = self.estimator.score(node_id, now)
            if (
                self.adaptive
                and score <= self.config.belief_low
                and now + self.slot - self._anchor[node_id]
                <= self.period * self.config.defer_factor_max
            ):
                # Demonstrably healthy: defer one slot, bounded by the
                # stretched-period cap.
                self._due[node_id] = now + self.slot
                self.deferrals += 1
                self.stats.counter("defense.deferrals").add()
                continue
            external = sum(
                1
                for other_id, other in nodes.items()
                if other.crashed and other_id not in self.budget.down
            )
            if not self.budget.acquire_down(node_id, external=external):
                self.stats.counter("defense.budget_denied").add()
                continue  # stays due; retried next tick by priority
            self._take_down(node_id, now)

    def _take_down(self, node_id: Any, now: float) -> None:
        self._down_at[node_id] = now
        self._proactive_downs[node_id] += 1
        self.stats.counter("defense.recoveries").add()
        self.stats.metrics.trace.event(now, "defense.take_down", str(node_id))
        self.actuator.take_down(node_id)
        self._restore_events[node_id] = self.sim.schedule(
            self.downtime, self._restore, node_id
        )
        self.stats.metrics.gauge("defense.concurrent_down").set(
            len(self.budget.down)
        )

    def _restore(self, node_id: Any) -> None:
        self._restore_events.pop(node_id, None)
        now = self.sim.now
        self.actuator.restore(node_id)
        self.budget.release_down(node_id)
        self._anchor[node_id] = now
        self._due[node_id] = now + self.period
        self.recoveries_completed += 1
        down_at = self._down_at.pop(node_id, None)
        if down_at is not None:
            self.total_downtime_seconds += now - down_at
        record_recovery_downtime(self.stats, node_id, down_at, now)
        self.stats.metrics.trace.event(now, "defense.restore", str(node_id))
        self.stats.metrics.gauge("defense.concurrent_down").set(
            len(self.budget.down)
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-serializable controller outcome (CLI + LiveReport)."""
        return {
            "adaptive": self.adaptive,
            "period": self.period,
            "downtime": self.downtime,
            "recoveries_completed": self.recoveries_completed,
            "total_downtime_seconds": round(self.total_downtime_seconds, 6),
            "deferrals": self.deferrals,
            "advances": self.advances,
            "escalations": self.escalations,
            "tightenings": self.tightenings,
            "relaxations": self.relaxations,
            "budget": self.budget.to_dict(),
            "beliefs": self.estimator.snapshot(),
            "suspects": sorted(
                str(n) for n in self._order if self.estimator.is_suspect(n)
            ),
        }
