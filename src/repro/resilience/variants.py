"""Diverse software-variant assignment (Section IV-A2 / Newell et al.).

"That work shows how to assign a small number of diverse software
variants to nodes to maximize the expected client connectivity when each
variant has some probability of failing completely."

We reproduce the optimization at the level the paper uses it: assign one
of V variants to each overlay node so that, when all nodes running any
single variant fail simultaneously (a shared exploit), the surviving
topology keeps as many node pairs connected as possible.  The objective
is the *expected* connected-pairs fraction over a uniformly random failed
variant (the worst case is also reported).

The solver is a greedy assignment followed by 1-swap local search, which
is exact on small topologies (checked against brute force in tests) and
near-optimal on the 12-node cloud.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.topology.graph import NodeId, Topology


def connectivity_under_variant_failure(
    topo: Topology, assignment: Dict[NodeId, int], failed_variant: int
) -> float:
    """Fraction of surviving-node pairs still connected when every node
    running ``failed_variant`` fails."""
    failed = {n for n, v in assignment.items() if v == failed_variant}
    survivors = [n for n in topo.nodes if n not in failed]
    total = len(survivors) * (len(survivors) - 1) // 2
    if total == 0:
        return 1.0
    connected = 0
    seen = set()
    for i, a in enumerate(survivors):
        if a in seen:
            continue
        reachable = topo.reachable_from(a, exclude_nodes=failed)
        members = [s for s in survivors if s in reachable]
        k = len(members)
        connected += k * (k - 1) // 2
        seen.update(members)
    return connected / total


def assignment_score(
    topo: Topology, assignment: Dict[NodeId, int], variants: int
) -> Tuple[float, float]:
    """(expected, worst-case) connected-pairs fraction over failed variants."""
    scores = [
        connectivity_under_variant_failure(topo, assignment, v)
        for v in range(variants)
    ]
    return sum(scores) / len(scores), min(scores)


def assign_variants(
    topo: Topology,
    variants: int,
    local_search_rounds: int = 3,
) -> Dict[NodeId, int]:
    """Greedy + 1-swap local search variant assignment."""
    if variants < 1:
        raise ConfigurationError(f"variants must be >= 1 (got {variants})")
    nodes = sorted(topo.nodes, key=str)
    # Greedy: place nodes in descending degree order, choosing for each
    # the variant that maximizes the objective so far.
    nodes.sort(key=lambda n: (-topo.degree(n), str(n)))
    assignment: Dict[NodeId, int] = {}
    for node in nodes:
        best_variant = 0
        best_score = (-1.0, -1.0)
        for variant in range(variants):
            assignment[node] = variant
            score = assignment_score(topo, assignment, variants)
            if score > best_score:
                best_score = score
                best_variant = variant
        assignment[node] = best_variant
    # Local search: single-node variant changes.
    for _ in range(local_search_rounds):
        improved = False
        current = assignment_score(topo, assignment, variants)
        for node in nodes:
            original = assignment[node]
            for variant in range(variants):
                if variant == original:
                    continue
                assignment[node] = variant
                score = assignment_score(topo, assignment, variants)
                if score > current:
                    current = score
                    improved = True
                    original = variant
            assignment[node] = original
        if not improved:
            break
    return assignment


def brute_force_assignment(
    topo: Topology, variants: int
) -> Tuple[Dict[NodeId, int], Tuple[float, float]]:
    """Exhaustive search (exponential; tests/small graphs only)."""
    nodes = sorted(topo.nodes, key=str)
    if len(nodes) > 10:
        raise ConfigurationError("brute force limited to 10 nodes")
    best: Optional[Dict[NodeId, int]] = None
    best_score = (-1.0, -1.0)
    for combo in itertools.product(range(variants), repeat=len(nodes)):
        assignment = dict(zip(nodes, combo))
        score = assignment_score(topo, assignment, variants)
        if score > best_score:
            best_score = score
            best = assignment
    assert best is not None
    return best, best_score


class VariantPool:
    """Generates fresh variant ids, as compiler-based diversity does
    on demand for each proactive recovery ("a new software variant that
    has likely never been used before")."""

    def __init__(self, families: int):
        if families < 1:
            raise ConfigurationError("families must be >= 1")
        self.families = families
        self._next_build = 0

    def fresh(self, family: int) -> Tuple[int, int]:
        """A new unique build of the given variant family."""
        self._next_build += 1
        return (family % self.families, self._next_build)
