"""The multi-ISP underlay beneath the overlay's channels.

Section IV: each overlay node contracts one or more ISPs (multihoming).
An overlay link (A, B) is realized by the set of *route combinations*
(isp_at_A, isp_at_B); it passes messages while at least one combination
is usable.  Combinations with the same ISP at both ends stay inside that
ISP's backbone and are immune to BGP-level attacks; cross-ISP
combinations depend on Internet (BGP) routing.

The model drives the overlay's :class:`~repro.sim.channel.Channel`
objects: whenever the last usable combination of a link goes down, the
link's channels are taken down (the overlay then detects the failure via
hello timeouts and reroutes); when a combination recovers, they are
restored.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.overlay.network import OverlayNetwork
from repro.topology.graph import NodeId, edge_key

#: A route combination: (ISP at endpoint A, ISP at endpoint B), with the
#: endpoints in sorted-str order so combos are canonical per link.
Combo = Tuple[str, str]


class Underlay:
    """ISP contracts, multihoming, and route-combination state."""

    def __init__(self, network: OverlayNetwork, contracts: Dict[NodeId, Sequence[str]]):
        self.network = network
        self.contracts: Dict[NodeId, List[str]] = {}
        for node in network.topology.nodes:
            isps = list(contracts.get(node, ()))
            if not isps:
                raise ConfigurationError(f"node {node!r} has no ISP contract")
            self.contracts[node] = isps
        self.isps: Set[str] = {isp for isps in self.contracts.values() for isp in isps}
        # Per-link combination status.
        self._combo_up: Dict[Tuple[frozenset, Combo], bool] = {}
        self._links: List[Tuple[NodeId, NodeId]] = list(network.topology.edges())
        for a, b in self._links:
            for combo in self.combos(a, b):
                self._combo_up[(edge_key(a, b), combo)] = True
        # Attack state.
        self._failed_isps: Set[str] = set()
        self._bgp_hijacked = False

    # ------------------------------------------------------------------
    def combos(self, a: NodeId, b: NodeId) -> List[Combo]:
        """All (ISP_first, ISP_second) combinations for link (a, b),
        endpoint order normalized by sorted str."""
        first, second = sorted((a, b), key=str)
        return [
            (isp_f, isp_s)
            for isp_f in self.contracts[first]
            for isp_s in self.contracts[second]
        ]

    def combo_usable(self, a: NodeId, b: NodeId, combo: Combo) -> bool:
        """Is this route combination currently passing traffic?"""
        if not self._combo_up[(edge_key(a, b), combo)]:
            return False
        if combo[0] in self._failed_isps or combo[1] in self._failed_isps:
            return False
        if self._bgp_hijacked and combo[0] != combo[1]:
            return False
        return True

    def link_usable(self, a: NodeId, b: NodeId) -> bool:
        """An overlay link works while any combination works."""
        return any(self.combo_usable(a, b, c) for c in self.combos(a, b))

    def usable_links(self) -> List[Tuple[NodeId, NodeId]]:
        """Overlay links that currently have at least one working combination."""
        return [(a, b) for a, b in self._links if self.link_usable(a, b)]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def set_combo(self, a: NodeId, b: NodeId, combo: Combo, up: bool) -> None:
        """Force one route combination up or down (attack primitive)."""
        key = (edge_key(a, b), combo)
        if key not in self._combo_up:
            raise TopologyError(f"no combination {combo} on link ({a!r}, {b!r})")
        self._combo_up[key] = up
        self._apply(a, b)

    def fail_isp(self, isp: str) -> None:
        """Complete meltdown of one ISP backbone."""
        if isp not in self.isps:
            raise ConfigurationError(f"unknown ISP {isp!r}")
        self._failed_isps.add(isp)
        self._apply_all()

    def restore_isp(self, isp: str) -> None:
        """Bring a melted-down ISP back."""
        self._failed_isps.discard(isp)
        self._apply_all()

    def set_bgp_hijacked(self, hijacked: bool) -> None:
        """During a BGP hijack only same-ISP combinations pass traffic."""
        self._bgp_hijacked = hijacked
        self._apply_all()

    # ------------------------------------------------------------------
    def _apply(self, a: NodeId, b: NodeId) -> None:
        if self.link_usable(a, b):
            self.network.restore_link(a, b)
        else:
            self.network.fail_link(a, b)

    def _apply_all(self) -> None:
        for a, b in self._links:
            self._apply(a, b)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def surviving_topology(self):
        """The overlay topology restricted to currently usable links."""
        topo = self.network.topology
        survivor = topo.copy()
        for a, b in topo.edges():
            if not self.link_usable(a, b):
                survivor.remove_edge(a, b)
        return survivor

    def connected_pairs_fraction(self) -> float:
        """Fraction of node pairs that can still communicate."""
        survivor = self.surviving_topology()
        nodes = survivor.nodes
        total = len(nodes) * (len(nodes) - 1) // 2
        if total == 0:
            return 1.0
        connected = 0
        for i, a in enumerate(nodes):
            reachable = survivor.reachable_from(a)
            connected += sum(1 for b in nodes[i + 1:] if b in reachable)
        return connected / total


def single_homed(network: OverlayNetwork, assignment: Dict[NodeId, str]) -> Underlay:
    """Convenience: every node contracts exactly one ISP."""
    return Underlay(network, {node: [isp] for node, isp in assignment.items()})


def multihomed(
    network: OverlayNetwork, assignment: Dict[NodeId, Iterable[str]]
) -> Underlay:
    """Convenience: nodes contract several ISPs (Figure 1)."""
    return Underlay(network, {node: list(isps) for node, isps in assignment.items()})
