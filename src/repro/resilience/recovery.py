"""Proactive recovery (Section V-D).

"Proactive recovery periodically takes down each overlay node and
restores it from a known clean state, removing potentially undetected
compromises.  Moreover, each time an overlay node is proactively
recovered, it is instantiated with a new software variant."

:class:`ProactiveRecovery` drives the overlay: in a staggered round-robin
it crashes one node, waits out the reinstall downtime, then recovers it
with a fresh variant from the :class:`~repro.resilience.variants.VariantPool`.
Recovery also clears any installed Byzantine behaviour — a recovered node
is honest until compromised again, which is how the network "remains
correct and available over a long lifetime".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.byzantine.behaviors import HonestBehavior
from repro.errors import ConfigurationError
from repro.overlay.network import OverlayNetwork
from repro.resilience.variants import VariantPool
from repro.topology.graph import NodeId


class ProactiveRecovery:
    """Staggered periodic take-down/restore of every overlay node."""

    def __init__(
        self,
        network: OverlayNetwork,
        period: Optional[float] = None,
        downtime: Optional[float] = None,
        variant_pool: Optional[VariantPool] = None,
        initial_variants: Optional[Dict[NodeId, int]] = None,
    ):
        # The rotation cadence defaults to the deployment's typed
        # defense block; explicit arguments override per experiment.
        defense = network.config.defense
        period = defense.recovery_period if period is None else period
        downtime = defense.recovery_downtime if downtime is None else downtime
        if downtime <= 0 or period <= 0:
            raise ConfigurationError("period and downtime must be positive")
        nodes = len(network.nodes)
        if downtime * nodes >= period:
            raise ConfigurationError(
                "period too short: all nodes would overlap in downtime "
                f"(need period > downtime * {nodes})"
            )
        self.network = network
        self.period = period
        self.downtime = downtime
        self.pool = variant_pool or VariantPool(families=3)
        self.current_variant: Dict[NodeId, Tuple[int, int]] = {}
        self._order: List[NodeId] = sorted(network.nodes, key=str)
        for node_id in self._order:
            family = (initial_variants or {}).get(node_id, 0)
            self.current_variant[node_id] = self.pool.fresh(family)
        self._index = 0
        self.recoveries_completed = 0
        self.compromises_cleaned = 0
        self._running = False
        self._next_event = None
        self._restore_events: Dict[NodeId, object] = {}
        self._down_at: Dict[NodeId, float] = {}

    def start(self) -> None:
        """Begin the staggered recovery schedule."""
        self._running = True
        self._next_event = self.network.sim.schedule(
            self.period / len(self._order), self._take_down_next
        )

    def stop(self) -> None:
        """Halt the recovery schedule.

        The queued take-down event is cancelled (not left to fire as a
        no-op), and any node currently down for reinstall is restored
        immediately — stopping the scheduler must never strand a node in
        its crashed state.
        """
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        for node_id in sorted(self._restore_events, key=str):
            self._restore_events[node_id].cancel()
            self._restore(node_id)

    # ------------------------------------------------------------------
    def _take_down_next(self) -> None:
        self._next_event = None
        if not self._running:
            return
        node_id = self._order[self._index % len(self._order)]
        self._index += 1
        node = self.network.node(node_id)
        if not isinstance(node.behavior, HonestBehavior):
            self.compromises_cleaned += 1
        self._down_at[node_id] = self.network.sim.now
        self.network.crash(node_id)
        self._restore_events[node_id] = self.network.sim.schedule(
            self.downtime, self._restore, node_id
        )
        self._next_event = self.network.sim.schedule(
            self.period / len(self._order), self._take_down_next
        )

    def _restore(self, node_id: NodeId) -> None:
        self._restore_events.pop(node_id, None)
        node = self.network.node(node_id)
        # Restored from a clean state with a never-used variant build.
        family, _ = self.current_variant[node_id]
        self.current_variant[node_id] = self.pool.fresh(family + 1)
        node.behavior = HonestBehavior()
        self.network.recover(node_id)
        self.recoveries_completed += 1
        record_recovery_downtime(
            self.network.stats, node_id, self._down_at.pop(node_id, None),
            self.network.sim.now,
        )


def record_recovery_downtime(stats, node_id, down_at, now) -> None:
    """Record one completed reinstall's downtime: a per-node series
    (``recovery-downtime:<node>``) plus the aggregate gauge and counter
    that ``repro stats`` reports downtime budgets from.  Shared by the
    fixed rotation above and the adaptive controller."""
    if down_at is None:
        return
    downtime = now - down_at
    stats.series(f"recovery-downtime:{node_id}").record(now, downtime)
    stats.metrics.gauge("recovery.downtime_seconds_total").add(downtime)
    stats.counter("recovery.completed").add()
