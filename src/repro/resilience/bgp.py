"""BGP hijacking attack model (Section IV-B).

"In the event of a BGP hijacking attack, traffic using Internet routes
that cross multiple ISPs can be diverted to an attacker-specified
destination, but traffic that stays within a single ISP is not affected.
Therefore, overlay links that contract service from the same provider on
both ends can still pass messages during the attack."
"""

from __future__ import annotations

from typing import Optional

from repro.resilience.underlay import Underlay
from repro.sim.engine import Simulator


class BgpHijack:
    """A (possibly timed) BGP hijack against the whole underlay."""

    def __init__(self, sim: Simulator, underlay: Underlay):
        self.sim = sim
        self.underlay = underlay
        self.active = False

    def start(self) -> None:
        """Activate the hijack: only same-ISP combinations pass traffic."""
        self.active = True
        self.underlay.set_bgp_hijacked(True)

    def stop(self) -> None:
        """End the hijack and restore cross-ISP routes."""
        self.active = False
        self.underlay.set_bgp_hijacked(False)

    def schedule(self, start_at: float, duration: Optional[float] = None) -> None:
        """Arm the hijack at an absolute simulated time."""
        self.sim.schedule_at(start_at, self.start)
        if duration is not None:
            self.sim.schedule_at(start_at + duration, self.stop)
