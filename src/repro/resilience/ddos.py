"""Crossfire/Coremelt-style rotating link-flooding attacks (Figure 2).

The attack keeps a targeted path persistently unusable while evading
per-link failure detection: it overwhelms one underlay link (route
combination) at a time and rotates before Internet routing would react.
Against a single-homed overlay link this takes the whole overlay link
down for as long as the attack runs (the overlay must reroute at the
overlay level); against a multihomed link the attacker must flood *every*
combination simultaneously to break it — "this significantly raises the
bar for the attacker".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.resilience.underlay import Underlay
from repro.sim.engine import Simulator
from repro.topology.graph import NodeId


class RotatingLinkAttack:
    """Rotate floods across the route combinations of targeted links.

    ``breadth`` is how many combinations per link the attacker can flood
    simultaneously (its resource budget).  With ``breadth`` at least the
    number of combinations on a link, that link is continuously dead;
    with fewer, multihoming lets the overlay link keep passing traffic
    through the unflooded combination.
    """

    def __init__(
        self,
        sim: Simulator,
        underlay: Underlay,
        target_links: Sequence[Tuple[NodeId, NodeId]],
        rotation_period: float = 1.0,
        breadth: int = 1,
    ):
        if rotation_period <= 0:
            raise ConfigurationError("rotation_period must be positive")
        if breadth < 1:
            raise ConfigurationError("breadth must be >= 1")
        self.sim = sim
        self.underlay = underlay
        self.targets = list(target_links)
        self.rotation_period = rotation_period
        self.breadth = breadth
        self.active = False
        self._phase = 0
        self._flooded: List[Tuple[NodeId, NodeId, tuple]] = []

    def start(self) -> None:
        """Begin rotating floods across the targets' route combinations."""
        self.active = True
        self._rotate()

    def stop(self) -> None:
        """Stop the attack and release all flooded combinations."""
        self.active = False
        self._release_all()

    def schedule(self, start_at: float, duration: Optional[float] = None) -> None:
        """Arm start (and optionally stop) at absolute simulated times."""
        self.sim.schedule_at(start_at, self.start)
        if duration is not None:
            self.sim.schedule_at(start_at + duration, self.stop)

    # ------------------------------------------------------------------
    def _rotate(self) -> None:
        if not self.active:
            return
        self._release_all()
        for a, b in self.targets:
            combos = self.underlay.combos(a, b)
            for i in range(self.breadth):
                combo = combos[(self._phase + i) % len(combos)]
                self.underlay.set_combo(a, b, combo, up=False)
                self._flooded.append((a, b, combo))
        self._phase += 1
        self.sim.schedule(self.rotation_period, self._rotate)

    def _release_all(self) -> None:
        for a, b, combo in self._flooded:
            self.underlay.set_combo(a, b, combo, up=True)
        self._flooded = []
