"""Fault injection for the live (asyncio/UDP) runtime.

The simulator's :class:`~repro.faults.chaos.ChaosEngine` mangles modeled
channels; this module brings the *same* fault vocabulary — the same
seeded, shrinkable :class:`~repro.faults.schedule.FaultSchedule` — to
real datagrams on real sockets, so a schedule that breaks the overlay in
simulation can be replayed against the live stack (and vice versa).

Three pieces:

* :class:`DatagramFaultInjector` — per-directed-link fault state plus a
  seeded RNG; given an outbound datagram it decides drop / duplicate /
  reorder / corrupt / delay.  It owns no sockets and no clock: it is a
  pure decision table the chaos transport consults on every send.
* :class:`ChaosUdpTransport` — an :class:`AsyncioUdpTransport` whose
  ``sendto`` routes every datagram through the injector.  Faults are
  applied on the *send* side so a bidirectional partition is simply both
  directed links marked down.
* :class:`LiveChaosEngine` — the schedule driver.  It subclasses the sim
  engine, so refcounted overlap composition, skip accounting, and the
  applied-actions log are shared verbatim; only the three substrate
  hooks differ: link downs and impairments go to the injector, and
  crash/recover go to the :class:`~repro.runtime.supervision.
  NodeSupervisor` (kill the node's socket, release it for a
  backoff-timed restart).

Determinism caveat: the injector's draws are seeded, but the *order* in
which concurrent nodes send is wall-clock scheduling — live runs are
reproducible in distribution, not byte-for-byte like the simulator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.faults.chaos import MAX_COMPOSED_LOSS, ChaosEngine
from repro.faults.schedule import FaultSchedule
from repro.runtime.transport import AsyncioUdpTransport

#: A duplicated datagram trails the original by this much (seconds) so
#: the copy actually exercises the receiver's dedup path rather than
#: coalescing in the same socket read.
DUPLICATE_LAG = 0.002

#: Extra delay drawn for a reordered datagram: long enough that later
#: sends on the link overtake it, short enough to stay inside protocol
#: retransmission timeouts.
REORDER_WINDOW = (0.01, 0.08)


class LinkFaultState:
    """Composed fault state of one *directed* link (src -> dst)."""

    __slots__ = ("down_refs", "loss", "dup", "reorder", "corrupt", "delay")

    def __init__(self) -> None:
        self.down_refs = 0
        self.loss = 0.0
        self.dup = 0.0
        self.reorder = 0.0
        self.corrupt = 0.0
        self.delay = 0.0

    @property
    def clear(self) -> bool:
        return (
            self.down_refs == 0
            and self.loss == 0.0
            and self.dup == 0.0
            and self.reorder == 0.0
            and self.corrupt == 0.0
            and self.delay == 0.0
        )


class DatagramFaultInjector:
    """Seeded per-link datagram mangling decisions (see module docstring).

    ``rng`` is a dedicated stream from the deployment's
    :class:`~repro.sim.rng.RngRegistry`, so two runs with the same seed
    draw the same decision sequence for the same sequence of sends.
    """

    def __init__(self, rng: Any):
        self._rng = rng
        self._links: Dict[Tuple[Any, Any], LinkFaultState] = {}
        # Observability: every datagram-level action actually taken.
        self.partition_drops = 0
        self.losses = 0
        self.duplicates = 0
        self.reorders = 0
        self.corruptions = 0
        self.delayed = 0

    def state(self, src: Any, dst: Any) -> LinkFaultState:
        """The fault state of the directed link ``src -> dst``."""
        return self._links.setdefault((src, dst), LinkFaultState())

    # ------------------------------------------------------------------
    # Control plane (driven by LiveChaosEngine)
    # ------------------------------------------------------------------
    def fail_edge(self, a: Any, b: Any) -> None:
        """Take the undirected edge down: both directions drop everything."""
        self.state(a, b).down_refs += 1
        self.state(b, a).down_refs += 1

    def restore_edge(self, a: Any, b: Any) -> None:
        """Undo one :meth:`fail_edge`; the edge heals at refcount zero."""
        for src, dst in ((a, b), (b, a)):
            state = self.state(src, dst)
            state.down_refs = max(0, state.down_refs - 1)

    def set_impairment(
        self,
        a: Any,
        b: Any,
        loss: float = 0.0,
        dup: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
    ) -> None:
        """Install the *composed* impairment on both directions of an
        edge (the engine already merged overlapping faults)."""
        for src, dst in ((a, b), (b, a)):
            state = self.state(src, dst)
            state.loss = min(loss, MAX_COMPOSED_LOSS)
            state.dup = dup
            state.reorder = reorder
            state.corrupt = corrupt
            state.delay = delay

    # ------------------------------------------------------------------
    # Data plane (consulted by ChaosUdpTransport on every send)
    # ------------------------------------------------------------------
    def plan(self, src: Any, dst: Any, data: bytes) -> List[Tuple[float, bytes]]:
        """Decide what actually goes on the wire for one outbound
        datagram: a list of ``(delay_seconds, payload)`` actions (empty =
        dropped, two entries = duplicated)."""
        state = self._links.get((src, dst))
        if state is None or state.clear:
            return [(0.0, data)]
        if state.down_refs > 0:
            self.partition_drops += 1
            return []
        rng = self._rng
        if state.loss and rng.random() < state.loss:
            self.losses += 1
            return []
        payload = data
        if state.corrupt and rng.random() < state.corrupt:
            payload = self._corrupt(data)
            self.corruptions += 1
        delay = state.delay
        if delay > 0.0:
            self.delayed += 1
        if state.reorder and rng.random() < state.reorder:
            delay += rng.uniform(*REORDER_WINDOW)
            self.reorders += 1
        actions = [(delay, payload)]
        if state.dup and rng.random() < state.dup:
            actions.append((delay + DUPLICATE_LAG, payload))
            self.duplicates += 1
        return actions

    def _corrupt(self, data: bytes) -> bytes:
        """Flip 1-4 random bits — the receiver's codec or MAC check must
        reject the result; it may never crash on it."""
        if not data:
            return data
        rng = self._rng
        mutated = bytearray(data)
        for _ in range(rng.randint(1, 4)):
            index = rng.randrange(len(mutated))
            mutated[index] ^= 1 << rng.randrange(8)
        return bytes(mutated)

    def summary(self) -> Dict[str, int]:
        """Datagram-level action counts (what the faults actually did)."""
        return {
            "partition_drops": self.partition_drops,
            "losses": self.losses,
            "duplicates": self.duplicates,
            "reorders": self.reorders,
            "corruptions": self.corruptions,
            "delayed": self.delayed,
        }


class ChaosUdpTransport(AsyncioUdpTransport):
    """An :class:`AsyncioUdpTransport` whose outbound datagrams pass
    through a :class:`DatagramFaultInjector` first.

    The interposition point is ``sendto`` — the single choke point every
    :class:`~repro.runtime.transport.UdpSendChannel` funnels through —
    so PoR data, ACKs, hellos, link-state floods, and E2E ACKs are all
    subject to the same wire-level hostility.
    """

    def __init__(self, node_id: Any, metrics: Any = None,
                 injector: Optional[DatagramFaultInjector] = None):
        super().__init__(node_id, metrics=metrics)
        self._injector = injector

    def sendto(self, peer_id: Any, data: bytes, _retry: bool = False,
               channel: Any = None) -> None:
        if self._injector is None:
            super().sendto(peer_id, data, _retry=_retry, channel=channel)
            return
        for delay, payload in self._injector.plan(self.node_id, peer_id, data):
            if delay <= 0.0:
                super().sendto(peer_id, payload, _retry=_retry, channel=channel)
            elif self._loop is not None:
                self._loop.call_later(
                    delay, self._send_delayed, peer_id, payload, channel
                )

    def _send_delayed(self, peer_id: Any, payload: bytes,
                      channel: Any = None) -> None:
        if self._transport is None:
            return  # closed while the delayed copy was in flight
        super().sendto(peer_id, payload, channel=channel)


class LiveChaosEngine(ChaosEngine):
    """Drives a :class:`FaultSchedule` against a live deployment.

    The deployment satisfies the engine's network duck type (``sim``,
    ``topology``, ``stats``, ``node``, ``crash``, ``recover``), so the
    base class's arming, overlap refcounting, and logging run unchanged.
    The substrate hooks are redirected:

    * link downs / impairments -> the :class:`DatagramFaultInjector`
      shared by every node's :class:`ChaosUdpTransport`;
    * crash faults -> ``supervisor.kill`` (socket teardown + overlay
      state loss), with the fault's end *releasing* the node so the
      supervisor restarts it after its backoff — mirroring how a real
      process dies instantly but rejoins on the supervisor's clock.
    """

    def __init__(
        self,
        deployment: Any,
        schedule: FaultSchedule,
        injector: DatagramFaultInjector,
        supervisor: Any,
    ):
        super().__init__(deployment, schedule)
        self.injector = injector
        self.supervisor = supervisor

    # -- link faults -> injector ---------------------------------------
    def _take_edge_down(self, edge: Tuple) -> None:
        self.injector.fail_edge(*edge)

    def _bring_edge_up(self, edge: Tuple) -> None:
        self.injector.restore_edge(*edge)

    def _install_impairment(
        self,
        edge: Tuple,
        loss: float,
        dup: float,
        reorder: float,
        corrupt: float,
        delay: float,
    ) -> None:
        self.injector.set_impairment(
            *edge, loss=loss, dup=dup, reorder=reorder,
            corrupt=corrupt, delay=delay,
        )

    # -- node faults -> supervisor -------------------------------------
    def _crash_node(self, node: Any) -> None:
        refs = self._node_refs.get(node, 0)
        self._node_refs[node] = refs + 1
        if refs == 0:
            self.supervisor.kill(node, reason="chaos", hold=True)

    def _recover_node(self, node: Any) -> None:
        refs = self._node_refs.get(node, 0)
        if refs > 1:
            self._node_refs[node] = refs - 1
            return
        self._node_refs.pop(node, None)
        # Unlike the simulator, recovery is not instantaneous: releasing
        # only makes the node *eligible*; the supervisor restarts it once
        # its backoff expires.  Injector link state is orthogonal to the
        # socket lifecycle, so no post-recovery edge repair is needed.
        self.supervisor.release(node)
