"""Deterministic wire codec for live overlay datagrams.

The simulator passes Python objects between nodes by reference; the live
runtime must put them on real UDP sockets.  This module defines the
versioned, length-prefixed datagram format and an explicit per-type codec
for every payload that crosses a Proof-of-Receipt link:

* link envelopes — :class:`~repro.link.por.PorData`,
  :class:`~repro.link.por.PorAck`, :class:`~repro.link.por.PorHandshake`,
  and the out-of-stream hello wrapper;
* overlay payloads carried inside ``PorData`` —
  :class:`~repro.messaging.message.Message`, ``E2eAck``, ``NeighborAck``,
  ``StateRequest``, ``Hello``, and
  :class:`~repro.routing.link_state.LinkStateUpdate`;
* signature material from :mod:`repro.crypto` — ``None`` (PKI mode NONE),
  :class:`~repro.crypto.simulated.SimulatedSignature`, raw RSA/HMAC bytes,
  and integer MAC tags.

Datagram layout (all integers big-endian)::

    0      2      3        4           8       12
    +------+------+--------+-----------+-------+----------------- - - -
    | "IT" | ver  | flags  | body_len  | crc32 | body (body_len bytes)
    +------+------+--------+-----------+-------+----------------- - - -
    body = sender_id | receiver_id | envelope_tag(1B) | envelope fields

With the :data:`FLAG_BATCH` flag bit set, the body instead carries a
*batch container* — several link envelopes amortizing one datagram, one
header, and one CRC::

    body = sender_id | receiver_id | count(2B) | frames
    frame = frame_len(4B) | envelope_tag(1B) | envelope fields

A single-frame send always uses the classic (flags=0) layout, so batching
is invisible on the wire unless two or more packets actually coalesce —
sim/live conformance stays byte-identical for unbatched traffic.

The CRC-32 covers the header (with the crc field itself excluded) plus
the body, so any in-flight bit flip — UDP's 16-bit checksum is weak and
optional — is rejected at decode time instead of reaching protocol state
with a corrupted sequence number or epoch.  The same trailer guards every
frame of a batch: a flip anywhere in the container rejects the datagram.

Zero-copy discipline:

* **Decode** wraps the input in a :class:`memoryview` and unpacks fixed
  fields in place (``struct.unpack_from``); the CRC is chained over
  header and body views without re-concatenating them, and batch frames
  are sliced as sub-views.  Only variable-length fields that outlive the
  datagram (nonces, proofs, application payloads, text) are materialized,
  and every length prefix is bounds-checked against the remaining budget
  *before* any allocation, so a hostile length claim fails fast.
* **Encode** writes into a pooled ``bytearray`` via ``pack_into``
  (header reserved up front, CRC back-patched) and copies out the final
  immutable ``bytes`` once.  Pool ownership rule: a buffer is owned by
  exactly one encode call and is returned to the pool before the call
  returns; the caller only ever sees the immutable copy.

Malformed input *never* escapes as ``struct.error`` / ``IndexError`` /
``UnicodeDecodeError``: :func:`decode_datagram` raises
:class:`repro.errors.WireDecodeError` for anything truncated, corrupted,
over-length, or of an unknown version/flag/tag, so a live node can drop
bad datagrams and keep serving.  Encoding an object the format cannot
carry raises :class:`repro.errors.WireEncodeError`.

The format is deterministic: encoding the same object twice yields the
same bytes, and ``decode(encode(x)) == x`` field-for-field (the property
test in ``tests/test_runtime_wire.py`` drives this with Hypothesis; the
batch container is fuzzed in ``tests/test_wire_batch.py``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.crypto.simulated import SimulatedSignature
from repro.errors import TopologyError, WireDecodeError, WireEncodeError
from repro.link.por import PorAck, PorData, PorHandshake, _HelloWrapper
from repro.messaging.message import (
    AdmissionNack,
    E2eAck,
    Hello,
    Message,
    NeighborAck,
    Semantics,
    StateRequest,
)
from repro.routing.link_state import LinkStateUpdate
from repro.topology.graph import Topology
from repro.topology.mtmw import Mtmw

MAGIC = b"IT"
VERSION = 2

#: Flag bit marking a batch-container body (N frames in one datagram).
FLAG_BATCH = 0x01

#: All flag bits this codec understands; anything else is rejected.
_KNOWN_FLAGS = FLAG_BATCH

#: Bytes before the body: magic(2) + version(1) + flags(1) + body_len(4)
#: + crc32(4).
HEADER_SIZE = 12

#: Upper bound on an encoded body; larger datagrams are rejected on both
#: sides (a UDP datagram cannot exceed 64 KiB anyway).
MAX_BODY = 60_000

# Envelope tags (the outermost object in a datagram).
_ENV_POR_DATA = 1
_ENV_POR_ACK = 2
_ENV_POR_HANDSHAKE = 3
_ENV_HELLO = 4
# Cluster control frames: bootstrap address discovery (seed-node
# directory queries and restart re-announcements).  They ride outside
# the PoR link — a joining node has no link yet — and are therefore
# unauthenticated; anything acting on one only updates an address hint,
# never protocol state, so forgery degrades to (at worst) a DoS that the
# link-level MACs already absorb.
_ENV_ADDR_QUERY = 5
_ENV_ADDR_REPLY = 6
_ENV_ADDR_ANNOUNCE = 7

# Payload tags (objects carried inside a PorData envelope).
_PL_MESSAGE = 1
_PL_E2E_ACK = 2
_PL_NEIGHBOR_ACK = 3
_PL_LINK_STATE = 4
_PL_STATE_REQUEST = 5
_PL_HELLO = 6
_PL_MTMW = 7
_PL_ADMISSION_NACK = 8

# Signature kinds.
_SIG_NONE = 0
_SIG_SIMULATED = 1
_SIG_BYTES = 2
_SIG_INT = 3

# Node-id kinds (ids round-trip typed: the sim uses ints for the global
# cloud and strings elsewhere, and both are dict keys in protocol state).
_ID_INT = 0
_ID_STR = 1

# Pre-compiled packers shared by every encode/decode call.
_S_U16 = struct.Struct(">H")
_S_U32 = struct.Struct(">I")
_S_I64 = struct.Struct(">q")
_S_F64 = struct.Struct(">d")
_S_VLF = struct.Struct(">BBI")  # version, flags, body_len
_S_HDR = struct.Struct(">BBII")  # version, flags, body_len, crc

_crc32 = zlib.crc32


@dataclass(frozen=True)
class Datagram:
    """A decoded datagram: who sent it, whom it addresses, and the packet(s).

    ``packet`` is the first (for classic datagrams: only) link envelope;
    ``packets`` carries every frame of a batch container in order.  For a
    classic datagram ``packets == (packet,)``.
    """

    sender: Any
    receiver: Any
    packet: Any
    packets: Tuple[Any, ...] = ()

    def frames(self) -> Tuple[Any, ...]:
        """Every link envelope in this datagram, in wire order."""
        return self.packets if self.packets else (self.packet,)


class _BufferPool:
    """A small free-list of encode buffers (single-threaded ownership)."""

    __slots__ = ("_free", "_max")

    def __init__(self, max_buffers: int = 8):
        self._free: List[bytearray] = []
        self._max = max_buffers

    def acquire(self) -> bytearray:
        if self._free:
            return self._free.pop()
        return bytearray(2048)

    def release(self, buf: bytearray) -> None:
        if len(self._free) < self._max:
            self._free.append(buf)


_ENCODE_POOL = _BufferPool()


class _Writer:
    """Binary writer over a growable buffer with the codec's primitives.

    Writes land directly in ``buf`` via ``pack_into`` — no intermediate
    ``bytes`` objects and no final join.  ``pos`` tracks the write head;
    the caller slices ``buf[:pos]`` once at the end.
    """

    __slots__ = ("buf", "pos")

    def __init__(self, buf: Optional[bytearray] = None, start: int = 0) -> None:
        self.buf = bytearray(256) if buf is None else buf
        self.pos = start

    def _grow(self, need: int) -> None:
        buf = self.buf
        buf.extend(bytearray(max(need - len(buf), len(buf), 256)))

    # Primitives ----------------------------------------------------------
    def u8(self, value: int) -> None:
        pos = self.pos
        if pos + 1 > len(self.buf):
            self._grow(pos + 1)
        try:
            self.buf[pos] = value
        except ValueError:
            raise WireEncodeError(f"u8 out of range: {value}") from None
        self.pos = pos + 1

    def u16(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise WireEncodeError(f"u16 out of range: {value}")
        pos = self.pos
        if pos + 2 > len(self.buf):
            self._grow(pos + 2)
        _S_U16.pack_into(self.buf, pos, value)
        self.pos = pos + 2

    def u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise WireEncodeError(f"u32 out of range: {value}")
        pos = self.pos
        if pos + 4 > len(self.buf):
            self._grow(pos + 4)
        _S_U32.pack_into(self.buf, pos, value)
        self.pos = pos + 4

    def patch_u32(self, at: int, value: int) -> None:
        """Back-patch a u32 written earlier (batch frame lengths)."""
        if not 0 <= value <= 0xFFFFFFFF:
            raise WireEncodeError(f"u32 out of range: {value}")
        _S_U32.pack_into(self.buf, at, value)

    def i64(self, value: int) -> None:
        pos = self.pos
        if pos + 8 > len(self.buf):
            self._grow(pos + 8)
        try:
            _S_I64.pack_into(self.buf, pos, value)
        except struct.error:
            raise WireEncodeError(f"i64 out of range: {value}") from None
        self.pos = pos + 8

    def f64(self, value: float) -> None:
        pos = self.pos
        if pos + 8 > len(self.buf):
            self._grow(pos + 8)
        _S_F64.pack_into(self.buf, pos, value)
        self.pos = pos + 8

    def boolean(self, value: bool) -> None:
        self.u8(1 if value else 0)

    def raw(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise WireEncodeError(f"expected bytes, got {type(value).__name__}")
        length = len(value)
        if length > 0xFFFF:
            raise WireEncodeError(f"bytes field too long ({length})")
        self.u16(length)
        pos = self.pos
        end = pos + length
        if end > len(self.buf):
            self._grow(end)
        self.buf[pos:end] = value
        self.pos = end

    def text(self, value: str) -> None:
        self.raw(value.encode("utf-8"))

    def opt_f64(self, value: Optional[float]) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.f64(value)

    # Domain types --------------------------------------------------------
    def node_id(self, value: Any) -> None:
        if isinstance(value, bool):
            raise WireEncodeError("bool is not a node id")
        if isinstance(value, int):
            self.u8(_ID_INT)
            self.i64(value)
        elif isinstance(value, str):
            self.u8(_ID_STR)
            self.text(value)
        else:
            raise WireEncodeError(
                f"node id must be int or str on the wire, got {type(value).__name__}"
            )

    def signature(self, value: Any) -> None:
        if value is None:
            self.u8(_SIG_NONE)
        elif isinstance(value, SimulatedSignature):
            self.u8(_SIG_SIMULATED)
            self.node_id(value.signer)
            self.i64(value.tag)
        elif isinstance(value, (bytes, bytearray)):
            self.u8(_SIG_BYTES)
            self.raw(bytes(value))
        elif isinstance(value, int):
            self.u8(_SIG_INT)
            self.i64(value)
        else:
            raise WireEncodeError(
                f"unsupported signature type {type(value).__name__}"
            )


class _Reader:
    """Bounds-checked reader over a memoryview; failures raise WireDecodeError.

    Fixed-width fields are unpacked in place; variable-length fields are
    budget-checked against the remaining bytes *before* any slice or
    allocation, so a hostile length prefix cannot trigger a large
    allocation or a quadratic scan.
    """

    __slots__ = ("_data", "_pos", "_len")

    def __init__(self, data) -> None:
        self._data = data
        self._pos = 0
        self._len = len(data)

    @property
    def exhausted(self) -> bool:
        return self._pos == self._len

    @property
    def remaining(self) -> int:
        return self._len - self._pos

    def _short(self, count: int) -> WireDecodeError:
        return WireDecodeError(
            f"truncated datagram: wanted {count} bytes at offset {self._pos}, "
            f"have {self._len - self._pos}"
        )

    def budget(self, count: int, min_size: int, what: str) -> None:
        """Fail fast when ``count`` elements cannot possibly fit.

        Every count-prefixed collection calls this before looping: a
        hostile count is rejected in O(1) instead of iterating (or
        allocating) toward an eventual truncation error.
        """
        if count * min_size > self._len - self._pos:
            raise WireDecodeError(
                f"{what} count {count} exceeds remaining "
                f"{self._len - self._pos} bytes"
            )

    # Primitives ----------------------------------------------------------
    def u8(self) -> int:
        pos = self._pos
        if pos >= self._len:
            raise self._short(1)
        self._pos = pos + 1
        return self._data[pos]

    def u16(self) -> int:
        pos = self._pos
        if pos + 2 > self._len:
            raise self._short(2)
        self._pos = pos + 2
        return _S_U16.unpack_from(self._data, pos)[0]

    def u32(self) -> int:
        pos = self._pos
        if pos + 4 > self._len:
            raise self._short(4)
        self._pos = pos + 4
        return _S_U32.unpack_from(self._data, pos)[0]

    def i64(self) -> int:
        pos = self._pos
        if pos + 8 > self._len:
            raise self._short(8)
        self._pos = pos + 8
        return _S_I64.unpack_from(self._data, pos)[0]

    def f64(self) -> float:
        pos = self._pos
        if pos + 8 > self._len:
            raise self._short(8)
        self._pos = pos + 8
        return _S_F64.unpack_from(self._data, pos)[0]

    def boolean(self) -> bool:
        value = self.u8()
        if value not in (0, 1):
            raise WireDecodeError(f"invalid boolean byte {value}")
        return value == 1

    def raw(self) -> bytes:
        count = self.u16()
        pos = self._pos
        end = pos + count
        if end > self._len:
            raise self._short(count)
        self._pos = end
        return bytes(self._data[pos:end])

    def text(self) -> str:
        count = self.u16()
        pos = self._pos
        end = pos + count
        if end > self._len:
            raise self._short(count)
        self._pos = end
        try:
            return str(self._data[pos:end], "utf-8")
        except UnicodeDecodeError as exc:
            raise WireDecodeError(f"invalid utf-8 in string field: {exc}") from None

    def opt_f64(self) -> Optional[float]:
        flag = self.u8()
        if flag == 0:
            return None
        if flag != 1:
            raise WireDecodeError(f"invalid optional flag {flag}")
        return self.f64()

    def subview(self, count: int):
        """A zero-copy sub-view of the next ``count`` bytes."""
        pos = self._pos
        end = pos + count
        if end > self._len:
            raise self._short(count)
        self._pos = end
        return self._data[pos:end]

    # Domain types --------------------------------------------------------
    def node_id(self) -> Any:
        kind = self.u8()
        if kind == _ID_INT:
            return self.i64()
        if kind == _ID_STR:
            return self.text()
        raise WireDecodeError(f"unknown node-id kind {kind}")

    def signature(self) -> Any:
        kind = self.u8()
        if kind == _SIG_NONE:
            return None
        if kind == _SIG_SIMULATED:
            return SimulatedSignature(signer=self.node_id(), tag=self.i64())
        if kind == _SIG_BYTES:
            return self.raw()
        if kind == _SIG_INT:
            return self.i64()
        raise WireDecodeError(f"unknown signature kind {kind}")


# ----------------------------------------------------------------------
# Cluster bootstrap-discovery control frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AddrQuery:
    """Ask a seed node for the current addresses of ``targets``."""

    sender: Any
    nonce: int
    targets: Tuple[Any, ...]


@dataclass(frozen=True)
class AddrReply:
    """A seed node's answer: ``(node_id, host, port)`` per known target."""

    nonce: int
    entries: Tuple[Tuple[Any, str, int], ...]


@dataclass(frozen=True)
class AddrAnnounce:
    """Advertise that ``sender`` now listens at ``(host, port)``.

    Sent after a supervised restart rebinds a socket and when a joining
    node comes up; receivers treat it purely as an address hint (PoR MACs
    still gate all protocol traffic), so forging one cannot inject state.
    """

    sender: Any
    host: str
    port: int


# ----------------------------------------------------------------------
# Overlay payloads (carried inside PorData)
# ----------------------------------------------------------------------
def _encode_payload(writer: _Writer, payload: Any) -> None:
    if isinstance(payload, Message):
        writer.u8(_PL_MESSAGE)
        writer.node_id(payload.source)
        writer.node_id(payload.dest)
        writer.i64(payload.seq)
        writer.u8(1 if payload.semantics is Semantics.PRIORITY else 2)
        writer.i64(payload.priority)
        writer.opt_f64(payload.expiration)
        writer.u32(payload.size_bytes)
        writer.boolean(payload.flooding)
        if payload.paths is None:
            writer.u16(0xFFFF)
        else:
            if len(payload.paths) >= 0xFFFF:
                raise WireEncodeError("too many paths")
            writer.u16(len(payload.paths))
            for path in payload.paths:
                writer.u16(len(path))
                for hop in path:
                    writer.node_id(hop)
        writer.f64(payload.sent_at)
        _encode_app_payload(writer, payload.payload)
        writer.signature(payload.signature)
    elif isinstance(payload, E2eAck):
        writer.u8(_PL_E2E_ACK)
        writer.node_id(payload.dest)
        writer.i64(payload.stamp)
        writer.u16(len(payload.cumulative))
        for source, seq in payload.cumulative:
            writer.text(source)
            writer.i64(seq)
        writer.signature(payload.signature)
    elif isinstance(payload, NeighborAck):
        writer.u8(_PL_NEIGHBOR_ACK)
        writer.node_id(payload.sender)
        writer.u16(len(payload.entries))
        for (source, dest), stored_h, limit in payload.entries:
            writer.text(source)
            writer.text(dest)
            writer.i64(stored_h)
            writer.i64(limit)
    elif isinstance(payload, LinkStateUpdate):
        writer.u8(_PL_LINK_STATE)
        writer.node_id(payload.issuer)
        writer.node_id(payload.edge_a)
        writer.node_id(payload.edge_b)
        writer.f64(payload.weight)
        writer.i64(payload.seqno)
        writer.signature(payload.signature)
    elif isinstance(payload, StateRequest):
        writer.u8(_PL_STATE_REQUEST)
        writer.node_id(payload.sender)
    elif isinstance(payload, Hello):
        writer.u8(_PL_HELLO)
        writer.node_id(payload.sender)
        writer.i64(payload.stamp)
    elif isinstance(payload, Mtmw):
        # Dynamic membership floods successor MTMWs over existing PoR
        # links (the PoR MAC authenticates the neighbor; the admin
        # signature inside authenticates the topology itself, and
        # MtmwHolder.consider rejects stale/forged candidates).
        writer.u8(_PL_MTMW)
        topo = payload.topology
        writer.i64(payload.seqno)
        nodes = sorted(topo.nodes, key=str)
        if len(nodes) > 0xFFFF:
            raise WireEncodeError(f"MTMW with {len(nodes)} nodes is too large")
        writer.u16(len(nodes))
        for node in nodes:
            writer.node_id(node)
        edges = sorted(topo.edges(), key=lambda e: (str(e[0]), str(e[1])))
        if len(edges) > 0xFFFF:
            raise WireEncodeError(f"MTMW with {len(edges)} edges is too large")
        writer.u16(len(edges))
        for a, b in edges:
            writer.node_id(a)
            writer.node_id(b)
            writer.f64(topo.weight(a, b))
        writer.signature(payload.signature)
    elif isinstance(payload, AdmissionNack):
        # Unsigned like NeighborAck: only ever carried over the
        # already-authenticated PoR link between direct neighbors.
        writer.u8(_PL_ADMISSION_NACK)
        writer.node_id(payload.ingress)
        writer.node_id(payload.home)
        writer.text(payload.client)
        writer.text(payload.key)
        writer.text(payload.outcome)
        writer.i64(payload.seq)
    else:
        raise WireEncodeError(
            f"payload type {type(payload).__name__} is not supported on the "
            "live wire"
        )


def _encode_app_payload(writer: _Writer, payload: Any) -> None:
    """The opaque application payload: None, bytes, or text."""
    if payload is None:
        writer.u8(0)
    elif isinstance(payload, (bytes, bytearray)):
        writer.u8(1)
        writer.raw(bytes(payload))
    elif isinstance(payload, str):
        writer.u8(2)
        writer.text(payload)
    else:
        raise WireEncodeError(
            "live-mode application payloads must be None, bytes, or str "
            f"(got {type(payload).__name__})"
        )


def _decode_app_payload(reader: _Reader) -> Any:
    kind = reader.u8()
    if kind == 0:
        return None
    if kind == 1:
        return reader.raw()
    if kind == 2:
        return reader.text()
    raise WireDecodeError(f"unknown application-payload kind {kind}")


def _decode_payload(reader: _Reader) -> Any:
    tag = reader.u8()
    if tag == _PL_MESSAGE:
        source = reader.node_id()
        dest = reader.node_id()
        seq = reader.i64()
        semantics_byte = reader.u8()
        if semantics_byte == 1:
            semantics = Semantics.PRIORITY
        elif semantics_byte == 2:
            semantics = Semantics.RELIABLE
        else:
            raise WireDecodeError(f"unknown semantics byte {semantics_byte}")
        priority = reader.i64()
        expiration = reader.opt_f64()
        size_bytes = reader.u32()
        flooding = reader.boolean()
        path_count = reader.u16()
        paths: Optional[Tuple[Tuple[Any, ...], ...]]
        if path_count == 0xFFFF:
            paths = None
        else:
            # Each path costs at least a u16 hop count.
            reader.budget(path_count, 2, "path")
            paths_list = []
            for _ in range(path_count):
                hop_count = reader.u16()
                # Each hop is at least a kind byte + 2-byte text length.
                reader.budget(hop_count, 3, "path hop")
                paths_list.append(
                    tuple(reader.node_id() for _ in range(hop_count))
                )
            paths = tuple(paths_list)
        sent_at = reader.f64()
        app_payload = _decode_app_payload(reader)
        signature = reader.signature()
        return Message(
            source=source,
            dest=dest,
            seq=seq,
            semantics=semantics,
            priority=priority,
            expiration=expiration,
            size_bytes=size_bytes,
            flooding=flooding,
            paths=paths,
            sent_at=sent_at,
            payload=app_payload,
            signature=signature,
        )
    if tag == _PL_E2E_ACK:
        dest = reader.node_id()
        stamp = reader.i64()
        count = reader.u16()
        # Each entry is at least a 2-byte text length + an i64.
        reader.budget(count, 10, "cumulative-ack entry")
        cumulative = tuple(
            (reader.text(), reader.i64()) for _ in range(count)
        )
        return E2eAck(dest, stamp, cumulative, reader.signature())
    if tag == _PL_NEIGHBOR_ACK:
        sender = reader.node_id()
        count = reader.u16()
        # Two text lengths plus two i64s per entry, minimum.
        reader.budget(count, 20, "neighbor-ack entry")
        entries = tuple(
            ((reader.text(), reader.text()), reader.i64(), reader.i64())
            for _ in range(count)
        )
        return NeighborAck(sender, entries)
    if tag == _PL_LINK_STATE:
        return LinkStateUpdate(
            issuer=reader.node_id(),
            edge_a=reader.node_id(),
            edge_b=reader.node_id(),
            weight=reader.f64(),
            seqno=reader.i64(),
            signature=reader.signature(),
        )
    if tag == _PL_STATE_REQUEST:
        return StateRequest(reader.node_id())
    if tag == _PL_HELLO:
        return Hello(reader.node_id(), reader.i64())
    if tag == _PL_MTMW:
        seqno = reader.i64()
        node_count = reader.u16()
        # Each node id is at least a kind byte + 2-byte text length.
        reader.budget(node_count, 3, "mtmw node")
        topo = Topology()
        try:
            for _ in range(node_count):
                topo.add_node(reader.node_id())
            edge_count = reader.u16()
            # Two node ids (>= 3 bytes each) plus an f64 weight.
            reader.budget(edge_count, 14, "mtmw edge")
            for _ in range(edge_count):
                a = reader.node_id()
                b = reader.node_id()
                topo.add_edge(a, b, reader.f64())
        except TopologyError as exc:
            raise WireDecodeError(f"invalid MTMW topology: {exc}") from None
        return Mtmw(topo, seqno, reader.signature())
    if tag == _PL_ADMISSION_NACK:
        return AdmissionNack(
            ingress=reader.node_id(),
            home=reader.node_id(),
            client=reader.text(),
            key=reader.text(),
            outcome=reader.text(),
            seq=reader.i64(),
        )
    raise WireDecodeError(f"unknown payload tag {tag}")


# ----------------------------------------------------------------------
# Link envelopes
# ----------------------------------------------------------------------
def _encode_envelope(writer: _Writer, packet: Any) -> None:
    if isinstance(packet, PorData):
        writer.u8(_ENV_POR_DATA)
        writer.i64(packet.epoch)
        writer.i64(packet.seq)
        writer.raw(packet.nonce)
        writer.u32(packet.wire_size)
        writer.signature(packet.mac)
        _encode_payload(writer, packet.payload)
    elif isinstance(packet, PorAck):
        writer.u8(_ENV_POR_ACK)
        writer.i64(packet.epoch)
        writer.i64(packet.cum_seq)
        writer.raw(packet.proof)
        writer.u16(len(packet.missing))
        for seq in packet.missing:
            writer.i64(seq)
        writer.signature(packet.mac)
    elif isinstance(packet, PorHandshake):
        writer.u8(_ENV_POR_HANDSHAKE)
        writer.node_id(packet.sender)
        writer.raw(packet.dh_public)
        writer.signature(packet.signature)
    elif isinstance(packet, _HelloWrapper):
        writer.u8(_ENV_HELLO)
        writer.node_id(packet.hello.sender)
        writer.i64(packet.hello.stamp)
    elif isinstance(packet, AddrQuery):
        writer.u8(_ENV_ADDR_QUERY)
        writer.node_id(packet.sender)
        writer.i64(packet.nonce)
        if len(packet.targets) > 0xFFFF:
            raise WireEncodeError("too many address-query targets")
        writer.u16(len(packet.targets))
        for target in packet.targets:
            writer.node_id(target)
    elif isinstance(packet, AddrReply):
        writer.u8(_ENV_ADDR_REPLY)
        writer.i64(packet.nonce)
        if len(packet.entries) > 0xFFFF:
            raise WireEncodeError("too many address-reply entries")
        writer.u16(len(packet.entries))
        for node, host, port in packet.entries:
            writer.node_id(node)
            writer.text(host)
            writer.u16(port)
    elif isinstance(packet, AddrAnnounce):
        writer.u8(_ENV_ADDR_ANNOUNCE)
        writer.node_id(packet.sender)
        writer.text(packet.host)
        writer.u16(packet.port)
    else:
        raise WireEncodeError(
            f"unsupported link envelope {type(packet).__name__}"
        )


def _decode_envelope(reader: _Reader) -> Any:
    tag = reader.u8()
    if tag == _ENV_POR_DATA:
        epoch = reader.i64()
        seq = reader.i64()
        nonce = reader.raw()
        wire_size = reader.u32()
        mac = reader.signature()
        payload = _decode_payload(reader)
        packet = PorData(epoch, seq, nonce, payload, wire_size)
        packet.mac = mac
        return packet
    if tag == _ENV_POR_ACK:
        epoch = reader.i64()
        cum_seq = reader.i64()
        proof = reader.raw()
        count = reader.u16()
        reader.budget(count, 8, "missing-seq")
        missing = tuple(reader.i64() for _ in range(count))
        mac = reader.signature()
        packet = PorAck(epoch, cum_seq, proof, missing)
        packet.mac = mac
        return packet
    if tag == _ENV_POR_HANDSHAKE:
        return PorHandshake(reader.node_id(), reader.raw(), reader.signature())
    if tag == _ENV_HELLO:
        return _HelloWrapper(Hello(reader.node_id(), reader.i64()))
    if tag == _ENV_ADDR_QUERY:
        sender = reader.node_id()
        nonce = reader.i64()
        count = reader.u16()
        reader.budget(count, 3, "address-query target")
        return AddrQuery(
            sender, nonce, tuple(reader.node_id() for _ in range(count))
        )
    if tag == _ENV_ADDR_REPLY:
        nonce = reader.i64()
        count = reader.u16()
        # A node id (>= 3 bytes), a host text length, and a u16 port.
        reader.budget(count, 7, "address-reply entry")
        return AddrReply(
            nonce,
            tuple(
                (reader.node_id(), reader.text(), reader.u16())
                for _ in range(count)
            ),
        )
    if tag == _ENV_ADDR_ANNOUNCE:
        return AddrAnnounce(reader.node_id(), reader.text(), reader.u16())
    raise WireDecodeError(f"unknown envelope tag {tag}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def _finish_datagram(writer: _Writer, flags: int) -> bytes:
    """Fill in the reserved header + CRC and copy out the immutable bytes."""
    body_len = writer.pos - HEADER_SIZE
    if body_len > MAX_BODY:
        raise WireEncodeError(
            f"encoded body is {body_len} bytes (max {MAX_BODY})"
        )
    buf = writer.buf
    buf[0:2] = MAGIC
    _S_VLF.pack_into(buf, 2, VERSION, flags, body_len)
    with memoryview(buf) as view:
        crc = _crc32(view[HEADER_SIZE:writer.pos], _crc32(view[:8]))
        _S_U32.pack_into(buf, 8, crc)
        return bytes(view[: writer.pos])


def encode_datagram(sender: Any, receiver: Any, packet: Any) -> bytes:
    """Encode one link packet as a self-delimiting datagram.

    ``sender`` / ``receiver`` are the overlay node ids of the directed
    link the packet travels on; the receiving transport uses them to
    dispatch to the right PoR endpoint and to drop misdirected traffic.
    """
    buf = _ENCODE_POOL.acquire()
    try:
        writer = _Writer(buf, start=HEADER_SIZE)
        writer.node_id(sender)
        writer.node_id(receiver)
        _encode_envelope(writer, packet)
        return _finish_datagram(writer, 0)
    finally:
        _ENCODE_POOL.release(writer.buf)


def encode_batch_datagram(
    sender: Any, receiver: Any, packets: Sequence[Any]
) -> bytes:
    """Encode several link packets into one batch-container datagram.

    A single packet degenerates to the classic layout (byte-identical to
    :func:`encode_datagram`), so batching never changes unbatched bytes.
    Raises :class:`WireEncodeError` when the batch is empty, has more
    than 65535 frames, or overflows :data:`MAX_BODY`.
    """
    if not packets:
        raise WireEncodeError("empty batch")
    if len(packets) == 1:
        return encode_datagram(sender, receiver, packets[0])
    if len(packets) > 0xFFFF:
        raise WireEncodeError(f"too many frames in batch ({len(packets)})")
    buf = _ENCODE_POOL.acquire()
    try:
        writer = _Writer(buf, start=HEADER_SIZE)
        writer.node_id(sender)
        writer.node_id(receiver)
        writer.u16(len(packets))
        for packet in packets:
            length_at = writer.pos
            writer.u32(0)  # frame length, back-patched below
            frame_start = writer.pos
            _encode_envelope(writer, packet)
            writer.patch_u32(length_at, writer.pos - frame_start)
        return _finish_datagram(writer, FLAG_BATCH)
    finally:
        _ENCODE_POOL.release(writer.buf)


def batch_fits(encoded_sizes: Sequence[int], overhead_per_frame: int = 4) -> bool:
    """Whether frames of the given body sizes fit one batch datagram."""
    total = sum(encoded_sizes) + overhead_per_frame * len(encoded_sizes)
    return total <= MAX_BODY


def decode_datagram(data) -> Datagram:
    """Decode one datagram; raises :class:`WireDecodeError` on any defect.

    Accepts ``bytes``, ``bytearray``, or ``memoryview`` (the batched
    receive path hands in views of a reusable receive buffer).  Rejects
    bad magic, unknown versions or flags, truncated bodies, trailing
    garbage, over-length claims, checksum mismatches (bit flips in
    flight), and unknown tags — a live node treats all of these as "not
    our traffic" and drops the datagram.
    """
    if isinstance(data, memoryview):
        view = data
    elif isinstance(data, (bytes, bytearray)):
        view = memoryview(data)
    else:
        raise WireDecodeError(f"expected bytes, got {type(data).__name__}")
    total = len(view)
    if total < HEADER_SIZE:
        raise WireDecodeError(f"datagram too short ({total} bytes)")
    if view[0] != 0x49 or view[1] != 0x54:  # b"IT"
        raise WireDecodeError("bad magic")
    version, flags, body_len, crc = _S_HDR.unpack_from(view, 2)
    if version != VERSION:
        raise WireDecodeError(f"unsupported wire version {version}")
    if flags & ~_KNOWN_FLAGS:
        raise WireDecodeError(f"unknown flag bits 0x{flags:02x}")
    if body_len > MAX_BODY:
        raise WireDecodeError(f"body length {body_len} exceeds maximum")
    if total - HEADER_SIZE != body_len:
        raise WireDecodeError(
            f"length mismatch: header claims {body_len}, "
            f"body has {total - HEADER_SIZE}"
        )
    if _crc32(view[HEADER_SIZE:], _crc32(view[:8])) != crc:
        raise WireDecodeError("checksum mismatch (datagram corrupted in flight)")
    reader = _Reader(view[HEADER_SIZE:])
    try:
        sender = reader.node_id()
        receiver = reader.node_id()
        if flags & FLAG_BATCH:
            count = reader.u16()
            if count == 0:
                raise WireDecodeError("empty batch container")
            # Each frame costs at least a u32 length + a 1-byte tag.
            reader.budget(count, 5, "batch frame")
            frames = []
            for _ in range(count):
                frame_len = reader.u32()
                frame_reader = _Reader(reader.subview(frame_len))
                frames.append(_decode_envelope(frame_reader))
                if not frame_reader.exhausted:
                    raise WireDecodeError("trailing bytes after envelope")
            packet = frames[0]
            packets = tuple(frames)
        else:
            packet = _decode_envelope(reader)
            packets = (packet,)
    except WireDecodeError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        # Belt and braces: the reader's bounds checks should catch
        # everything, but no primitive error may escape to the caller.
        raise WireDecodeError(f"malformed datagram: {exc}") from None
    if not reader.exhausted:
        raise WireDecodeError("trailing bytes after envelope")
    return Datagram(sender=sender, receiver=receiver, packet=packet, packets=packets)
