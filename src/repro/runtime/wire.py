"""Deterministic wire codec for live overlay datagrams.

The simulator passes Python objects between nodes by reference; the live
runtime must put them on real UDP sockets.  This module defines the
versioned, length-prefixed datagram format and an explicit per-type codec
for every payload that crosses a Proof-of-Receipt link:

* link envelopes — :class:`~repro.link.por.PorData`,
  :class:`~repro.link.por.PorAck`, :class:`~repro.link.por.PorHandshake`,
  and the out-of-stream hello wrapper;
* overlay payloads carried inside ``PorData`` —
  :class:`~repro.messaging.message.Message`, ``E2eAck``, ``NeighborAck``,
  ``StateRequest``, ``Hello``, and
  :class:`~repro.routing.link_state.LinkStateUpdate`;
* signature material from :mod:`repro.crypto` — ``None`` (PKI mode NONE),
  :class:`~repro.crypto.simulated.SimulatedSignature`, raw RSA/HMAC bytes,
  and integer MAC tags.

Datagram layout (all integers big-endian)::

    0      2      3        4           8       12
    +------+------+--------+-----------+-------+----------------- - - -
    | "IT" | ver  | flags  | body_len  | crc32 | body (body_len bytes)
    +------+------+--------+-----------+-------+----------------- - - -
    body = sender_id | receiver_id | envelope_tag(1B) | envelope fields

The CRC-32 covers the header (with the crc field itself excluded) plus
the body, so any in-flight bit flip — UDP's 16-bit checksum is weak and
optional — is rejected at decode time instead of reaching protocol state
with a corrupted sequence number or epoch.

Malformed input *never* escapes as ``struct.error`` / ``IndexError`` /
``UnicodeDecodeError``: :func:`decode_datagram` raises
:class:`repro.errors.WireDecodeError` for anything truncated, corrupted,
over-length, or of an unknown version/tag, so a live node can drop bad
datagrams and keep serving.  Encoding an object the format cannot carry
(for example an administrator MTMW, which live deployments install out of
band) raises :class:`repro.errors.WireEncodeError`.

The format is deterministic: encoding the same object twice yields the
same bytes, and ``decode(encode(x)) == x`` field-for-field (the property
test in ``tests/test_runtime_wire.py`` drives this with Hypothesis).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.crypto.simulated import SimulatedSignature
from repro.errors import WireDecodeError, WireEncodeError
from repro.link.por import PorAck, PorData, PorHandshake, _HelloWrapper
from repro.messaging.message import (
    E2eAck,
    Hello,
    Message,
    NeighborAck,
    Semantics,
    StateRequest,
)
from repro.routing.link_state import LinkStateUpdate

MAGIC = b"IT"
VERSION = 2

#: Bytes before the body: magic(2) + version(1) + flags(1) + body_len(4)
#: + crc32(4).
HEADER_SIZE = 12

#: Upper bound on an encoded body; larger datagrams are rejected on both
#: sides (a UDP datagram cannot exceed 64 KiB anyway).
MAX_BODY = 60_000

# Envelope tags (the outermost object in a datagram).
_ENV_POR_DATA = 1
_ENV_POR_ACK = 2
_ENV_POR_HANDSHAKE = 3
_ENV_HELLO = 4

# Payload tags (objects carried inside a PorData envelope).
_PL_MESSAGE = 1
_PL_E2E_ACK = 2
_PL_NEIGHBOR_ACK = 3
_PL_LINK_STATE = 4
_PL_STATE_REQUEST = 5
_PL_HELLO = 6

# Signature kinds.
_SIG_NONE = 0
_SIG_SIMULATED = 1
_SIG_BYTES = 2
_SIG_INT = 3

# Node-id kinds (ids round-trip typed: the sim uses ints for the global
# cloud and strings elsewhere, and both are dict keys in protocol state).
_ID_INT = 0
_ID_STR = 1


@dataclass(frozen=True)
class Datagram:
    """A decoded datagram: who sent it, whom it addresses, and the packet."""

    sender: Any
    receiver: Any
    packet: Any


class _Writer:
    """Append-only binary writer with the codec's primitive types."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    # Primitives ----------------------------------------------------------
    def u8(self, value: int) -> None:
        self._parts.append(struct.pack(">B", value))

    def u16(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise WireEncodeError(f"u16 out of range: {value}")
        self._parts.append(struct.pack(">H", value))

    def u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise WireEncodeError(f"u32 out of range: {value}")
        self._parts.append(struct.pack(">I", value))

    def i64(self, value: int) -> None:
        try:
            self._parts.append(struct.pack(">q", value))
        except struct.error:
            raise WireEncodeError(f"i64 out of range: {value}") from None

    def f64(self, value: float) -> None:
        self._parts.append(struct.pack(">d", value))

    def boolean(self, value: bool) -> None:
        self.u8(1 if value else 0)

    def raw(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise WireEncodeError(f"expected bytes, got {type(value).__name__}")
        if len(value) > 0xFFFF:
            raise WireEncodeError(f"bytes field too long ({len(value)})")
        self.u16(len(value))
        self._parts.append(bytes(value))

    def text(self, value: str) -> None:
        self.raw(value.encode("utf-8"))

    def opt_f64(self, value: Optional[float]) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.f64(value)

    # Domain types --------------------------------------------------------
    def node_id(self, value: Any) -> None:
        if isinstance(value, bool):
            raise WireEncodeError("bool is not a node id")
        if isinstance(value, int):
            self.u8(_ID_INT)
            self.i64(value)
        elif isinstance(value, str):
            self.u8(_ID_STR)
            self.text(value)
        else:
            raise WireEncodeError(
                f"node id must be int or str on the wire, got {type(value).__name__}"
            )

    def signature(self, value: Any) -> None:
        if value is None:
            self.u8(_SIG_NONE)
        elif isinstance(value, SimulatedSignature):
            self.u8(_SIG_SIMULATED)
            self.node_id(value.signer)
            self.i64(value.tag)
        elif isinstance(value, (bytes, bytearray)):
            self.u8(_SIG_BYTES)
            self.raw(bytes(value))
        elif isinstance(value, int):
            self.u8(_SIG_INT)
            self.i64(value)
        else:
            raise WireEncodeError(
                f"unsupported signature type {type(value).__name__}"
            )


class _Reader:
    """Bounds-checked binary reader; all failures raise WireDecodeError."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise WireDecodeError(
                f"truncated datagram: wanted {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    # Primitives ----------------------------------------------------------
    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def boolean(self) -> bool:
        value = self.u8()
        if value not in (0, 1):
            raise WireDecodeError(f"invalid boolean byte {value}")
        return value == 1

    def raw(self) -> bytes:
        return self._take(self.u16())

    def text(self) -> str:
        try:
            return self.raw().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireDecodeError(f"invalid utf-8 in string field: {exc}") from None

    def opt_f64(self) -> Optional[float]:
        flag = self.u8()
        if flag == 0:
            return None
        if flag != 1:
            raise WireDecodeError(f"invalid optional flag {flag}")
        return self.f64()

    # Domain types --------------------------------------------------------
    def node_id(self) -> Any:
        kind = self.u8()
        if kind == _ID_INT:
            return self.i64()
        if kind == _ID_STR:
            return self.text()
        raise WireDecodeError(f"unknown node-id kind {kind}")

    def signature(self) -> Any:
        kind = self.u8()
        if kind == _SIG_NONE:
            return None
        if kind == _SIG_SIMULATED:
            return SimulatedSignature(signer=self.node_id(), tag=self.i64())
        if kind == _SIG_BYTES:
            return self.raw()
        if kind == _SIG_INT:
            return self.i64()
        raise WireDecodeError(f"unknown signature kind {kind}")


# ----------------------------------------------------------------------
# Overlay payloads (carried inside PorData)
# ----------------------------------------------------------------------
def _encode_payload(writer: _Writer, payload: Any) -> None:
    if isinstance(payload, Message):
        writer.u8(_PL_MESSAGE)
        writer.node_id(payload.source)
        writer.node_id(payload.dest)
        writer.i64(payload.seq)
        writer.u8(1 if payload.semantics is Semantics.PRIORITY else 2)
        writer.i64(payload.priority)
        writer.opt_f64(payload.expiration)
        writer.u32(payload.size_bytes)
        writer.boolean(payload.flooding)
        if payload.paths is None:
            writer.u16(0xFFFF)
        else:
            if len(payload.paths) >= 0xFFFF:
                raise WireEncodeError("too many paths")
            writer.u16(len(payload.paths))
            for path in payload.paths:
                writer.u16(len(path))
                for hop in path:
                    writer.node_id(hop)
        writer.f64(payload.sent_at)
        _encode_app_payload(writer, payload.payload)
        writer.signature(payload.signature)
    elif isinstance(payload, E2eAck):
        writer.u8(_PL_E2E_ACK)
        writer.node_id(payload.dest)
        writer.i64(payload.stamp)
        writer.u16(len(payload.cumulative))
        for source, seq in payload.cumulative:
            writer.text(source)
            writer.i64(seq)
        writer.signature(payload.signature)
    elif isinstance(payload, NeighborAck):
        writer.u8(_PL_NEIGHBOR_ACK)
        writer.node_id(payload.sender)
        writer.u16(len(payload.entries))
        for (source, dest), stored_h, limit in payload.entries:
            writer.text(source)
            writer.text(dest)
            writer.i64(stored_h)
            writer.i64(limit)
    elif isinstance(payload, LinkStateUpdate):
        writer.u8(_PL_LINK_STATE)
        writer.node_id(payload.issuer)
        writer.node_id(payload.edge_a)
        writer.node_id(payload.edge_b)
        writer.f64(payload.weight)
        writer.i64(payload.seqno)
        writer.signature(payload.signature)
    elif isinstance(payload, StateRequest):
        writer.u8(_PL_STATE_REQUEST)
        writer.node_id(payload.sender)
    elif isinstance(payload, Hello):
        writer.u8(_PL_HELLO)
        writer.node_id(payload.sender)
        writer.i64(payload.stamp)
    else:
        raise WireEncodeError(
            f"payload type {type(payload).__name__} is not supported on the "
            "live wire (administrator MTMWs are installed out of band)"
        )


def _encode_app_payload(writer: _Writer, payload: Any) -> None:
    """The opaque application payload: None, bytes, or text."""
    if payload is None:
        writer.u8(0)
    elif isinstance(payload, (bytes, bytearray)):
        writer.u8(1)
        writer.raw(bytes(payload))
    elif isinstance(payload, str):
        writer.u8(2)
        writer.text(payload)
    else:
        raise WireEncodeError(
            "live-mode application payloads must be None, bytes, or str "
            f"(got {type(payload).__name__})"
        )


def _decode_app_payload(reader: _Reader) -> Any:
    kind = reader.u8()
    if kind == 0:
        return None
    if kind == 1:
        return reader.raw()
    if kind == 2:
        return reader.text()
    raise WireDecodeError(f"unknown application-payload kind {kind}")


def _decode_payload(reader: _Reader) -> Any:
    tag = reader.u8()
    if tag == _PL_MESSAGE:
        source = reader.node_id()
        dest = reader.node_id()
        seq = reader.i64()
        semantics_byte = reader.u8()
        if semantics_byte == 1:
            semantics = Semantics.PRIORITY
        elif semantics_byte == 2:
            semantics = Semantics.RELIABLE
        else:
            raise WireDecodeError(f"unknown semantics byte {semantics_byte}")
        priority = reader.i64()
        expiration = reader.opt_f64()
        size_bytes = reader.u32()
        flooding = reader.boolean()
        path_count = reader.u16()
        paths: Optional[Tuple[Tuple[Any, ...], ...]]
        if path_count == 0xFFFF:
            paths = None
        else:
            paths = tuple(
                tuple(reader.node_id() for _ in range(reader.u16()))
                for _ in range(path_count)
            )
        sent_at = reader.f64()
        app_payload = _decode_app_payload(reader)
        signature = reader.signature()
        return Message(
            source=source,
            dest=dest,
            seq=seq,
            semantics=semantics,
            priority=priority,
            expiration=expiration,
            size_bytes=size_bytes,
            flooding=flooding,
            paths=paths,
            sent_at=sent_at,
            payload=app_payload,
            signature=signature,
        )
    if tag == _PL_E2E_ACK:
        dest = reader.node_id()
        stamp = reader.i64()
        cumulative = tuple(
            (reader.text(), reader.i64()) for _ in range(reader.u16())
        )
        return E2eAck(dest, stamp, cumulative, reader.signature())
    if tag == _PL_NEIGHBOR_ACK:
        sender = reader.node_id()
        entries = tuple(
            ((reader.text(), reader.text()), reader.i64(), reader.i64())
            for _ in range(reader.u16())
        )
        return NeighborAck(sender, entries)
    if tag == _PL_LINK_STATE:
        return LinkStateUpdate(
            issuer=reader.node_id(),
            edge_a=reader.node_id(),
            edge_b=reader.node_id(),
            weight=reader.f64(),
            seqno=reader.i64(),
            signature=reader.signature(),
        )
    if tag == _PL_STATE_REQUEST:
        return StateRequest(reader.node_id())
    if tag == _PL_HELLO:
        return Hello(reader.node_id(), reader.i64())
    raise WireDecodeError(f"unknown payload tag {tag}")


# ----------------------------------------------------------------------
# Link envelopes
# ----------------------------------------------------------------------
def _encode_envelope(writer: _Writer, packet: Any) -> None:
    if isinstance(packet, PorData):
        writer.u8(_ENV_POR_DATA)
        writer.i64(packet.epoch)
        writer.i64(packet.seq)
        writer.raw(packet.nonce)
        writer.u32(packet.wire_size)
        writer.signature(packet.mac)
        _encode_payload(writer, packet.payload)
    elif isinstance(packet, PorAck):
        writer.u8(_ENV_POR_ACK)
        writer.i64(packet.epoch)
        writer.i64(packet.cum_seq)
        writer.raw(packet.proof)
        writer.u16(len(packet.missing))
        for seq in packet.missing:
            writer.i64(seq)
        writer.signature(packet.mac)
    elif isinstance(packet, PorHandshake):
        writer.u8(_ENV_POR_HANDSHAKE)
        writer.node_id(packet.sender)
        writer.raw(packet.dh_public)
        writer.signature(packet.signature)
    elif isinstance(packet, _HelloWrapper):
        writer.u8(_ENV_HELLO)
        writer.node_id(packet.hello.sender)
        writer.i64(packet.hello.stamp)
    else:
        raise WireEncodeError(
            f"unsupported link envelope {type(packet).__name__}"
        )


def _decode_envelope(reader: _Reader) -> Any:
    tag = reader.u8()
    if tag == _ENV_POR_DATA:
        epoch = reader.i64()
        seq = reader.i64()
        nonce = reader.raw()
        wire_size = reader.u32()
        mac = reader.signature()
        payload = _decode_payload(reader)
        packet = PorData(epoch, seq, nonce, payload, wire_size)
        packet.mac = mac
        return packet
    if tag == _ENV_POR_ACK:
        epoch = reader.i64()
        cum_seq = reader.i64()
        proof = reader.raw()
        missing = tuple(reader.i64() for _ in range(reader.u16()))
        mac = reader.signature()
        packet = PorAck(epoch, cum_seq, proof, missing)
        packet.mac = mac
        return packet
    if tag == _ENV_POR_HANDSHAKE:
        return PorHandshake(reader.node_id(), reader.raw(), reader.signature())
    if tag == _ENV_HELLO:
        return _HelloWrapper(Hello(reader.node_id(), reader.i64()))
    raise WireDecodeError(f"unknown envelope tag {tag}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def encode_datagram(sender: Any, receiver: Any, packet: Any) -> bytes:
    """Encode one link packet as a self-delimiting datagram.

    ``sender`` / ``receiver`` are the overlay node ids of the directed
    link the packet travels on; the receiving transport uses them to
    dispatch to the right PoR endpoint and to drop misdirected traffic.
    """
    body = _Writer()
    body.node_id(sender)
    body.node_id(receiver)
    _encode_envelope(body, packet)
    encoded = body.getvalue()
    if len(encoded) > MAX_BODY:
        raise WireEncodeError(
            f"encoded body is {len(encoded)} bytes (max {MAX_BODY})"
        )
    header = MAGIC + struct.pack(">BBI", VERSION, 0, len(encoded))
    crc = zlib.crc32(header + encoded)
    return header + struct.pack(">I", crc) + encoded


def decode_datagram(data: bytes) -> Datagram:
    """Decode one datagram; raises :class:`WireDecodeError` on any defect.

    Rejects bad magic, unknown versions, truncated bodies, trailing
    garbage, over-length claims, checksum mismatches (bit flips in
    flight), and unknown tags — a live node treats all of these as "not
    our traffic" and drops the datagram.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise WireDecodeError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) < HEADER_SIZE:
        raise WireDecodeError(f"datagram too short ({len(data)} bytes)")
    if data[:2] != MAGIC:
        raise WireDecodeError("bad magic")
    version, _flags, body_len, crc = struct.unpack(">BBII", data[2:HEADER_SIZE])
    if version != VERSION:
        raise WireDecodeError(f"unsupported wire version {version}")
    if body_len > MAX_BODY:
        raise WireDecodeError(f"body length {body_len} exceeds maximum")
    body = data[HEADER_SIZE:]
    if len(body) != body_len:
        raise WireDecodeError(
            f"length mismatch: header claims {body_len}, body has {len(body)}"
        )
    if zlib.crc32(data[:8] + body) != crc:
        raise WireDecodeError("checksum mismatch (datagram corrupted in flight)")
    reader = _Reader(body)
    try:
        sender = reader.node_id()
        receiver = reader.node_id()
        packet = _decode_envelope(reader)
    except WireDecodeError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        # Belt and braces: the reader's bounds checks should catch
        # everything, but no primitive error may escape to the caller.
        raise WireDecodeError(f"malformed datagram: {exc}") from None
    if not reader.exhausted:
        raise WireDecodeError("trailing bytes after envelope")
    return Datagram(sender=sender, receiver=receiver, packet=packet)
