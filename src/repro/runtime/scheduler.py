"""Wall-clock implementation of the scheduler interface over asyncio.

:class:`AsyncioScheduler` gives the protocol stack the exact API surface
it uses on :class:`repro.sim.engine.Simulator` — ``now``, ``schedule``,
``schedule_at``, ``call_soon``, and the seeded ``rngs`` registry — but
backed by a real :mod:`asyncio` event loop, so every protocol timer
(hello beacons, retransmission timeouts, E2E ACK generation, probe
backoff) fires in real time.

Differences from the simulator, by design:

* ``now`` is wall-clock seconds since the scheduler was created (the
  epoch is rebased to 0.0 so configuration timeouts and stats windows
  read the same in both substrates);
* scheduling "into the past" clamps to "as soon as possible" instead of
  raising — wall-clock callbacks routinely run a few microseconds after
  their nominal deadline, so a follow-up computed from ``now`` can land
  marginally behind it (the simulator's strictness stays intact for
  simulated runs);
* there is no run loop to drive: asyncio owns execution, and
  :meth:`shutdown` cancels every outstanding callback for graceful
  teardown.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional, Set

from repro.sim.rng import RngRegistry


class AsyncioHandle:
    """Cancellable wrapper around an asyncio timer, API-compatible with
    :class:`repro.sim.engine.EventHandle` (``cancel()``, ``cancelled``)."""

    __slots__ = ("_timer", "_scheduler", "cancelled")

    def __init__(self, scheduler: "AsyncioScheduler") -> None:
        self._scheduler = scheduler
        self._timer: Optional[asyncio.TimerHandle] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the callback; cancelling twice (or after it ran) is a no-op."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._scheduler._forget(self)


class AsyncioScheduler:
    """The live runtime's clock + scheduler (see module docstring).

    Must be constructed while an asyncio event loop is running (the
    :class:`~repro.runtime.live.LiveDeployment` does this inside
    ``asyncio.run``).
    """

    def __init__(
        self,
        seed: int = 0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        epoch: Optional[float] = None,
    ):
        self._loop = loop or asyncio.get_event_loop()
        # A cluster coordinator distributes one shared ``epoch`` (a
        # CLOCK_MONOTONIC reading, which asyncio's clock also uses) to
        # every shard process so cross-shard latency stamps share a time
        # base; a standalone deployment rebases to its own creation time.
        self._epoch = self._loop.time() if epoch is None else epoch
        self._handles: Set[AsyncioHandle] = set()
        self._callbacks_run = 0
        self.rngs = RngRegistry(seed)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall-clock seconds since this scheduler was created."""
        return self._loop.time() - self._epoch

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> AsyncioHandle:
        """Run ``callback(*args)`` ``delay`` seconds from now (clamped >= 0)."""
        handle = AsyncioHandle(self)
        handle._timer = self._loop.call_later(
            max(0.0, delay), self._run, handle, callback, args
        )
        self._handles.add(handle)
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> AsyncioHandle:
        """Run ``callback(*args)`` at absolute scheduler time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> AsyncioHandle:
        """Run ``callback(*args)`` on the next loop iteration."""
        return self.schedule(0.0, callback, *args)

    def _run(self, handle: AsyncioHandle, callback: Callable[..., None], args: tuple) -> None:
        self._handles.discard(handle)
        if handle.cancelled:
            return
        handle.cancelled = True  # the handle is spent; a late cancel is a no-op
        self._callbacks_run += 1
        callback(*args)

    def _forget(self, handle: AsyncioHandle) -> None:
        self._handles.discard(handle)

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (not yet run, not cancelled) callbacks."""
        return len(self._handles)

    @property
    def events_run(self) -> int:
        """Total callbacks executed over the scheduler's lifetime."""
        return self._callbacks_run

    def shutdown(self) -> int:
        """Cancel every outstanding callback; returns how many were cancelled."""
        outstanding = list(self._handles)
        for handle in outstanding:
            handle.cancel()
        self._handles.clear()
        return len(outstanding)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AsyncioScheduler(now={self.now:.3f}, pending={self.pending})"
