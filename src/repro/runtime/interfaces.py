"""The Clock / Scheduler / Transport seam between protocols and substrates.

The overlay protocol stack (:class:`repro.overlay.node.OverlayNode`, the
Proof-of-Receipt link, the messaging engines, every protocol timer) never
needs a *simulator* — it needs three narrow capabilities:

* a **clock** (``now``),
* a **scheduler** for deferred callbacks (``schedule`` / ``schedule_at`` /
  ``call_soon``) plus named deterministic RNG streams (``rngs``),
* a **transport** per directed link (``send`` a payload of a declared wire
  size, register ``on_receive``, and ask ``time_until_idle`` for pacing).

These protocols name that seam.  Two substrates implement it:

* the discrete-event simulator — :class:`repro.sim.engine.Simulator` is a
  ``SchedulerLike`` and :class:`repro.sim.channel.Channel` (aliased
  ``SimTransport``) is a ``TransportLike``; behaviour is bit-for-bit what
  it was before the seam existed, and seeded runs stay byte-identical;
* the live asyncio/UDP runtime — :class:`repro.runtime.scheduler.
  AsyncioScheduler` schedules on a real event loop and
  :class:`repro.runtime.transport.UdpSendChannel` puts real datagrams on
  127.0.0.1 sockets.

Typing is structural (:class:`typing.Protocol`): protocol modules annotate
against these interfaces under ``TYPE_CHECKING`` and neither substrate
imports the other.  The contract each implementation must honour:

* ``now`` is seconds, monotonically non-decreasing, starting at 0.0;
* ``schedule(delay, cb, *args)`` runs ``cb(*args)`` no earlier than
  ``now + delay``; same-time callbacks run in scheduling order;
* the handle returned by every scheduling call has an idempotent
  ``cancel()``;
* ``rngs`` is a :class:`repro.sim.rng.RngRegistry` so every component's
  named stream is deterministic given the master seed.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

from repro.sim.rng import RngRegistry


@runtime_checkable
class CancellableHandle(Protocol):
    """A cancellable reference to a scheduled callback."""

    def cancel(self) -> None:
        """Cancel the callback; cancelling twice is a no-op."""


@runtime_checkable
class ClockLike(Protocol):
    """Read-only time source (seconds since the run started)."""

    @property
    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock-relative)."""


@runtime_checkable
class SchedulerLike(Protocol):
    """Clock + deferred-callback scheduling + named RNG streams.

    :class:`repro.sim.engine.Simulator` and
    :class:`repro.runtime.scheduler.AsyncioScheduler` both satisfy this.
    """

    rngs: RngRegistry

    @property
    def now(self) -> float:
        """Current time in seconds."""

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> CancellableHandle:
        """Run ``callback(*args)`` ``delay`` seconds from now."""

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> CancellableHandle:
        """Run ``callback(*args)`` at absolute time ``time``."""

    def call_soon(
        self, callback: Callable[..., None], *args: Any
    ) -> CancellableHandle:
        """Run ``callback(*args)`` as soon as possible (after pending work)."""


@runtime_checkable
class TransportLike(Protocol):
    """One directed link's datagram transport.

    The sender half: :meth:`send` transmits a payload object whose wire
    size is declared by the caller (the simulator charges serialization
    time for it; the UDP transport encodes and sends a real datagram).
    The receiver half: the owner of the receiving end registers
    ``on_receive(payload)``.  ``time_until_idle`` supports pacing senders;
    substrates without a serialization model return 0.0.
    """

    on_receive: Optional[Callable[[Any], None]]

    def send(self, packet: Any, size_bytes: int) -> None:
        """Transmit ``packet``; delivery (or loss) is asynchronous."""

    def send_batch(self, packets: "Sequence[tuple[Any, int]]") -> None:
        """Transmit several ``(packet, size_bytes)`` pairs at once.

        Semantically equivalent to N :meth:`send` calls in order; a
        substrate may amortize per-datagram overhead across the batch
        (the live transport coalesces the packets into one
        batch-container datagram and one syscall).  The simulator's
        channel runs the sends sequentially so modeled serialization,
        loss draws, and delivery order are bit-identical to unbatched
        traffic.
        """

    def time_until_idle(self) -> float:
        """Seconds until the transport can accept another packet (0.0 = now)."""
