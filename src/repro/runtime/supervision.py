"""Node supervision for the live runtime: kill, watch, restart.

A real intrusion-tolerant deployment does not assume its daemons stay
up — it assumes they *will* die (crash faults, proactive recovery, an
operator's kill -9) and builds the rejoin path: tear the socket down,
lose the soft state, come back after a backoff, re-announce to the
neighbors, and let the protocol re-converge.  The
:class:`NodeSupervisor` is that path for :class:`~repro.runtime.live.
LiveDeployment` node processes.

Restart discipline follows the standard supervisor pattern:

* **Exponential backoff with jitter** — the *n*-th restart of a node
  waits ``initial * factor**n`` seconds (capped), scaled by a seeded
  ±jitter so a mass failure does not produce a synchronized thundering
  herd of rebinds.
* **Max-restart circuit breaker** — a node that keeps dying is marked
  ``broken`` after ``max_restarts`` attempts and left down; flapping
  forever would only mask a real defect.
* **Watchdog** — an asyncio task sweeps every ``watchdog_interval``
  seconds: it notices sockets that died without anyone calling
  :meth:`NodeSupervisor.kill` (and schedules their restart), and it
  performs due restarts.  Restarts are asynchronous (rebinding a socket
  awaits the loop), which is why they live on the watchdog task instead
  of a scheduler callback.

The restart sequence mirrors :meth:`repro.overlay.network.
OverlayNetwork.recover` — peers' PoR endpoints facing the node are
reset *before* the node's own recovery, so both ends restart their link
epochs — plus the live-only steps: bind a fresh socket (new ephemeral
port) and re-point every neighbor's peer table at the new address.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError, LiveRuntimeError

#: NodeRecord.state values.
RUNNING = "running"
DOWN = "down"
BROKEN = "broken"
#: A node decommissioned by a signed membership LEAVE: permanently down
#: by design, never restarted, and not a failure.
DEPARTED = "departed"


@dataclass(frozen=True)
class SupervisionConfig:
    """Restart-policy knobs (see module docstring)."""

    backoff_initial: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    #: Relative jitter: each backoff is scaled by 1 ± jitter.
    backoff_jitter: float = 0.1
    #: Circuit breaker: give up on a node after this many restart
    #: attempts (successful or failed).
    max_restarts: int = 8
    watchdog_interval: float = 0.05
    #: Bind attempts per restart: the supervisor first tries to reclaim
    #: the port the node was bound to before it died (so peers'
    #: registrations stay valid), then falls back to fresh ephemeral
    #: binds.  Under many processes on one host an ephemeral bind can
    #: race another process grabbing the same port, so even port-0 binds
    #: get bounded retries.
    rebind_attempts: int = 3

    def __post_init__(self) -> None:
        if self.backoff_initial <= 0:
            raise ConfigurationError("backoff_initial must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.backoff_max < self.backoff_initial:
            raise ConfigurationError("backoff_max must be >= backoff_initial")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigurationError("backoff_jitter must be in [0, 1)")
        if self.max_restarts < 1:
            raise ConfigurationError("max_restarts must be >= 1")
        if self.watchdog_interval <= 0:
            raise ConfigurationError("watchdog_interval must be positive")
        if self.rebind_attempts < 1:
            raise ConfigurationError("rebind_attempts must be >= 1")


class NodeRecord:
    """Supervision state of one node process."""

    __slots__ = (
        "state", "kills", "restarts", "consecutive_failures",
        "backoffs", "held", "down_since", "next_restart_at", "last_reason",
    )

    def __init__(self) -> None:
        self.state = RUNNING
        self.kills = 0
        self.restarts = 0
        self.consecutive_failures = 0
        #: Every backoff actually chosen, in order (observability: tests
        #: assert the exponential growth on this).
        self.backoffs: List[float] = []
        #: True while a fault driver holds the node down (the chaos
        #: engine kills at fault start and releases at fault end); the
        #: watchdog never restarts a held node.
        self.held = False
        self.down_since: Optional[float] = None
        self.next_restart_at: Optional[float] = None
        self.last_reason = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON form of this node's supervision history."""
        return {
            "state": self.state,
            "kills": self.kills,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "backoffs": [round(b, 6) for b in self.backoffs],
            "last_reason": self.last_reason,
        }


class NodeSupervisor:
    """Watches and restarts the node processes of a live deployment.

    ``deployment`` duck type: ``sim`` (scheduler: ``now`` + ``rngs``),
    ``processes`` (node id -> process with ``transport`` / ``overlay`` /
    ``stats``), ``topology``, and ``crash(node_id)`` / ``recover(node_id)``
    instance methods — looked up per call, so an armed
    :class:`~repro.faults.invariants.InvariantMonitor` that wrapped them
    observes every supervised state loss.
    """

    def __init__(self, deployment: Any, config: Optional[SupervisionConfig] = None):
        self.deployment = deployment
        self.config = config or SupervisionConfig()
        self.records: Dict[Any, NodeRecord] = {}
        self.events: List[tuple] = []  # (time, text) observability log
        # One seeded jitter stream *per node*: with a single shared
        # stream the jitter a node receives depended on the wall-clock
        # interleaving of other nodes' kills, so same-seed soak runs
        # were not reproducible across retries.
        self._rngs: Dict[Any, Any] = {}
        self._task: Optional[asyncio.Task] = None
        self._armed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start supervising every current node process.  Call once,
        after the deployment booted, inside the running loop."""
        if self._armed:
            raise LiveRuntimeError("NodeSupervisor.arm() called twice")
        self._armed = True
        for node_id in self.deployment.processes:
            self.records[node_id] = NodeRecord()
        self._task = asyncio.get_event_loop().create_task(self._watchdog())

    def stop(self) -> None:
        """Cancel the watchdog; in-progress restarts are abandoned."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # ------------------------------------------------------------------
    # Kill / release (the fault drivers' API)
    # ------------------------------------------------------------------
    def kill(self, node_id: Any, reason: str = "fault", hold: bool = False) -> None:
        """Kill a node process: overlay soft state is lost (via the
        deployment's ``crash``, so invariant monitors notice) and its
        socket closes.  The watchdog restarts it after the node's
        current backoff — unless ``hold`` is set, in which case the
        restart additionally waits for :meth:`release`."""
        record = self._record(node_id)
        if record.state in (BROKEN, DEPARTED):
            return
        if record.state == DOWN:
            # Overlapping fault (e.g. crash inside churn): just extend.
            record.held = record.held or hold
            return
        now = self.deployment.sim.now
        record.state = DOWN
        record.kills += 1
        record.held = hold
        record.down_since = now
        record.last_reason = reason
        backoff = self._next_backoff(node_id, record)
        record.backoffs.append(backoff)
        record.next_restart_at = now + backoff
        process = self.deployment.processes[node_id]
        self.deployment.crash(node_id)
        process.transport.close()
        process.stats.counter("supervisor.kills").add()
        self.events.append((now, f"kill {node_id!r} ({reason})"))

    def release(self, node_id: Any) -> None:
        """Drop the hold placed by ``kill(..., hold=True)``: the node
        becomes eligible to restart once its backoff expires."""
        self._record(node_id).held = False

    # ------------------------------------------------------------------
    # Dynamic membership (cluster shards)
    # ------------------------------------------------------------------
    def adopt(self, node_id: Any) -> None:
        """Start supervising a node added after :meth:`arm` (a signed
        mid-run JOIN booted it).  Idempotent."""
        if node_id not in self.records:
            self.records[node_id] = NodeRecord()

    def retire(self, node_id: Any) -> None:
        """Permanently decommission a node (a signed LEAVE): kill it if
        still running, then pin it DEPARTED so neither the watchdog nor
        a chaos-engine release can ever restart it."""
        record = self._record(node_id)
        if record.state == RUNNING:
            self.kill(node_id, reason="membership leave")
        record.state = DEPARTED
        record.held = False
        record.next_restart_at = None
        self.events.append((self.deployment.sim.now, f"retire {node_id!r}"))

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    async def _watchdog(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.watchdog_interval)
                self._detect_dead_sockets()
                for node_id in self._due_restarts():
                    await self._restart(node_id)
        except asyncio.CancelledError:  # graceful shutdown
            raise

    def _detect_dead_sockets(self) -> None:
        """Notice nodes whose socket died without a ``kill`` call."""
        for node_id, record in self.records.items():
            if record.state != RUNNING:
                continue
            if self.deployment.processes[node_id].transport.closed:
                self.kill(node_id, reason="watchdog: socket closed")

    def _due_restarts(self) -> List[Any]:
        now = self.deployment.sim.now
        return [
            node_id
            for node_id, record in self.records.items()
            if record.state == DOWN
            and not record.held
            and record.next_restart_at is not None
            and now >= record.next_restart_at
        ]

    async def _restart(self, node_id: Any) -> None:
        record = self._record(node_id)
        now = self.deployment.sim.now
        process = self.deployment.processes[node_id]
        if record.restarts + record.consecutive_failures >= self.config.max_restarts:
            record.state = BROKEN
            process.stats.counter("supervisor.broken").add()
            self.events.append((
                now, f"circuit open for {node_id!r} after "
                f"{record.restarts} restarts"
            ))
            return
        try:
            address = await self._rebind(process.transport)
            for neighbor in self.deployment.topology.neighbors(node_id):
                # In a sharded cluster some neighbors live in other OS
                # processes; their re-pointing happens via the control
                # plane (deployment.announce_restart below).
                peer = self.deployment.processes.get(neighbor)
                if peer is None:
                    continue
                peer.transport.update_peer_address(node_id, address)
                # Reset the peer-facing PoR epoch, as OverlayNetwork.
                # recover does: both ends must agree the link restarted.
                peer.overlay.links[node_id].por.reset()
            self.deployment.recover(node_id)
            announce = getattr(self.deployment, "announce_restart", None)
            if announce is not None:
                announce(node_id, address)
        except Exception as exc:
            record.consecutive_failures += 1
            backoff = self._next_backoff(node_id, record)
            record.backoffs.append(backoff)
            record.next_restart_at = self.deployment.sim.now + backoff
            process.stats.counter("supervisor.restart_failures").add()
            self.events.append((
                now, f"restart of {node_id!r} failed: "
                f"{type(exc).__name__}: {exc}"
            ))
            return
        record.state = RUNNING
        record.restarts += 1
        record.consecutive_failures = 0
        record.down_since = None
        record.next_restart_at = None
        process.stats.counter("supervisor.restarts").add()
        self.events.append((now, f"restart {node_id!r} @ {address}"))

    async def _rebind(self, transport: Any) -> Any:
        """Reopen the node's socket with bounded bind attempts.

        The first attempt tries to reclaim the port the socket was bound
        to before the kill (``transport.last_local_port``): if it
        succeeds, every peer's registration is already correct and the
        re-announce is a formality.  If another process won the port in
        the meantime (bind race under many workers per host), the
        remaining attempts fall back to fresh ephemeral binds.  All
        attempts failing re-raises the last ``OSError`` into the normal
        restart-failure backoff path.
        """
        attempts = self.config.rebind_attempts
        last_port = getattr(transport, "last_local_port", None)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            port = last_port if (attempt == 0 and last_port) else 0
            try:
                return await transport.reopen(port=port)
            except OSError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def _next_backoff(self, node_id: Any, record: NodeRecord) -> float:
        """Exponential in the node's attempt count, jittered, capped.
        Jitter draws come from the node's own seeded substream, so a
        node's backoff sequence is a pure function of the run seed and
        its own kill count — independent of when other nodes die."""
        attempt = record.restarts + record.consecutive_failures
        base = min(
            self.config.backoff_initial * self.config.backoff_factor ** attempt,
            self.config.backoff_max,
        )
        rng = self._rngs.get(node_id)
        if rng is None:
            rng = self._rngs[node_id] = self.deployment.sim.rngs.stream(
                f"supervision:{node_id}"
            )
        jitter = 1.0 + self.config.backoff_jitter * (2.0 * rng.random() - 1.0)
        return base * jitter

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _record(self, node_id: Any) -> NodeRecord:
        try:
            return self.records[node_id]
        except KeyError:
            raise LiveRuntimeError(
                f"supervisor does not manage node {node_id!r}"
            ) from None

    @property
    def total_kills(self) -> int:
        return sum(r.kills for r in self.records.values())

    @property
    def total_restarts(self) -> int:
        return sum(r.restarts for r in self.records.values())

    def crashed_nodes(self) -> List[Any]:
        """Every node that was killed at least once during the run."""
        return [n for n, r in self.records.items() if r.kills > 0]

    def summary(self) -> Dict[str, Any]:
        """Aggregate + per-node supervision summary (JSON-serializable,
        lands in :attr:`LiveReport.supervision`)."""
        return {
            "kills": self.total_kills,
            "restarts": self.total_restarts,
            "broken": sorted(
                str(n) for n, r in self.records.items() if r.state == BROKEN
            ),
            "departed": sorted(
                str(n) for n, r in self.records.items() if r.state == DEPARTED
            ),
            "crashed_nodes": sorted(str(n) for n in self.crashed_nodes()),
            "nodes": {
                str(n): r.to_dict()
                for n, r in sorted(self.records.items(), key=lambda kv: str(kv[0]))
            },
        }
