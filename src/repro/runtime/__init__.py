"""Live-emulation runtime: the overlay stack over real asyncio/UDP sockets.

This package lets the *same* protocol code that runs inside the
discrete-event simulator run over real sockets on localhost:

* :mod:`repro.runtime.interfaces` — the ``Clock`` / ``Scheduler`` /
  ``Transport`` seam both substrates implement;
* :mod:`repro.runtime.wire` — the deterministic datagram codec;
* :mod:`repro.runtime.scheduler` — :class:`AsyncioScheduler`, the
  wall-clock implementation of the scheduler interface;
* :mod:`repro.runtime.transport` — UDP transports and per-link channels;
* :mod:`repro.runtime.live` — :class:`NodeProcess` and
  :class:`LiveDeployment`, the N-node boot/run/shutdown harness behind
  ``python -m repro live``.

Submodules are imported lazily (PEP 562) so that low-level modules such
as ``repro.sim.engine`` can reference :mod:`repro.runtime.interfaces`
without dragging the asyncio stack (and its protocol-layer imports) into
every simulation.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "AsyncioScheduler": "repro.runtime.scheduler",
    "AsyncioUdpTransport": "repro.runtime.transport",
    "ChaosUdpTransport": "repro.runtime.chaos",
    "Datagram": "repro.runtime.wire",
    "DatagramFaultInjector": "repro.runtime.chaos",
    "LiveChaosEngine": "repro.runtime.chaos",
    "LiveDeployment": "repro.runtime.live",
    "LiveConfig": "repro.runtime.live",
    "LiveReport": "repro.runtime.live",
    "NodeProcess": "repro.runtime.live",
    "NodeSupervisor": "repro.runtime.supervision",
    "SupervisionConfig": "repro.runtime.supervision",
    "decode_datagram": "repro.runtime.wire",
    "encode_datagram": "repro.runtime.wire",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
